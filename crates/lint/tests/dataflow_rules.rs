//! Fixture tests for the dataflow rules (`blocking-under-lock`,
//! `atomic-ordering`, `condvar-protocol`) with exact per-rule counts,
//! plus SARIF export over a dataflow report.
//!
//! Fixtures are fed through [`lint::engine::analyze_sources`] as
//! synthetic `serve`-crate workspaces (the dataflow rules only scope the
//! concurrency crates), so guard-liveness replay, the one-level
//! interprocedural expansion and the contract checks run exactly as they
//! do on the real tree.

use lint::engine::{analyze_sources, Analysis};
use lint::findings::Finding;
use lint::LintConfig;

fn analyze(files: &[(&str, &str)], config_text: &str) -> Analysis {
    let config = LintConfig::parse(config_text).expect("fixture config parses");
    let sources: Vec<(String, String)> = files
        .iter()
        .map(|(path, source)| ((*path).to_string(), (*source).to_string()))
        .collect();
    analyze_sources(&sources, &config)
}

fn rule_findings<'a>(analysis: &'a Analysis, rule: &str) -> Vec<&'a Finding> {
    analysis
        .report
        .findings
        .iter()
        .filter(|f| f.rule == rule)
        .collect()
}

#[test]
fn blocking_under_lock_flags_direct_and_one_level_interprocedural_sites() {
    let analysis = analyze(
        &[(
            "crates/serve/src/worker.rs",
            include_str!("fixtures/blocking_under_lock.rs"),
        )],
        "",
    );
    let findings = rule_findings(&analysis, "blocking-under-lock");
    // sleeps_under_lock, recv_under_lock, calls_blocking_helper — and
    // nothing from clean_drops_first or the helper itself (no guard).
    assert_eq!(findings.len(), 3, "findings: {findings:?}");

    let sleep = &findings[0];
    assert_eq!(sleep.line, 7, "the sleep under the live guard");
    assert!(sleep.message.contains("thread::sleep"), "{}", sleep.message);
    assert!(
        sleep.message.contains("guard `state` on `serve::state` (acquired line 6)"),
        "{}",
        sleep.message
    );

    let recv = &findings[1];
    assert_eq!(recv.line, 13);
    assert!(recv.message.contains(".recv(..) channel receive"), "{}", recv.message);

    // The helper call inherits the callee's sleep site with the chain.
    let chain = &findings[2];
    assert_eq!(chain.line, 20, "the drain(queue) call site");
    assert!(
        chain.message.contains("the callee blocks: thread::sleep at crates/serve/src/worker.rs:25"),
        "{}",
        chain.message
    );
    assert!(
        chain
            .message
            .contains("chain serve::worker::calls_blocking_helper → serve::worker::drain"),
        "{}",
        chain.message
    );

    // Every call under a live guard counts, blocking or not: the three
    // blocking sites, the Duration::from_millis argument call, and the
    // four drop(state) calls themselves.
    assert_eq!(analysis.report.stats.guard_live_sites, 8);
}

#[test]
fn atomic_ordering_enforces_contracts_and_publication_pairs() {
    let config = r#"
[[atomics]]
field = "serve::stop"
allowed = ["Relaxed"]
reason = "advisory shutdown flag"

[[atomics]]
field = "serve::phase"
allowed = ["Relaxed"]
reason = "the SeqCst store is the contract violation under test"

[[atomics]]
field = "serve::ready"
allowed = ["Relaxed", "Acquire"]
reason = "readiness flag; the Relaxed store is the bug under test"
"#;
    let analysis = analyze(
        &[(
            "crates/serve/src/flags.rs",
            include_str!("fixtures/atomic_ordering.rs"),
        )],
        config,
    );
    let findings = rule_findings(&analysis, "atomic-ordering");
    assert_eq!(findings.len(), 3, "findings: {findings:?}");

    // `serve::epoch` has no [[atomics]] contract at all.
    let missing = findings
        .iter()
        .find(|f| f.message.contains("`serve::epoch`"))
        .expect("missing-contract finding");
    assert_eq!(missing.line, 16);
    assert!(
        missing.message.contains("no [[atomics]] contract"),
        "{}",
        missing.message
    );

    // The SeqCst store of `serve::phase` is outside its Relaxed-only contract.
    let outside = findings
        .iter()
        .find(|f| f.message.contains("`serve::phase`"))
        .expect("disallowed-ordering finding");
    assert_eq!(outside.line, 12);
    assert!(
        outside.message.contains("Ordering::SeqCst") && outside.message.contains("[Relaxed]"),
        "{}",
        outside.message
    );

    // The Relaxed store of `serve::ready` pairs with an Acquire load:
    // flagged even though the contract allows both orderings.
    let mismatch = findings
        .iter()
        .find(|f| f.message.contains("`serve::ready`"))
        .expect("publication-mismatch finding");
    assert_eq!(mismatch.line, 20, "the Relaxed store half");
    assert!(
        mismatch.message.contains("Acquire/SeqCst load"),
        "{}",
        mismatch.message
    );

    assert_eq!(analysis.report.stats.atomic_sites, 6);
}

#[test]
fn condvar_protocol_flags_loopless_wait_and_unordered_notify() {
    let analysis = analyze(
        &[(
            "crates/serve/src/signal.rs",
            include_str!("fixtures/condvar_protocol.rs"),
        )],
        "",
    );
    let findings = rule_findings(&analysis, "condvar-protocol");
    assert_eq!(findings.len(), 2, "findings: {findings:?}");

    // bad_wait: the wait never re-checks its predicate in a loop.
    let wait = &findings[0];
    assert_eq!(wait.line, 22);
    assert!(
        wait.message
            .contains("`serve::not_empty.wait(..)` outside any loop"),
        "{}",
        wait.message
    );

    // bad_notify: neither holds nor follows `serve::state`, the predicate
    // mutex learned from the wait sites.
    let notify = &findings[1];
    assert_eq!(notify.line, 27);
    assert!(
        notify
            .message
            .contains("without holding or previously acquiring its predicate mutex [serve::state]"),
        "{}",
        notify.message
    );

    // good_wait and bad_wait both counted; good_notify raised nothing.
    assert_eq!(analysis.report.stats.condvar_waits, 2);
    assert!(rule_findings(&analysis, "blocking-under-lock").is_empty());
}

#[test]
fn dataflow_findings_export_as_sarif_results() {
    let analysis = analyze(
        &[(
            "crates/serve/src/worker.rs",
            include_str!("fixtures/blocking_under_lock.rs"),
        )],
        "",
    );
    let doc = lint::sarif::to_sarif(&analysis.report);
    let results = doc["runs"][0]["results"].as_array().expect("results array");
    assert_eq!(results.len(), 3);
    assert!(results
        .iter()
        .all(|r| r["ruleId"] == serde_json::json!("blocking-under-lock")));
    let uri = &results[0]["locations"][0]["physicalLocation"]["artifactLocation"]["uri"];
    assert_eq!(uri, &serde_json::json!("crates/serve/src/worker.rs"));
}
