//! Fixture tests for the lexical rules: every rule against a known-bad
//! and a known-good snippet, suppression/baseline behaviour, and JSON
//! round-tripping. The graph rules have their own suite in
//! `graph_rules.rs`.
//!
//! Fixtures live under `tests/fixtures/` (the workspace walker skips
//! `tests/` trees, so they never pollute a real `lint` run) and are fed
//! through [`lint::engine::lint_source`] with synthetic workspace paths
//! that place them in the crates each rule scopes to.

use lint::config::LintConfig;
use lint::engine::{apply_baseline, lint_source};
use lint::findings::{Finding, Report, Severity};

fn findings_for(rel_path: &str, source: &str) -> Vec<Finding> {
    let mut out = Vec::new();
    lint_source(rel_path, source, &mut out);
    out
}

fn rule_counts(findings: &[Finding], rule: &str) -> usize {
    findings.iter().filter(|f| f.rule == rule).count()
}

#[test]
fn no_unwrap_bad_fixture_yields_exactly_four_errors() {
    let findings = findings_for(
        "crates/serve/src/payload.rs",
        include_str!("fixtures/no_unwrap_bad.rs"),
    );
    assert_eq!(findings.len(), 4, "findings: {findings:?}");
    assert_eq!(rule_counts(&findings, "no-unwrap-in-lib"), 4);
    assert!(findings.iter().all(|f| f.severity == Severity::Error));
    let lines: Vec<usize> = findings.iter().map(|f| f.line).collect();
    assert_eq!(lines, vec![4, 5, 7, 13]);
}

#[test]
fn no_unwrap_good_fixture_is_clean() {
    let findings = findings_for(
        "crates/serve/src/payload.rs",
        include_str!("fixtures/no_unwrap_good.rs"),
    );
    assert!(findings.is_empty(), "findings: {findings:?}");
}

#[test]
fn no_unwrap_applies_to_chemometrics_and_chem() {
    for krate in ["chemometrics", "chem"] {
        let findings = findings_for(
            &format!("crates/{krate}/src/payload.rs"),
            include_str!("fixtures/no_unwrap_bad.rs"),
        );
        assert_eq!(
            rule_counts(&findings, "no-unwrap-in-lib"),
            4,
            "{krate}: {findings:?}"
        );
    }
}

#[test]
fn no_unwrap_does_not_apply_outside_panic_free_crates() {
    // The same bad source in a non-panic-free crate is fine.
    let findings = findings_for(
        "crates/spectrum/src/payload.rs",
        include_str!("fixtures/no_unwrap_bad.rs"),
    );
    assert_eq!(rule_counts(&findings, "no-unwrap-in-lib"), 0);
}

#[test]
fn wallclock_bad_fixture_yields_exactly_three_errors() {
    let findings = findings_for(
        "crates/ms-sim/src/noise.rs",
        include_str!("fixtures/wallclock_bad.rs"),
    );
    assert_eq!(findings.len(), 3, "findings: {findings:?}");
    assert_eq!(rule_counts(&findings, "no-wallclock-nondeterminism"), 3);
    assert_eq!(
        findings.iter().map(|f| f.line).collect::<Vec<_>>(),
        vec![5, 6, 11]
    );
}

#[test]
fn wallclock_good_fixture_is_clean() {
    let findings = findings_for(
        "crates/nmr-sim/src/noise.rs",
        include_str!("fixtures/wallclock_good.rs"),
    );
    assert!(findings.is_empty(), "findings: {findings:?}");
}

#[test]
fn float_eq_bad_fixture_yields_exactly_two_warnings() {
    let findings = findings_for(
        "crates/spectrum/src/guards.rs",
        include_str!("fixtures/float_eq_bad.rs"),
    );
    assert_eq!(findings.len(), 2, "findings: {findings:?}");
    assert_eq!(rule_counts(&findings, "no-float-eq"), 2);
    assert!(findings.iter().all(|f| f.severity == Severity::Warning));
    assert_eq!(
        findings.iter().map(|f| f.line).collect::<Vec<_>>(),
        vec![4, 8]
    );
}

#[test]
fn float_eq_good_fixture_is_clean() {
    let findings = findings_for(
        "crates/spectrum/src/guards.rs",
        include_str!("fixtures/float_eq_good.rs"),
    );
    assert!(findings.is_empty(), "findings: {findings:?}");
}

#[test]
fn forbid_unsafe_bad_crate_root_yields_one_error() {
    let findings = findings_for(
        "crates/spectrum/src/lib.rs",
        include_str!("fixtures/forbid_unsafe_bad.rs"),
    );
    assert_eq!(findings.len(), 1, "findings: {findings:?}");
    assert_eq!(findings[0].rule, "forbid-unsafe-coverage");
    assert_eq!(findings[0].line, 1);
}

#[test]
fn forbid_unsafe_good_crate_root_is_clean() {
    let findings = findings_for(
        "crates/spectrum/src/lib.rs",
        include_str!("fixtures/forbid_unsafe_good.rs"),
    );
    assert!(findings.is_empty(), "findings: {findings:?}");
}

#[test]
fn forbid_unsafe_only_applies_to_crate_roots() {
    let findings = findings_for(
        "crates/spectrum/src/inner.rs",
        include_str!("fixtures/forbid_unsafe_bad.rs"),
    );
    assert!(findings.is_empty(), "findings: {findings:?}");
}

#[test]
fn baseline_suppresses_matches_and_reports_stale_entries() {
    let config = LintConfig::parse(
        r#"
[[suppress]]
rule = "no-float-eq"
path = "crates/spectrum/src/guards.rs"
line = 4
reason = "fixture: exact zero guard, honored"

[[suppress]]
rule = "no-unwrap-in-lib"
path = "crates/serve/src/deleted_file.rs"
reason = "fixture: refers to a file that no longer exists"
"#,
    )
    .expect("baseline config parses");

    let mut findings = Vec::new();
    lint_source(
        "crates/spectrum/src/guards.rs",
        include_str!("fixtures/float_eq_bad.rs"),
        &mut findings,
    );
    let report = apply_baseline(findings, &config, 1);

    // Line 4 is suppressed, line 8 stays active.
    assert_eq!(report.suppressed, 1);
    assert_eq!(report.findings.len(), 1);
    assert_eq!(report.findings[0].line, 8);
    // The suppression pointing at a vanished file is reported stale.
    assert_eq!(report.stale_suppressions.len(), 1);
    assert_eq!(report.stale_suppressions[0].rule, "no-unwrap-in-lib");
    assert_eq!(
        report.stale_suppressions[0].path,
        "crates/serve/src/deleted_file.rs"
    );
    // Whole-file stale entries have no surviving-line hint.
    assert_eq!(report.stale_suppressions[0].nearest_line, 0);
}

#[test]
fn stale_line_suppression_reports_rule_and_nearest_line() {
    let config = LintConfig::parse(
        r#"
[[suppress]]
rule = "no-float-eq"
path = "crates/spectrum/src/guards.rs"
line = 6  # drifted: the real findings are on lines 4 and 8
reason = "fixture: drifted line suppression"
"#,
    )
    .expect("config parses");
    let mut findings = Vec::new();
    lint_source(
        "crates/spectrum/src/guards.rs",
        include_str!("fixtures/float_eq_bad.rs"),
        &mut findings,
    );
    let report = apply_baseline(findings, &config, 1);
    assert_eq!(report.findings.len(), 2, "nothing matched the drifted line");
    assert_eq!(report.stale_suppressions.len(), 1);
    let stale = &report.stale_suppressions[0];
    assert_eq!(stale.line, 6);
    assert_eq!(stale.nearest_line, 4, "4 and 8 tie-break to the earlier line");
    let text = stale.to_string();
    assert!(text.contains("[no-float-eq]"), "{text}");
    assert!(text.contains("line 4"), "{text}");
}

#[test]
fn path_level_suppression_without_line_matches_every_finding_in_file() {
    let config = LintConfig::parse(
        r#"
[[suppress]]
rule = "no-float-eq"
path = "crates/spectrum/src/guards.rs"
reason = "fixture: whole-file baseline"
"#,
    )
    .expect("config parses");
    let mut findings = Vec::new();
    lint_source(
        "crates/spectrum/src/guards.rs",
        include_str!("fixtures/float_eq_bad.rs"),
        &mut findings,
    );
    let report = apply_baseline(findings, &config, 1);
    assert_eq!(report.suppressed, 2);
    assert!(report.findings.is_empty());
    assert!(report.stale_suppressions.is_empty());
}

#[test]
fn report_round_trips_through_serde_json() {
    let mut findings = Vec::new();
    lint_source(
        "crates/serve/src/payload.rs",
        include_str!("fixtures/no_unwrap_bad.rs"),
        &mut findings,
    );
    let report = apply_baseline(findings, &LintConfig::default(), 1);
    assert!(!report.findings.is_empty());

    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    let restored: Report = serde_json::from_str(&json).expect("deserialize report");
    assert_eq!(report, restored);
}
