//! Known-good fixture: acquisitions follow the declared order and
//! early `drop()` releases a guard before the next acquisition.

pub fn ordered(registry: &Registry, queue: &Queue, slot: &Slot) {
    let models = registry.models.read();
    let state = queue.state.lock();
    drop(state);
    drop(models);
    let result = slot.result.lock();
    drop(result);
}

pub fn sequential(queue: &Queue) {
    let first = queue.state.lock();
    drop(first);
    let second = queue.state.lock();
    drop(second);
}
