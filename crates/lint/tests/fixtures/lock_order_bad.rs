//! Known-bad fixture: lock acquisitions in `serve` that invert the
//! declared order (`models < state < result`) or re-acquire a held lock.

pub fn inverted(queue: &Queue, registry: &Registry) {
    let guard = queue.state.lock();
    let models = registry.models.read();
    drop(models);
    drop(guard);
}

pub fn reentrant(queue: &Queue) {
    let first = queue.state.lock();
    let second = queue.state.lock();
    drop(second);
    drop(first);
}
