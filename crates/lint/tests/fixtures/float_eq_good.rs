//! Known-good fixture: tolerance comparisons and integer equality.

pub fn close_to_half(x: f32) -> bool {
    (x - 0.5).abs() < 1e-6
}

pub fn empty(n: usize) -> bool {
    n == 0
}

pub fn ordered(a: f32) -> bool {
    a >= 0.0 && a <= 1.0
}
