//! Known-good fixture: explicit seeds and caller-provided timestamps.

pub fn noisy(seed: u64) -> f64 {
    let mut rng = rand_chacha::ChaCha20Rng::seed_from_u64(seed);
    rng.gen()
}

pub fn stamped(timestamp_ms: u64, value: f64) -> (u64, f64) {
    (timestamp_ms, value)
}
