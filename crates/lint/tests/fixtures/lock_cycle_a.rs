//! Cross-function cycle fixture, first half: `forward` holds `models`
//! and calls a helper that takes `state`. On its own this is in declared
//! order — the cycle only appears against `lock_cycle_b.rs`.

pub fn forward(queue: &Queue, registry: &Registry) {
    let guard = registry.models.read();
    take_state(queue);
    drop(guard);
}

fn take_state(queue: &Queue) {
    let st = queue.state.lock();
    drop(st);
}
