//! Known-bad fixture: allocation-family calls inside a `// lint: hot`
//! function, plus a cold function that only becomes hot via lint.toml.

// lint: hot
pub fn tick(buf: &mut Vec<f32>, xs: &[f32]) {
    let mut scratch = Vec::new();
    scratch.push(1.0);
    buf.extend_from_slice(&scratch);
    let copy = xs.to_vec();
    let label = format!("n={}", copy.len());
    drop(label);
    drop(copy);
}

pub fn cold(xs: &[f32]) -> Vec<f32> {
    xs.to_vec()
}
