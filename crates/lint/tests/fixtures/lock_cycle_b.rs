//! Cross-function cycle fixture, second half: `backward` holds `state`
//! and calls a helper that takes `models` — closing the cycle with
//! `lock_cycle_a.rs`. Each function alone acquires a single lock, so the
//! old per-file lexical rule saw nothing here.

pub fn backward(queue: &Queue, registry: &Registry) {
    let guard = queue.state.lock();
    take_models(registry);
    drop(guard);
}

fn take_models(registry: &Registry) {
    let m = registry.models.read();
    drop(m);
}
