//! Known-bad fixture: blocking primitives executed while lock guards are
//! live — directly and one level across a call — plus a clean function
//! that drops its guard before blocking.

pub fn sleeps_under_lock(queue: &Queue) {
    let state = queue.state.lock();
    std::thread::sleep(std::time::Duration::from_millis(5));
    drop(state);
}

pub fn recv_under_lock(queue: &Queue, rx: &Receiver) {
    let state = queue.state.lock();
    let item = rx.recv();
    drop(state);
    consume(item);
}

pub fn calls_blocking_helper(queue: &Queue) {
    let state = queue.state.lock();
    drain(queue);
    drop(state);
}

fn drain(queue: &Queue) {
    std::thread::sleep(std::time::Duration::from_millis(1));
    queue.poke();
}

pub fn clean_drops_first(queue: &Queue) {
    let state = queue.state.lock();
    drop(state);
    std::thread::sleep(std::time::Duration::from_millis(5));
}
