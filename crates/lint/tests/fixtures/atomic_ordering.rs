//! Fixture for `atomic-ordering`: one field operating inside its
//! contract, one site outside its contract, one field with no contract at
//! all, and one Relaxed/Acquire publication mismatch.

pub fn within_contract(flags: &Flags) {
    flags.stop.store(true, Ordering::Relaxed);
    let stopped = flags.stop.load(Ordering::Relaxed);
    consume(stopped);
}

pub fn outside_contract(flags: &Flags) {
    flags.phase.store(1, Ordering::SeqCst);
}

pub fn no_contract(flags: &Flags) {
    flags.epoch.fetch_add(1, Ordering::Relaxed);
}

pub fn published(flags: &Flags) {
    flags.ready.store(true, Ordering::Relaxed);
}

pub fn observed(flags: &Flags) -> bool {
    flags.ready.load(Ordering::Acquire)
}
