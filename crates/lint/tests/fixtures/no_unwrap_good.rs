//! Known-good fixture: typed errors in lib code; panics confined to tests.

pub fn parse(input: &str) -> Result<usize, String> {
    input.parse().map_err(|e| format!("bad number: {e}"))
}

#[cfg(test)]
mod tests {
    use super::parse;

    #[test]
    fn parses() {
        assert_eq!(parse("3").unwrap(), 3);
        parse("x").unwrap_err();
        if false {
            panic!("test-only panic is exempt");
        }
    }
}
