//! Known-good fixture: the same call shape as the bad pair, but the
//! bottom frame is total — nothing reachable panics.

pub struct FrozenPlan {
    pub(crate) weights: Vec<f32>,
}

impl FrozenPlan {
    pub(crate) fn predict_one(&self) -> f32 {
        first_weight(self)
    }
}

fn first_weight(plan: &FrozenPlan) -> f32 {
    plan.weights.first().copied().unwrap_or(0.0)
}
