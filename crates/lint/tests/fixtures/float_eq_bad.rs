//! Known-bad fixture: exact float equality in library code.

pub fn zero_guard(x: f32) -> bool {
    x == 0.0
}

pub fn not_negative_half(y: f32) -> bool {
    y != -0.5
}
