//! Known-bad fixture (callee side): the crate-private plan code panics
//! in library code, two frames below the public serve entry point.

pub struct FrozenPlan {
    pub(crate) weights: Vec<f32>,
}

impl FrozenPlan {
    pub(crate) fn predict_one(&self) -> f32 {
        first_weight(self)
    }
}

fn first_weight(plan: &FrozenPlan) -> f32 {
    plan.weights.first().copied().unwrap()
}
