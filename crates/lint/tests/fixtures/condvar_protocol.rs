//! Fixture for `condvar-protocol`: a correct wait-in-loop plus
//! notify-after-critical-section, a wait outside any loop, and a notify
//! that neither holds nor follows the predicate's mutex.

pub fn good_wait(sync: &Shared) {
    let mut state = sync.state.lock();
    while state.pending == 0 {
        state = sync.not_empty.wait(state);
    }
    drop(state);
}

pub fn good_notify(sync: &Shared) {
    let mut state = sync.state.lock();
    state.pending += 1;
    drop(state);
    sync.not_empty.notify_one();
}

pub fn bad_wait(sync: &Shared) {
    let state = sync.state.lock();
    let state = sync.not_empty.wait(state);
    drop(state);
}

pub fn bad_notify(sync: &Shared) {
    sync.not_empty.notify_all();
}
