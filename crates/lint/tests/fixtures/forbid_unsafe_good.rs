//! Known-good fixture: a crate root carrying the workspace-wide
//! unsafe ban.

#![forbid(unsafe_code)]

pub fn noop() {}
