//! Known-bad fixture: panics in the library code of a panic-free crate.

pub fn parse(input: &str) -> usize {
    let value: usize = input.parse().unwrap();
    let rest = input.strip_prefix('x').expect("payload starts with x");
    if rest.is_empty() {
        panic!("empty payload");
    }
    value
}

pub fn unfinished() {
    todo!()
}
