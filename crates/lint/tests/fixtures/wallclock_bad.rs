//! Known-bad fixture: wall-clock reads and OS-entropy RNG in a
//! deterministic simulator crate.

pub fn stamp() -> (std::time::SystemTime, std::time::Instant) {
    let wall = std::time::SystemTime::now();
    let mono = std::time::Instant::now();
    (wall, mono)
}

pub fn noisy() -> f64 {
    let mut rng = rand::thread_rng();
    rng.gen()
}
