//! Known-bad fixture (entry side): a public serve entry point that
//! reaches a panic three calls away, crossing into another crate.

use neural::plan::FrozenPlan;

pub fn handle(plan: &FrozenPlan) -> f32 {
    score(plan)
}

fn score(plan: &FrozenPlan) -> f32 {
    plan.predict_one()
}
