//! Fixture tests for the graph rules: `panic-reachability` call chains,
//! the workspace `lock-graph` (including the cross-function cycle the old
//! lexical rule could not see) and `alloc-in-hot-path`.
//!
//! Fixtures are fed through [`lint::engine::analyze_sources`] as
//! synthetic multi-file workspaces, so resolution and the graph rules run
//! exactly as they do on the real tree.

use lint::engine::{analyze_sources, Analysis};
use lint::findings::Finding;
use lint::LintConfig;

/// The lock order the serve/obs crates declare in the real lint.toml,
/// trimmed to the names these fixtures use. Lock identities are
/// crate-qualified, so same-named fields in other crates never alias.
const LOCK_CONFIG: &str =
    "[lock-order]\norder = [\"serve::models\", \"serve::state\", \"serve::result\"]\n";

fn analyze(files: &[(&str, &str)], config_text: &str) -> Analysis {
    let config = LintConfig::parse(config_text).expect("fixture config parses");
    let sources: Vec<(String, String)> = files
        .iter()
        .map(|(path, source)| ((*path).to_string(), (*source).to_string()))
        .collect();
    analyze_sources(&sources, &config)
}

fn rule_findings<'a>(analysis: &'a Analysis, rule: &str) -> Vec<&'a Finding> {
    analysis
        .report
        .findings
        .iter()
        .filter(|f| f.rule == rule)
        .collect()
}

#[test]
fn panic_reachability_reports_the_full_cross_crate_chain() {
    let analysis = analyze(
        &[
            (
                "crates/serve/src/api.rs",
                include_str!("fixtures/panic_chain_entry.rs"),
            ),
            (
                "crates/neural/src/plan.rs",
                include_str!("fixtures/panic_chain_callee.rs"),
            ),
        ],
        "",
    );
    let findings = rule_findings(&analysis, "panic-reachability");
    assert_eq!(findings.len(), 1, "findings: {findings:?}");
    let finding = findings[0];
    assert_eq!(finding.path, "crates/neural/src/plan.rs");
    assert_eq!(finding.line, 15, "the unwrap in first_weight");
    assert!(
        finding.message.contains(
            "serve::api::handle → serve::api::score → \
             neural::plan::FrozenPlan::predict_one → neural::plan::first_weight"
        ),
        "chain missing: {}",
        finding.message
    );
    assert!(
        finding
            .message
            .contains("reachable from public entry point `serve::api::handle`"),
        "{}",
        finding.message
    );
    // The lexical rule independently flags the unwrap call site.
    assert_eq!(rule_findings(&analysis, "no-unwrap-in-lib").len(), 1);
    assert_eq!(analysis.report.stats.entry_points, 1, "only `handle` is plain pub");
    assert_eq!(analysis.report.stats.reachable_panic_fns, 1);
}

#[test]
fn panic_reachability_good_fixture_is_clean() {
    let analysis = analyze(
        &[
            (
                "crates/serve/src/api.rs",
                include_str!("fixtures/panic_chain_entry.rs"),
            ),
            (
                "crates/neural/src/plan.rs",
                include_str!("fixtures/panic_chain_good.rs"),
            ),
        ],
        "",
    );
    assert!(
        rule_findings(&analysis, "panic-reachability").is_empty(),
        "findings: {:?}",
        analysis.report.findings
    );
    assert_eq!(analysis.report.stats.reachable_panic_fns, 0);
}

#[test]
fn panic_reachability_indexing_is_config_gated() {
    let entry = "pub fn peek(xs: &[f32]) -> f32 { xs[0] }\n";
    let files = [("crates/serve/src/peek.rs", entry)];
    let off = analyze(&files, "");
    assert!(rule_findings(&off, "panic-reachability").is_empty());
    let on = analyze(&files, "[panic-reachability]\nindex-panics = true\n");
    let findings = rule_findings(&on, "panic-reachability");
    assert_eq!(findings.len(), 1, "findings: {findings:?}");
    assert!(findings[0].message.contains("indexing"), "{}", findings[0].message);
}

#[test]
fn lock_graph_flags_intra_function_inversion_and_reacquisition() {
    let analysis = analyze(
        &[(
            "crates/serve/src/paths.rs",
            include_str!("fixtures/lock_order_bad.rs"),
        )],
        LOCK_CONFIG,
    );
    let findings = rule_findings(&analysis, "lock-graph");
    assert_eq!(findings.len(), 2, "findings: {findings:?}");
    let inversion = findings
        .iter()
        .find(|f| f.message.contains("inverts the declared order"))
        .expect("inversion finding");
    assert_eq!(inversion.line, 6);
    let reacquire = findings
        .iter()
        .find(|f| f.message.contains("re-acquiring"))
        .expect("re-acquisition finding");
    assert_eq!(reacquire.line, 13);
}

#[test]
fn lock_graph_good_fixture_is_clean() {
    let analysis = analyze(
        &[(
            "crates/serve/src/paths.rs",
            include_str!("fixtures/lock_order_good.rs"),
        )],
        LOCK_CONFIG,
    );
    assert!(
        rule_findings(&analysis, "lock-graph").is_empty(),
        "findings: {:?}",
        analysis.report.findings
    );
    // The ordered acquisitions still populate the graph.
    assert!(analysis.report.stats.lock_edges > 0);
}

#[test]
fn lock_graph_does_not_apply_outside_the_lock_ordered_crates() {
    let analysis = analyze(
        &[(
            "crates/datastore/src/paths.rs",
            include_str!("fixtures/lock_order_bad.rs"),
        )],
        LOCK_CONFIG,
    );
    assert!(rule_findings(&analysis, "lock-graph").is_empty());
    assert_eq!(analysis.report.stats.lock_edges, 0);
}

#[test]
fn lock_graph_detects_the_cross_function_cycle_and_emits_dot() {
    let analysis = analyze(
        &[
            (
                "crates/serve/src/cycle_a.rs",
                include_str!("fixtures/lock_cycle_a.rs"),
            ),
            (
                "crates/serve/src/cycle_b.rs",
                include_str!("fixtures/lock_cycle_b.rs"),
            ),
        ],
        LOCK_CONFIG,
    );
    let findings = rule_findings(&analysis, "lock-graph");
    // One declared-order inversion (state held, models taken, via call)
    // plus the cycle itself.
    assert_eq!(findings.len(), 2, "findings: {findings:?}");
    let inversion = findings
        .iter()
        .find(|f| f.message.contains("inverts the declared order"))
        .expect("inversion finding");
    assert!(
        inversion
            .message
            .contains("via call `serve::cycle_b::backward` → `serve::cycle_b::take_models`"),
        "{}",
        inversion.message
    );
    let cycle = findings
        .iter()
        .find(|f| f.message.contains("lock cycle"))
        .expect("cycle finding");
    assert!(
        cycle
            .message
            .contains("serve::models → serve::state → serve::models"),
        "{}",
        cycle.message
    );
    assert_eq!(analysis.report.stats.lock_nodes, 2);
    assert_eq!(analysis.report.stats.lock_edges, 2);
    // Valid DOT with both edges, cycle edges highlighted.
    let dot = &analysis.lock_dot;
    assert!(dot.starts_with("digraph lock_graph {"), "{dot}");
    assert!(dot.trim_end().ends_with('}'), "{dot}");
    assert!(dot.contains("\"serve::models\" -> \"serve::state\""), "{dot}");
    assert!(dot.contains("\"serve::state\" -> \"serve::models\""), "{dot}");
    assert_eq!(dot.matches(", color=red").count(), 2, "{dot}");
}

#[test]
fn alloc_in_hot_path_flags_marked_and_configured_functions() {
    let files = [(
        "crates/serve/src/hot.rs",
        include_str!("fixtures/hot_alloc_bad.rs"),
    )];
    // Marker only: `tick` is hot, `cold` is not.
    let marked = analyze(&files, "");
    let findings = rule_findings(&marked, "alloc-in-hot-path");
    let whats: Vec<&str> = findings
        .iter()
        .filter_map(|f| f.message.split('`').nth(1))
        .collect();
    assert_eq!(whats, ["Vec::new", "push", "to_vec", "format!"], "{findings:?}");
    assert!(findings.iter().all(|f| f.message.contains("serve::hot::tick")));
    assert_eq!(marked.report.stats.hot_fns, 1);

    // Configured prefix additionally pulls `cold` in.
    let configured = analyze(
        &files,
        "[alloc-hot-path]\npaths = [\"serve::hot::cold\"]\n",
    );
    let findings = rule_findings(&configured, "alloc-in-hot-path");
    assert_eq!(findings.len(), 5, "findings: {findings:?}");
    assert!(
        findings
            .iter()
            .any(|f| f.message.contains("serve::hot::cold") && f.message.contains("to_vec")),
        "{findings:?}"
    );
    assert_eq!(configured.report.stats.hot_fns, 2);
}

#[test]
fn graph_stats_count_items_and_resolution_outcomes() {
    let analysis = analyze(
        &[
            (
                "crates/serve/src/api.rs",
                include_str!("fixtures/panic_chain_entry.rs"),
            ),
            (
                "crates/neural/src/plan.rs",
                include_str!("fixtures/panic_chain_callee.rs"),
            ),
        ],
        "",
    );
    let stats = &analysis.report.stats;
    assert_eq!(stats.items, 4, "handle, score, predict_one, first_weight");
    // handle→score, score→predict_one, predict_one→first_weight.
    assert_eq!(stats.calls_resolved, 3);
    // first/copied/unwrap are classified as external std methods.
    assert_eq!(stats.calls_external, 3);
    assert_eq!(stats.calls_unresolved, 0);
    assert_eq!(stats.resolved_pct(), 100);
}
