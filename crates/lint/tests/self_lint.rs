//! Self-lint: the shipped `lint.toml` keeps the real workspace clean.
//!
//! This is the executable form of the CI gate: zero non-baselined
//! findings, zero stale suppressions, every suppression carrying a
//! reason, and a sane symbol graph (the resolver actually resolved
//! something, the lock graph is non-trivial, the DOT export is valid).

use std::path::Path;

use lint::LintConfig;

#[test]
fn workspace_passes_spectro_lint_with_the_shipped_baseline() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let config_path = root.join("lint.toml");
    let config = LintConfig::load(&config_path).expect("lint.toml parses");
    assert!(
        !config.suppressions.is_empty(),
        "the shipped baseline is expected to carry suppressions"
    );
    assert!(
        config.suppressions.iter().all(|s| !s.reason.trim().is_empty()),
        "every suppression must carry a reason"
    );
    assert!(
        !config.atomics.is_empty(),
        "the shipped baseline is expected to carry [[atomics]] contracts"
    );
    assert!(
        config.atomics.iter().all(|c| !c.reason.trim().is_empty()),
        "every [[atomics]] contract must carry a reason"
    );

    let analysis = lint::run_full(&root, &config).expect("workspace scan succeeds");
    let report = &analysis.report;
    assert!(
        report.findings.is_empty(),
        "non-baselined findings:\n{}",
        report
            .findings
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(
        report.stale_suppressions.is_empty(),
        "stale suppressions:\n{}",
        report
            .stale_suppressions
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(report.files_scanned > 50, "workspace walk looks truncated");

    let stats = &report.stats;
    assert!(stats.items > 100, "symbol table too small: {stats}");
    assert!(stats.calls_resolved > 100, "resolver resolved too little: {stats}");
    assert!(stats.entry_points > 50, "entry-point detection broke: {stats}");
    assert!(stats.lock_nodes > 0 && stats.lock_edges > 0, "lock graph empty: {stats}");
    assert!(stats.guard_live_sites > 0, "guard-liveness replay saw nothing: {stats}");
    assert!(stats.atomic_sites > 0, "atomic-site classification saw nothing: {stats}");
    assert!(stats.condvar_waits > 0, "condvar-wait detection saw nothing: {stats}");

    let dot = &analysis.lock_dot;
    assert!(dot.starts_with("digraph lock_graph {"), "{dot}");
    assert!(dot.trim_end().ends_with('}'), "{dot}");
}
