//! A lightweight Rust lexer: just enough tokenization for rule matching.
//!
//! The lexer intentionally knows nothing about the grammar — it produces a
//! flat stream of identifiers, literals and single-character punctuation
//! with line numbers, skipping whitespace and comments (including doc
//! comments, so code inside `///` examples is never flagged). String,
//! raw-string, byte-string and char literals are opaque single tokens, so
//! rule patterns can never fire on text inside a literal.

/// What kind of token was lexed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`fn`, `unwrap`, `SystemTime`, ...).
    Ident,
    /// Integer literal (`42`, `0xff`, `1_000u64`).
    Int,
    /// Float literal (`1.0`, `2e-3`, `0.5f32`).
    Float,
    /// String literal of any flavour (`".."`, `r#".."#`, `b".."`).
    Str,
    /// Character or byte literal (`'x'`, `b'\n'`).
    Char,
    /// Lifetime or loop label (`'a`, `'outer`).
    Lifetime,
    /// One punctuation character (`.`, `=`, `!`, `{`, ...).
    Punct,
}

/// One lexed token with its source line (1-based).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Token class.
    pub kind: TokenKind,
    /// The token's source text (for `Str`, the opening quote only — rule
    /// matching never needs literal contents).
    pub text: String,
    /// 1-based line the token starts on.
    pub line: usize,
}

impl Token {
    /// True when this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct && self.text.as_bytes().first() == Some(&(c as u8))
    }

    /// True when this token is exactly the identifier `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == name
    }
}

/// Lexes `source` into a flat token stream. Never fails: unterminated
/// literals simply swallow the rest of the file (good enough for lint
/// matching — real compilation errors are rustc's job).
pub fn lex(source: &str) -> Vec<Token> {
    Lexer {
        bytes: source.as_bytes(),
        pos: 0,
        line: 1,
        tokens: Vec::new(),
    }
    .run()
}

struct Lexer<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: usize,
    tokens: Vec<Token>,
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

impl Lexer<'_> {
    fn run(mut self) -> Vec<Token> {
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                b' ' | b'\t' | b'\r' => self.pos += 1,
                b'/' if self.peek(1) == Some(b'/') => self.skip_line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.skip_block_comment(),
                b'r' if self.raw_string_ahead(1) => self.lex_raw_string(1),
                b'b' if self.peek(1) == Some(b'"') => self.lex_string(1),
                b'b' if self.peek(1) == Some(b'\'') => self.lex_char(1),
                b'b' if self.peek(1) == Some(b'r') && self.raw_string_ahead(2) => {
                    self.lex_raw_string(2)
                }
                b'"' => self.lex_string(0),
                b'\'' => self.lex_quote(),
                b if b.is_ascii_digit() => self.lex_number(),
                b if is_ident_start(b) => self.lex_ident(),
                _ => {
                    self.push(TokenKind::Punct, self.pos, self.pos + 1);
                    self.pos += 1;
                }
            }
        }
        self.tokens
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    fn push(&mut self, kind: TokenKind, start: usize, end: usize) {
        let text = String::from_utf8_lossy(&self.bytes[start..end]).into_owned();
        self.tokens.push(Token {
            kind,
            text,
            line: self.line,
        });
    }

    fn skip_line_comment(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b'\n' {
                break;
            }
            self.pos += 1;
        }
    }

    fn skip_block_comment(&mut self) {
        self.pos += 2;
        let mut depth = 1usize;
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b'\n' {
                self.line += 1;
                self.pos += 1;
            } else if b == b'/' && self.peek(1) == Some(b'*') {
                depth += 1;
                self.pos += 2;
            } else if b == b'*' && self.peek(1) == Some(b'/') {
                depth -= 1;
                self.pos += 2;
                if depth == 0 {
                    return;
                }
            } else {
                self.pos += 1;
            }
        }
    }

    /// Is `r"` / `r#"`-style raw-string syntax at offset `ahead`?
    fn raw_string_ahead(&self, ahead: usize) -> bool {
        let mut i = self.pos + ahead;
        while self.bytes.get(i) == Some(&b'#') {
            i += 1;
        }
        self.bytes.get(i) == Some(&b'"')
    }

    fn lex_raw_string(&mut self, prefix: usize) {
        let start = self.pos;
        self.pos += prefix;
        let mut hashes = 0usize;
        while self.bytes.get(self.pos) == Some(&b'#') {
            hashes += 1;
            self.pos += 1;
        }
        self.pos += 1; // opening quote
        let line = self.line;
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b'\n' {
                self.line += 1;
                self.pos += 1;
            } else if b == b'"' && self.bytes[self.pos + 1..].iter().take(hashes).all(|&h| h == b'#')
            {
                self.pos += 1 + hashes;
                break;
            } else {
                self.pos += 1;
            }
        }
        self.tokens.push(Token {
            kind: TokenKind::Str,
            text: String::from_utf8_lossy(&self.bytes[start..start + prefix + hashes + 1])
                .into_owned(),
            line,
        });
    }

    fn lex_string(&mut self, prefix: usize) {
        let start = self.pos;
        let line = self.line;
        self.pos += prefix + 1; // prefix + opening quote
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'\\' => self.pos += 2,
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                b'"' => {
                    self.pos += 1;
                    break;
                }
                _ => self.pos += 1,
            }
        }
        self.tokens.push(Token {
            kind: TokenKind::Str,
            text: String::from_utf8_lossy(&self.bytes[start..start + prefix + 1]).into_owned(),
            line,
        });
    }

    /// Disambiguates `'a` (lifetime/label) from `'a'` (char literal).
    fn lex_quote(&mut self) {
        let after = self.peek(1);
        if let Some(b) = after {
            if is_ident_start(b) && self.peek(2) != Some(b'\'') {
                // Lifetime or label: 'ident not followed by closing quote.
                let start = self.pos;
                self.pos += 1;
                while self.pos < self.bytes.len() && is_ident_continue(self.bytes[self.pos]) {
                    self.pos += 1;
                }
                self.push(TokenKind::Lifetime, start, self.pos);
                return;
            }
        }
        self.lex_char(0);
    }

    fn lex_char(&mut self, prefix: usize) {
        let start = self.pos;
        self.pos += prefix + 1; // prefix + opening quote
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'\\' => self.pos += 2,
                b'\'' => {
                    self.pos += 1;
                    break;
                }
                b'\n' => break, // unterminated; bail at the line end
                _ => self.pos += 1,
            }
        }
        self.push(TokenKind::Char, start, self.pos.min(self.bytes.len()));
    }

    fn lex_number(&mut self) {
        let start = self.pos;
        let mut float = false;
        if self.bytes[self.pos] == b'0'
            && matches!(self.peek(1), Some(b'x' | b'X' | b'o' | b'O' | b'b' | b'B'))
        {
            self.pos += 2;
            while self
                .bytes
                .get(self.pos)
                .is_some_and(|&b| b.is_ascii_alphanumeric() || b == b'_')
            {
                self.pos += 1;
            }
            self.push(TokenKind::Int, start, self.pos);
            return;
        }
        self.consume_digits();
        // Fraction: `1.5` yes; `1..2`, `1.max()` and `pair.0` stay integral.
        if self.bytes.get(self.pos) == Some(&b'.') {
            match self.peek(1) {
                Some(b) if b.is_ascii_digit() => {
                    float = true;
                    self.pos += 1;
                    self.consume_digits();
                }
                Some(b) if b == b'.' || is_ident_start(b) => {}
                _ => {
                    // Trailing-dot float like `1.`
                    float = true;
                    self.pos += 1;
                }
            }
        }
        // Exponent.
        if matches!(self.bytes.get(self.pos), Some(b'e' | b'E')) {
            let mut j = self.pos + 1;
            if matches!(self.bytes.get(j), Some(b'+' | b'-')) {
                j += 1;
            }
            if self.bytes.get(j).is_some_and(u8::is_ascii_digit) {
                float = true;
                self.pos = j;
                self.consume_digits();
            }
        }
        // Suffix (`u64`, `f32`, ...).
        let suffix_start = self.pos;
        while self.pos < self.bytes.len() && is_ident_continue(self.bytes[self.pos]) {
            self.pos += 1;
        }
        let suffix = &self.bytes[suffix_start..self.pos];
        if suffix == b"f32" || suffix == b"f64" {
            float = true;
        }
        let kind = if float { TokenKind::Float } else { TokenKind::Int };
        self.push(kind, start, self.pos);
    }

    fn consume_digits(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|&b| b.is_ascii_digit() || b == b'_')
        {
            self.pos += 1;
        }
    }

    fn lex_ident(&mut self) {
        let start = self.pos;
        while self.pos < self.bytes.len() && is_ident_continue(self.bytes[self.pos]) {
            self.pos += 1;
        }
        self.push(TokenKind::Ident, start, self.pos);
    }
}

/// Marks every token that sits inside test-only code: a `#[cfg(test)]` /
/// `#[test]`-attributed item (heuristic: any attribute containing the
/// identifier `test`) and the braced item body that follows it.
pub fn test_mask(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].is_punct('#') && tokens.get(i + 1).is_some_and(|t| t.is_punct('[')) {
            let Some(close) = matching(tokens, i + 1, '[', ']') else {
                break;
            };
            let is_test_attr = tokens[i..=close].iter().any(|t| t.is_ident("test"));
            if !is_test_attr {
                i = close + 1;
                continue;
            }
            // Skip any further attributes on the same item.
            let mut k = close + 1;
            while k < tokens.len()
                && tokens[k].is_punct('#')
                && tokens.get(k + 1).is_some_and(|t| t.is_punct('['))
            {
                match matching(tokens, k + 1, '[', ']') {
                    Some(c) => k = c + 1,
                    None => break,
                }
            }
            // The item body is the first top-level brace group before a `;`.
            let mut b = k;
            let mut depth = 0i32;
            while b < tokens.len() {
                if tokens[b].is_punct('{') {
                    break;
                }
                if tokens[b].is_punct('(') || tokens[b].is_punct('[') {
                    depth += 1;
                } else if tokens[b].is_punct(')') || tokens[b].is_punct(']') {
                    depth -= 1;
                } else if tokens[b].is_punct(';') && depth == 0 {
                    break;
                }
                b += 1;
            }
            let end = if b < tokens.len() && tokens[b].is_punct('{') {
                matching(tokens, b, '{', '}').unwrap_or(tokens.len() - 1)
            } else {
                b.min(tokens.len() - 1)
            };
            for m in &mut mask[i..=end] {
                *m = true;
            }
            i = end + 1;
            continue;
        }
        i += 1;
    }
    mask
}

/// Index of the punct matching `open` at `start` (which must hold `open`).
fn matching(tokens: &[Token], start: usize, open: char, close: char) -> Option<usize> {
    let mut depth = 0usize;
    for (i, t) in tokens.iter().enumerate().skip(start) {
        if t.is_punct(open) {
            depth += 1;
        } else if t.is_punct(close) {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn numbers_classify_ints_and_floats() {
        let toks = kinds("1 1.5 0.5f32 2e-3 1_000u64 0xff 1..2 x.0 1.max(2)");
        let floats: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Float)
            .map(|(_, s)| s.as_str())
            .collect();
        assert_eq!(floats, ["1.5", "0.5f32", "2e-3"]);
        let ints: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Int)
            .map(|(_, s)| s.as_str())
            .collect();
        assert_eq!(ints, ["1", "1_000u64", "0xff", "1", "2", "0", "1", "2"]);
    }

    #[test]
    fn comments_and_strings_hide_their_contents() {
        let toks = lex("// unwrap()\n/* panic! /* nested */ */ let s = \"unwrap()\"; r#\"panic!\"#");
        assert!(!toks.iter().any(|t| t.is_ident("unwrap") || t.is_ident("panic")));
        assert_eq!(toks.iter().filter(|t| t.kind == TokenKind::Str).count(), 2);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) { let c = 'x'; let nl = '\\n'; }");
        assert_eq!(toks.iter().filter(|t| t.kind == TokenKind::Lifetime).count(), 2);
        assert_eq!(toks.iter().filter(|t| t.kind == TokenKind::Char).count(), 2);
    }

    #[test]
    fn line_numbers_survive_multiline_constructs() {
        let toks = lex("a\n/* x\ny */\nb \"s\ntr\" c");
        let a = toks.iter().find(|t| t.is_ident("a")).unwrap();
        let b = toks.iter().find(|t| t.is_ident("b")).unwrap();
        let c = toks.iter().find(|t| t.is_ident("c")).unwrap();
        assert_eq!((a.line, b.line, c.line), (1, 4, 5));
    }

    #[test]
    fn test_mask_covers_cfg_test_modules_and_test_fns() {
        let src = r#"
            fn live() { x.unwrap(); }
            #[cfg(test)]
            mod tests {
                fn helper() { y.unwrap(); }
            }
            #[test]
            fn case() { z.unwrap(); }
        "#;
        let toks = lex(src);
        let mask = test_mask(&toks);
        let flagged: Vec<bool> = toks
            .iter()
            .zip(&mask)
            .filter(|(t, _)| t.is_ident("unwrap"))
            .map(|(_, &m)| m)
            .collect();
        assert_eq!(flagged, [false, true, true]);
    }

    #[test]
    fn cfg_all_test_is_masked_too() {
        let src = "#[cfg(all(test, feature = \"x\"))] mod t { a.unwrap(); } fn f() {}";
        let toks = lex(src);
        let mask = test_mask(&toks);
        let unwrap_pos = toks.iter().position(|t| t.is_ident("unwrap")).unwrap();
        assert!(mask[unwrap_pos]);
        let f_pos = toks.iter().position(|t| t.is_ident("f")).unwrap();
        assert!(!mask[f_pos]);
    }
}
