//! `lint.toml` parsing: the lock-order table and the suppression baseline.
//!
//! The parser understands exactly the TOML subset the config needs —
//! `[section]` and `[[array-of-tables]]` headers, `key = "string"`,
//! `key = integer` and `key = ["array", "of", "strings"]` on one line,
//! and `#` comments — so the crate stays free of external parser deps.

use std::path::Path;

/// One baselined finding: silenced deliberately, with a recorded reason.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Suppression {
    /// Rule id the suppression applies to.
    pub rule: String,
    /// Workspace-relative path (forward slashes).
    pub path: String,
    /// Specific line, or `None` to suppress the rule for the whole file.
    pub line: Option<usize>,
    /// Why the finding is acceptable — required, so every baseline entry
    /// documents its own justification.
    pub reason: String,
}

/// One declared per-field atomic ordering contract: which `Ordering`s the
/// field's operations may use, and why that is correct.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AtomicContract {
    /// Crate-qualified field name, e.g. `serve::stop`.
    pub field: String,
    /// Allowed `Ordering` names (`Relaxed`, `Acquire`, ...). An operation
    /// on the field using any other ordering is a finding.
    pub allowed: Vec<String>,
    /// Why the declared orderings are sufficient — required, so every
    /// contract documents its own correctness argument.
    pub reason: String,
}

/// Parsed `lint.toml`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LintConfig {
    /// Declared lock acquisition order for the `lock-graph` rule: locks
    /// earlier in the list must be acquired before locks later in it.
    pub lock_order: Vec<String>,
    /// Whether `panic-reachability` counts slice/array indexing as a
    /// panic source. Off by default: indexing is pervasive and mostly
    /// guarded, so it is opt-in per workspace.
    pub index_panics: bool,
    /// Function-path prefixes (e.g. `neural::plan::FrozenPlan::predict`)
    /// treated as hot by `alloc-in-hot-path`, in addition to any function
    /// carrying a `// lint: hot` marker.
    pub hot_paths: Vec<String>,
    /// Per-field atomic ordering contracts for the `atomic-ordering`
    /// rule. Every atomic field in the checked crates must have one.
    pub atomics: Vec<AtomicContract>,
    /// Baseline suppressions.
    pub suppressions: Vec<Suppression>,
}

impl LintConfig {
    /// Loads and parses a `lint.toml`. A missing file is an empty config.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed line.
    pub fn load(path: &Path) -> Result<Self, String> {
        match std::fs::read_to_string(path) {
            Ok(text) => Self::parse(&text),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Self::default()),
            Err(e) => Err(format!("{}: {e}", path.display())),
        }
    }

    /// Parses config text.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed line.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut config = Self::default();
        let mut section = Section::None;
        for (lineno, line) in logical_lines(text) {
            let line = line.as_str();
            if let Some(header) = line.strip_prefix("[[").and_then(|s| s.strip_suffix("]]")) {
                match header.trim() {
                    "suppress" => {
                        flush(&mut section, &mut config, lineno)?;
                        section = Section::Suppress(PartialSuppression::default());
                    }
                    "atomics" => {
                        flush(&mut section, &mut config, lineno)?;
                        section = Section::Atomics(PartialContract::default());
                    }
                    other => return Err(format!("line {lineno}: unknown table [[{other}]]")),
                }
                continue;
            }
            if let Some(header) = line.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
                match header.trim() {
                    "lock-order" => {
                        flush(&mut section, &mut config, lineno)?;
                        section = Section::LockOrder;
                    }
                    "panic-reachability" => {
                        flush(&mut section, &mut config, lineno)?;
                        section = Section::PanicReachability;
                    }
                    "alloc-hot-path" => {
                        flush(&mut section, &mut config, lineno)?;
                        section = Section::AllocHotPath;
                    }
                    other => return Err(format!("line {lineno}: unknown section [{other}]")),
                }
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| format!("line {lineno}: expected `key = value`"))?;
            let key = key.trim();
            let value = value.trim();
            match (&mut section, key) {
                (Section::LockOrder, "order") => {
                    config.lock_order = parse_string_array(value)
                        .ok_or_else(|| format!("line {lineno}: order must be a string array"))?;
                }
                (Section::PanicReachability, "index-panics") => {
                    config.index_panics = parse_bool(value).ok_or_else(|| {
                        format!("line {lineno}: index-panics must be true or false")
                    })?;
                }
                (Section::AllocHotPath, "paths") => {
                    config.hot_paths = parse_string_array(value)
                        .ok_or_else(|| format!("line {lineno}: paths must be a string array"))?;
                }
                (Section::Suppress(partial), "rule") => {
                    partial.rule = Some(parse_string(value).ok_or_else(|| {
                        format!("line {lineno}: rule must be a quoted string")
                    })?);
                }
                (Section::Suppress(partial), "path") => {
                    partial.path = Some(parse_string(value).ok_or_else(|| {
                        format!("line {lineno}: path must be a quoted string")
                    })?);
                }
                (Section::Suppress(partial), "reason") => {
                    partial.reason = Some(parse_string(value).ok_or_else(|| {
                        format!("line {lineno}: reason must be a quoted string")
                    })?);
                }
                (Section::Suppress(partial), "line") => {
                    partial.line = Some(value.parse::<usize>().map_err(|_| {
                        format!("line {lineno}: line must be an integer")
                    })?);
                }
                (Section::Atomics(partial), "field") => {
                    partial.field = Some(parse_string(value).ok_or_else(|| {
                        format!("line {lineno}: field must be a quoted string")
                    })?);
                }
                (Section::Atomics(partial), "allowed") => {
                    partial.allowed = Some(parse_string_array(value).ok_or_else(|| {
                        format!("line {lineno}: allowed must be a string array")
                    })?);
                }
                (Section::Atomics(partial), "reason") => {
                    partial.reason = Some(parse_string(value).ok_or_else(|| {
                        format!("line {lineno}: reason must be a quoted string")
                    })?);
                }
                (_, key) => {
                    return Err(format!("line {lineno}: unexpected key `{key}` here"));
                }
            }
        }
        flush(&mut section, &mut config, text.lines().count() + 1)?;
        Ok(config)
    }
}

#[derive(Debug, Default)]
struct PartialSuppression {
    rule: Option<String>,
    path: Option<String>,
    line: Option<usize>,
    reason: Option<String>,
}

#[derive(Debug, Default)]
struct PartialContract {
    field: Option<String>,
    allowed: Option<Vec<String>>,
    reason: Option<String>,
}

enum Section {
    None,
    LockOrder,
    PanicReachability,
    AllocHotPath,
    Suppress(PartialSuppression),
    Atomics(PartialContract),
}

/// Completes a pending `[[suppress]]` / `[[atomics]]` table when the next
/// section starts (or the file ends), enforcing the mandatory keys —
/// including the written `reason` both tables require.
fn flush(section: &mut Section, config: &mut LintConfig, lineno: usize) -> Result<(), String> {
    match std::mem::replace(section, Section::None) {
        Section::Suppress(partial) => {
            let err = |field: &str| {
                format!("line {lineno}: [[suppress]] entry ending here is missing `{field}`")
            };
            config.suppressions.push(Suppression {
                rule: partial.rule.ok_or_else(|| err("rule"))?,
                path: partial.path.ok_or_else(|| err("path"))?,
                line: partial.line,
                reason: partial.reason.ok_or_else(|| err("reason"))?,
            });
        }
        Section::Atomics(partial) => {
            let err = |field: &str| {
                format!("line {lineno}: [[atomics]] entry ending here is missing `{field}`")
            };
            let contract = AtomicContract {
                field: partial.field.ok_or_else(|| err("field"))?,
                allowed: partial.allowed.ok_or_else(|| err("allowed"))?,
                reason: partial.reason.ok_or_else(|| err("reason"))?,
            };
            if contract.allowed.is_empty() {
                return Err(format!(
                    "line {lineno}: [[atomics]] `{}` allows no orderings",
                    contract.field
                ));
            }
            config.atomics.push(contract);
        }
        _ => {}
    }
    Ok(())
}

/// Joins physical lines into logical ones: a `key = [` array may span
/// multiple lines until its closing `]`. Comments are stripped and blank
/// lines dropped; each logical line keeps the number of its first
/// physical line for error messages.
fn logical_lines(text: &str) -> Vec<(usize, String)> {
    let mut out: Vec<(usize, String)> = Vec::new();
    let mut pending: Option<(usize, String)> = None;
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let stripped = strip_comment(raw).trim();
        if stripped.is_empty() {
            continue;
        }
        if let Some((start, buffer)) = &mut pending {
            buffer.push(' ');
            buffer.push_str(stripped);
            if stripped.contains(']') {
                out.push((*start, buffer.clone()));
                pending = None;
            }
            continue;
        }
        let opens_array = stripped
            .split_once('=')
            .is_some_and(|(_, v)| v.trim().starts_with('[') && !v.contains(']'));
        if opens_array {
            pending = Some((lineno, stripped.to_string()));
        } else {
            out.push((lineno, stripped.to_string()));
        }
    }
    // An unterminated array still surfaces as a parse error downstream.
    if let Some((start, buffer)) = pending {
        out.push((start, buffer));
    }
    out
}

/// Drops a trailing `#` comment, honouring quotes.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_bool(value: &str) -> Option<bool> {
    match value {
        "true" => Some(true),
        "false" => Some(false),
        _ => None,
    }
}

fn parse_string(value: &str) -> Option<String> {
    let inner = value.strip_prefix('"')?.strip_suffix('"')?;
    if inner.contains('"') {
        return None;
    }
    Some(inner.to_string())
}

fn parse_string_array(value: &str) -> Option<Vec<String>> {
    let inner = value.strip_prefix('[')?.strip_suffix(']')?.trim();
    if inner.is_empty() {
        return Some(Vec::new());
    }
    inner
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(parse_string)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_lock_order_and_suppressions() {
        let text = r#"
# project lint baseline
[lock-order]
order = ["models", "state", "result"]

[[suppress]]
rule = "no-float-eq"
path = "crates/spectrum/src/stats.rs"
line = 91
reason = "exact-zero variance guard"

[[suppress]]
rule = "no-unwrap-in-lib"
path = "crates/neural/src/optim.rs"  # whole file
reason = "slot invariants"
"#;
        let config = LintConfig::parse(text).unwrap();
        assert_eq!(config.lock_order, ["models", "state", "result"]);
        assert_eq!(config.suppressions.len(), 2);
        assert_eq!(config.suppressions[0].line, Some(91));
        assert_eq!(config.suppressions[1].line, None);
        assert_eq!(config.suppressions[1].reason, "slot invariants");
    }

    #[test]
    fn parses_multi_line_arrays() {
        let text = "[alloc-hot-path]\npaths = [\n    \"a::b\", # inference\n    \"c::d\",\n]\n";
        let config = LintConfig::parse(text).unwrap();
        assert_eq!(config.hot_paths, ["a::b", "c::d"]);
    }

    #[test]
    fn parses_graph_rule_sections() {
        let text = r#"
[panic-reachability]
index-panics = true

[alloc-hot-path]
paths = ["neural::plan::FrozenPlan::predict", "serve::engine::worker_loop"]
"#;
        let config = LintConfig::parse(text).unwrap();
        assert!(config.index_panics);
        assert_eq!(
            config.hot_paths,
            ["neural::plan::FrozenPlan::predict", "serve::engine::worker_loop"]
        );
        assert!(LintConfig::parse("[panic-reachability]\nindex-panics = maybe\n").is_err());
    }

    #[test]
    fn parses_atomic_contracts() {
        let text = r#"
[[atomics]]
field = "serve::stop"
allowed = ["Relaxed"]
reason = "pure shutdown flag; polled, never guards data"

[[atomics]]
field = "obs::seq"
allowed = ["Acquire", "Release"]
reason = "publishes journal slots"
"#;
        let config = LintConfig::parse(text).unwrap();
        assert_eq!(config.atomics.len(), 2);
        assert_eq!(config.atomics[0].field, "serve::stop");
        assert_eq!(config.atomics[0].allowed, ["Relaxed"]);
        assert_eq!(config.atomics[1].allowed, ["Acquire", "Release"]);
        // Missing reason / empty allowed are rejected.
        let missing = "[[atomics]]\nfield = \"x\"\nallowed = [\"Relaxed\"]\n";
        assert!(LintConfig::parse(missing).unwrap_err().contains("reason"));
        let empty = "[[atomics]]\nfield = \"x\"\nallowed = []\nreason = \"r\"\n";
        assert!(LintConfig::parse(empty).unwrap_err().contains("allows no orderings"));
    }

    #[test]
    fn missing_reason_is_rejected() {
        let text = "[[suppress]]\nrule = \"x\"\npath = \"y\"\n";
        let err = LintConfig::parse(text).unwrap_err();
        assert!(err.contains("reason"), "{err}");
    }

    #[test]
    fn unknown_keys_and_sections_are_rejected() {
        assert!(LintConfig::parse("[nope]\n").is_err());
        assert!(LintConfig::parse("[lock-order]\nbogus = 3\n").is_err());
    }

    #[test]
    fn empty_and_missing_config_is_default() {
        assert_eq!(LintConfig::parse("").unwrap(), LintConfig::default());
        let missing = LintConfig::load(Path::new("/nonexistent/lint.toml")).unwrap();
        assert_eq!(missing, LintConfig::default());
    }
}
