//! Interprocedural concurrency dataflow: guard-liveness tracking through
//! function bodies and one level across calls, powering the three v3
//! rules `blocking-under-lock`, `atomic-ordering` and `condvar-protocol`.
//!
//! The layer replays each function's [`LockEvent`] stream (the same
//! stream the lock graph consumes) against a *guard-liveness lattice*: a
//! stack of live `let`-bound guards keyed by brace depth, with `drop(g)`
//! killing a guard early and `Condvar::wait(g)` atomically releasing the
//! passed guard for the duration of the wait. Unbound (temporary) guards
//! die at the end of their own statement and are invisible here — same
//! approximation the lock graph makes, documented in DESIGN.md §14.
//!
//! Interprocedural reach is one level deep, mirroring the lock graph: a
//! per-function summary records every *direct* blocking site, and a call
//! to a summarized function while any guard is live inherits the callee's
//! blocking sites into the caller's report. Lock and atomic-field
//! identities are crate-qualified (`serve::state`), so same-named fields
//! in different crates never alias.

use std::collections::{BTreeMap, BTreeSet};

use crate::config::LintConfig;
use crate::findings::{Finding, GraphStats, Severity};
use crate::graph::{crate_dir_of, qualify_lock, CallGraph};
use crate::parser::{AtomicOp, CallKind, CallSite, FnItem, LockEvent};
use crate::resolve::SymbolTable;
use crate::rules::LOCK_ORDER_CRATES;

/// One direct blocking operation inside a function body.
#[derive(Debug, Clone)]
struct BlockSite {
    /// What blocks, human-readable (`.join()`, `thread::sleep`, ...).
    what: String,
    /// 1-based source line.
    line: usize,
}

/// Per-function dataflow summary: the direct blocking sites, used for the
/// one-level interprocedural expansion.
struct FnSummary {
    direct_blocks: Vec<BlockSite>,
}

/// A live lock guard during replay.
#[derive(Debug, Clone)]
struct LiveGuard {
    /// The `let` binding holding the guard.
    binding: String,
    /// Crate-qualified lock identity (`serve::state`).
    lock: String,
    /// Acquisition line.
    line: usize,
    /// Brace depth at acquisition (guards die when their block closes).
    depth: usize,
}

/// One `notify_one`/`notify_all` site, checked against the condvar's
/// associated predicate mutex after the whole workspace is replayed.
struct NotifySite {
    /// Crate-qualified condvar identity.
    condvar: String,
    /// Crate-qualified locks held at the notify.
    held: BTreeSet<String>,
    /// Crate-qualified locks acquired earlier in the same body, including
    /// temporaries — the "provably follows the critical section" case.
    acquired_before: BTreeSet<String>,
    /// Reporting location.
    file: String,
    /// 1-based source line.
    line: usize,
    /// Owning function path.
    fn_path: String,
}

/// Classifies a call site as a known blocking primitive, returning the
/// human label. `wait`/`wait_timeout` *with* arguments are condvar waits,
/// recorded as [`LockEvent::CondvarWait`] and handled by the replay, so
/// only their zero-arg namesakes (`JoinHandle::join`, `Ticket::wait`)
/// classify here.
fn classify_blocking(call: &CallSite) -> Option<String> {
    match &call.kind {
        CallKind::Method { name, .. } => match name.as_str() {
            "join" | "wait" if call.no_args => Some(format!(".{name}()")),
            "recv" | "recv_timeout" => Some(format!(".{name}(..) channel receive")),
            "submit" | "submit_with_retry" | "submit_pinned" => {
                Some(format!(".{name}(..) engine submission"))
            }
            "read_to_string" | "read_to_end" | "sync_all" => {
                Some(format!(".{name}(..) file I/O"))
            }
            _ => None,
        },
        CallKind::Path(segments) => {
            let last = segments.last().map(String::as_str).unwrap_or("");
            if last == "sleep" {
                return Some("thread::sleep".to_string());
            }
            if segments.iter().any(|s| s == "fs") {
                return Some(format!("{} file I/O", segments.join("::")));
            }
            if segments.first().is_some_and(|s| s == "File")
                && matches!(last, "open" | "create")
            {
                return Some(format!("File::{last} file I/O"));
            }
            None
        }
    }
}

/// Builds the per-function summary of direct blocking sites: classified
/// blocking calls plus condvar waits (waiting inside the callee blocks
/// the caller just the same).
fn summarize(item: &FnItem) -> FnSummary {
    let mut direct_blocks = Vec::new();
    for event in &item.lock_events {
        match event {
            LockEvent::Call { index } => {
                if let Some(call) = item.calls.get(*index) {
                    if let Some(what) = classify_blocking(call) {
                        direct_blocks.push(BlockSite {
                            what,
                            line: call.line,
                        });
                    }
                }
            }
            LockEvent::CondvarWait { field, line, .. } => {
                direct_blocks.push(BlockSite {
                    what: format!("condvar `{field}` wait"),
                    line: *line,
                });
            }
            _ => {}
        }
    }
    FnSummary { direct_blocks }
}

/// Runs the three dataflow rules over the workspace. Only the
/// concurrency crates ([`LOCK_ORDER_CRATES`]) are in scope — everything
/// else has no locks, condvars or cross-thread atomics by construction.
pub fn dataflow_rules(
    table: &SymbolTable,
    graph: &CallGraph,
    config: &LintConfig,
    stats: &mut GraphStats,
    out: &mut Vec<Finding>,
) {
    let in_scope: Vec<bool> = table
        .items
        .iter()
        .map(|i| LOCK_ORDER_CRATES.contains(&crate_dir_of(&i.file)))
        .collect();
    let summaries: Vec<Option<FnSummary>> = table
        .items
        .iter()
        .enumerate()
        .map(|(i, item)| in_scope[i].then(|| summarize(item)))
        .collect();

    // condvar → predicate mutex(es), learned from every wait site where
    // the passed guard resolves to a live lock guard.
    let mut cv_mutexes: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    let mut notifies: Vec<NotifySite> = Vec::new();

    for (idx, item) in table.items.iter().enumerate() {
        if !in_scope[idx] {
            continue;
        }
        replay_fn(
            idx, item, table, graph, &summaries, stats, out, &mut cv_mutexes, &mut notifies,
        );
    }

    // condvar-protocol, notify side: a notify must hold the predicate's
    // mutex or provably follow its critical section in the same body.
    for site in &notifies {
        let Some(mutexes) = cv_mutexes.get(&site.condvar) else {
            // No wait site resolved a guard for this condvar — nothing to
            // check the notify against.
            continue;
        };
        let holds = mutexes.iter().any(|m| site.held.contains(m));
        let follows = mutexes.iter().any(|m| site.acquired_before.contains(m));
        if !holds && !follows {
            let mutex_list: Vec<&str> = mutexes.iter().map(String::as_str).collect();
            out.push(Finding {
                rule: "condvar-protocol".to_string(),
                severity: Severity::Error,
                path: site.file.clone(),
                line: site.line,
                message: format!(
                    "`{}` notifies `{}` without holding or previously acquiring its \
                     predicate mutex [{}] in this body — a waiter can miss the wakeup \
                     if the predicate changes between its check and its wait",
                    site.fn_path,
                    site.condvar,
                    mutex_list.join(", "),
                ),
            });
        }
    }

    atomic_ordering(table, config, &in_scope, stats, out);
}

/// Replays one function's event stream against the guard-liveness
/// lattice, emitting `blocking-under-lock` and wait-side
/// `condvar-protocol` findings and recording condvar associations and
/// notify sites for the workspace-level notify check.
#[allow(clippy::too_many_arguments)]
fn replay_fn(
    idx: usize,
    item: &FnItem,
    table: &SymbolTable,
    graph: &CallGraph,
    summaries: &[Option<FnSummary>],
    stats: &mut GraphStats,
    out: &mut Vec<Finding>,
    cv_mutexes: &mut BTreeMap<String, BTreeSet<String>>,
    notifies: &mut Vec<NotifySite>,
) {
    let crate_prefix = crate_dir_of(&item.file);
    let mut held: Vec<LiveGuard> = Vec::new();
    let mut acquired_before: BTreeSet<String> = BTreeSet::new();
    let mut depth = 0usize;
    for event in &item.lock_events {
        match event {
            LockEvent::Open => depth += 1,
            LockEvent::Close => {
                depth = depth.saturating_sub(1);
                held.retain(|g| g.depth <= depth);
            }
            LockEvent::DropBinding { name } => {
                held.retain(|g| g.binding != *name);
            }
            LockEvent::Acquire { field, binding, line } => {
                let lock = qualify_lock(crate_prefix, field);
                acquired_before.insert(lock.clone());
                if let Some(binding) = binding {
                    // Re-binding (`state = ...lock()`) replaces the guard.
                    held.retain(|g| g.binding != *binding);
                    held.push(LiveGuard {
                        binding: binding.clone(),
                        lock,
                        line: *line,
                        depth,
                    });
                }
            }
            LockEvent::CondvarWait { field, guard, timeout, in_loop, line } => {
                let condvar = qualify_lock(crate_prefix, field);
                stats.condvar_waits += 1;
                if !held.is_empty() {
                    stats.guard_live_sites += 1;
                }
                // Associate the condvar with the mutex of the passed
                // guard (the predicate's mutex).
                let released: Option<&LiveGuard> = guard
                    .as_ref()
                    .and_then(|g| held.iter().find(|h| &h.binding == g));
                if let Some(g) = released {
                    cv_mutexes
                        .entry(condvar.clone())
                        .or_default()
                        .insert(g.lock.clone());
                }
                // Wait must re-check its predicate in a loop (spurious
                // wakeups); `wait_timeout` used as a plain timed sleep in
                // a loop is the same protocol.
                if !in_loop {
                    let op = if *timeout { "wait_timeout" } else { "wait" };
                    out.push(Finding {
                        rule: "condvar-protocol".to_string(),
                        severity: Severity::Error,
                        path: item.file.clone(),
                        line: *line,
                        message: format!(
                            "`{}` calls `{condvar}.{op}(..)` outside any loop — condvar \
                             waits wake spuriously, so the predicate must be re-checked \
                             in a `while`/`loop`",
                            item.path(),
                        ),
                    });
                }
                // The wait atomically releases the passed guard; blocking
                // is only a finding for every *other* live guard.
                for g in held
                    .iter()
                    .filter(|h| guard.as_ref() != Some(&h.binding))
                {
                    out.push(Finding {
                        rule: "blocking-under-lock".to_string(),
                        severity: Severity::Error,
                        path: item.file.clone(),
                        line: *line,
                        message: format!(
                            "`{}` waits on condvar `{condvar}` while guard `{}` on \
                             `{}` (acquired line {}) is still live — the wait only \
                             releases its own mutex, so every other waiter of `{}` \
                             stalls for the full wait",
                            item.path(),
                            g.binding,
                            g.lock,
                            g.line,
                            g.lock,
                        ),
                    });
                }
            }
            LockEvent::Notify { field, line } => {
                notifies.push(NotifySite {
                    condvar: qualify_lock(crate_prefix, field),
                    held: held.iter().map(|g| g.lock.clone()).collect(),
                    acquired_before: acquired_before.clone(),
                    file: item.file.clone(),
                    line: *line,
                    fn_path: item.path(),
                });
            }
            LockEvent::Call { index } => {
                if held.is_empty() {
                    continue;
                }
                stats.guard_live_sites += 1;
                let Some(call) = item.calls.get(*index) else { continue };
                // Direct blocking primitive under a live guard.
                if let Some(what) = classify_blocking(call) {
                    for g in &held {
                        out.push(Finding {
                            rule: "blocking-under-lock".to_string(),
                            severity: Severity::Error,
                            path: item.file.clone(),
                            line: call.line,
                            message: format!(
                                "`{}` executes blocking `{what}` while guard `{}` on \
                                 `{}` (acquired line {}) is live",
                                item.path(),
                                g.binding,
                                g.lock,
                                g.line,
                            ),
                        });
                    }
                    continue;
                }
                // One level across calls: a resolved callee whose summary
                // blocks directly inherits into this holding context.
                let Some(edge) = graph.edges[idx].iter().find(|e| e.call_index == *index)
                else {
                    continue;
                };
                let Some(Some(summary)) = summaries.get(edge.target) else { continue };
                let Some(block) = summary.direct_blocks.first() else { continue };
                let callee = &table.items[edge.target];
                let extra = if summary.direct_blocks.len() > 1 {
                    format!(" (+{} more blocking site(s))", summary.direct_blocks.len() - 1)
                } else {
                    String::new()
                };
                for g in &held {
                    out.push(Finding {
                        rule: "blocking-under-lock".to_string(),
                        severity: Severity::Error,
                        path: item.file.clone(),
                        line: call.line,
                        message: format!(
                            "`{}` calls `{}` while guard `{}` on `{}` (acquired line \
                             {}) is live, and the callee blocks: {} at {}:{}{} — chain \
                             {} → {}",
                            item.path(),
                            callee.path(),
                            g.binding,
                            g.lock,
                            g.line,
                            block.what,
                            callee.file,
                            block.line,
                            extra,
                            item.path(),
                            callee.path(),
                        ),
                    });
                }
            }
        }
    }
}

/// `atomic-ordering`: every atomic site in the concurrency crates is
/// classified by crate-qualified field; each field needs a declared
/// `[[atomics]]` contract in `lint.toml`, each site must stay inside its
/// contract's allowed orderings, and Relaxed halves of publication
/// store/load pairs are flagged regardless of contract.
fn atomic_ordering(
    table: &SymbolTable,
    config: &LintConfig,
    in_scope: &[bool],
    stats: &mut GraphStats,
    out: &mut Vec<Finding>,
) {
    /// Every observed site of one atomic field.
    #[derive(Default)]
    struct FieldSites {
        /// (op, ordering, file, line) per recorded ordering.
        sites: Vec<(AtomicOp, String, String, usize)>,
    }
    let mut fields: BTreeMap<String, FieldSites> = BTreeMap::new();
    for (idx, item) in table.items.iter().enumerate() {
        if !in_scope[idx] {
            continue;
        }
        let crate_prefix = crate_dir_of(&item.file);
        for site in &item.atomics {
            stats.atomic_sites += 1;
            let field = qualify_lock(crate_prefix, &site.field);
            let entry = fields.entry(field).or_default();
            for ordering in &site.orderings {
                entry
                    .sites
                    .push((site.op, ordering.clone(), item.file.clone(), site.line));
            }
        }
    }

    for (field, data) in &fields {
        let contract = config.atomics.iter().find(|c| &c.field == field);
        match contract {
            None => {
                // One finding per (field, file), anchored at the first
                // site in that file, so baselining stays per-file.
                let mut by_file: BTreeMap<&str, (usize, usize, BTreeSet<&str>)> = BTreeMap::new();
                for (_, ordering, file, line) in &data.sites {
                    let e = by_file.entry(file).or_insert((usize::MAX, 0, BTreeSet::new()));
                    e.0 = e.0.min(*line);
                    e.1 += 1;
                    e.2.insert(ordering.as_str());
                }
                for (file, (first_line, count, orderings)) in by_file {
                    let list: Vec<&str> = orderings.into_iter().collect();
                    out.push(Finding {
                        rule: "atomic-ordering".to_string(),
                        severity: Severity::Error,
                        path: file.to_string(),
                        line: first_line,
                        message: format!(
                            "atomic field `{field}` has {count} op site(s) here using \
                             [{}] but no [[atomics]] contract in lint.toml — declare \
                             the allowed orderings with a reason",
                            list.join(", "),
                        ),
                    });
                }
            }
            Some(contract) => {
                for (op, ordering, file, line) in &data.sites {
                    if !contract.allowed.iter().any(|a| a == ordering) {
                        out.push(Finding {
                            rule: "atomic-ordering".to_string(),
                            severity: Severity::Error,
                            path: file.clone(),
                            line: *line,
                            message: format!(
                                "{} of `{field}` uses Ordering::{ordering} but the \
                                 [[atomics]] contract allows only [{}]",
                                op.label(),
                                contract.allowed.join(", "),
                            ),
                        });
                    }
                }
            }
        }

        // Publication-pair mismatch, contract or not: a Relaxed store
        // observed by an Acquire/SeqCst load (or a Relaxed load of a
        // Release/SeqCst store) synchronizes nothing. RMW sites are
        // excluded — their pairing is declared via the contract.
        let store_orderings: BTreeSet<&str> = data
            .sites
            .iter()
            .filter(|(op, ..)| *op == AtomicOp::Store)
            .map(|(_, o, ..)| o.as_str())
            .collect();
        let load_orderings: BTreeSet<&str> = data
            .sites
            .iter()
            .filter(|(op, ..)| *op == AtomicOp::Load)
            .map(|(_, o, ..)| o.as_str())
            .collect();
        let acquiring_load = load_orderings.contains("Acquire") || load_orderings.contains("SeqCst");
        let releasing_store =
            store_orderings.contains("Release") || store_orderings.contains("SeqCst");
        for (op, ordering, file, line) in &data.sites {
            if ordering != "Relaxed" {
                continue;
            }
            let (mismatch, pair) = match op {
                AtomicOp::Store if acquiring_load => (true, "Acquire/SeqCst load"),
                AtomicOp::Load if releasing_store => (true, "Release/SeqCst store"),
                _ => (false, ""),
            };
            if mismatch {
                out.push(Finding {
                    rule: "atomic-ordering".to_string(),
                    severity: Severity::Error,
                    path: file.clone(),
                    line: *line,
                    message: format!(
                        "Relaxed {} of `{field}` is paired with a {pair} elsewhere — \
                         the Relaxed half synchronizes nothing, so the publication \
                         ordering is an illusion",
                        op.label(),
                    ),
                });
            }
        }
    }
}
