//! SARIF 2.1.0 export: one run, one driver (`spectro-lint`), every rule
//! declared with a short description, one `result` per active finding.
//!
//! The output validates against the SARIF 2.1.0 schema
//! (<https://json.schemastore.org/sarif-2.1.0.json>) and is shaped for
//! `github/codeql-action/upload-sarif`, which renders each result as an
//! inline PR annotation at its `physicalLocation`.

use serde_json::{json, Value};

use crate::findings::{Report, Severity};

/// Every rule spectro-lint can emit, with the one-line description SARIF
/// viewers show next to each result.
pub const RULES: &[(&str, &str)] = &[
    (
        "no-unwrap-in-lib",
        "No unwrap/expect in the panic-free crates' non-test library code",
    ),
    (
        "no-wallclock-nondeterminism",
        "No wall-clock reads or unseeded RNGs in deterministic crates",
    ),
    ("no-float-eq", "No ==/!= against float literals outside tests"),
    (
        "forbid-unsafe-coverage",
        "Every crate root carries #![forbid(unsafe_code)]",
    ),
    (
        "panic-reachability",
        "No panic site reachable from a public entry point of a panic-free crate",
    ),
    (
        "lock-graph",
        "Lock acquisitions respect the declared global order; no cycles or re-acquisitions",
    ),
    (
        "alloc-in-hot-path",
        "No allocation-family calls inside hot-path functions",
    ),
    (
        "blocking-under-lock",
        "No blocking operation (condvar wait, join, recv, sleep, file I/O, engine \
         submission) while a lock guard is live",
    ),
    (
        "atomic-ordering",
        "Every atomic field operates within its declared [[atomics]] ordering contract; \
         no Relaxed halves of publication pairs",
    ),
    (
        "condvar-protocol",
        "Condvar waits re-check their predicate in a loop; notifies hold or follow the \
         predicate's mutex",
    ),
];

/// Builds the SARIF 2.1.0 document for a report's active findings.
pub fn to_sarif(report: &Report) -> Value {
    let rules: Vec<Value> = RULES
        .iter()
        .map(|(id, description)| {
            json!({
                "id": *id,
                "shortDescription": json!({ "text": *description })
            })
        })
        .collect();
    let results: Vec<Value> = report
        .findings
        .iter()
        .map(|finding| {
            let level = match finding.severity {
                Severity::Warning => "warning",
                Severity::Error => "error",
            };
            let mut result = json!({
                "ruleId": finding.rule,
                "level": level,
                "message": json!({ "text": finding.message }),
                "locations": json!([json!({
                    "physicalLocation": json!({
                        "artifactLocation": json!({ "uri": finding.path }),
                        "region": json!({ "startLine": finding.line.max(1) })
                    })
                })])
            });
            if let Some(index) = RULES.iter().position(|(id, _)| *id == finding.rule) {
                if let Value::Object(map) = &mut result {
                    map.insert("ruleIndex".to_string(), json!(index));
                }
            }
            result
        })
        .collect();
    json!({
        "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
        "version": "2.1.0",
        "runs": json!([json!({
            "tool": json!({
                "driver": json!({
                    "name": "spectro-lint",
                    "version": env!("CARGO_PKG_VERSION"),
                    "informationUri": "https://example.invalid/spectro-lint",
                    "rules": rules
                })
            }),
            "results": results
        })])
    })
}

/// Renders the SARIF document as pretty-printed JSON with a trailing
/// newline.
pub fn to_sarif_string(report: &Report) -> String {
    let mut text = serde_json::to_string_pretty(&to_sarif(report)).unwrap_or_default();
    text.push('\n');
    text
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::findings::{Finding, GraphStats};

    fn report_with(findings: Vec<Finding>) -> Report {
        Report {
            findings,
            suppressed: 0,
            stale_suppressions: Vec::new(),
            files_scanned: 1,
            stats: GraphStats::default(),
        }
    }

    #[test]
    fn sarif_document_has_schema_version_driver_and_results() {
        let report = report_with(vec![Finding {
            rule: "blocking-under-lock".into(),
            severity: Severity::Error,
            path: "crates/serve/src/router.rs".into(),
            line: 42,
            message: "blocks while holding `serve::swap_gate`".into(),
        }]);
        let doc = to_sarif(&report);
        let text = to_sarif_string(&report);
        // Round-trips as valid JSON.
        let parsed: Value = serde_json::from_str(&text).expect("valid JSON");
        assert_eq!(parsed, doc);
        assert_eq!(doc["version"], json!("2.1.0"));
        assert!(doc["$schema"]
            .as_str()
            .is_some_and(|s| s.contains("sarif-2.1.0")));
        let driver = &doc["runs"][0]["tool"]["driver"];
        assert_eq!(driver["name"], json!("spectro-lint"));
        assert_eq!(driver["rules"].as_array().map(Vec::len), Some(RULES.len()));
        let result = &doc["runs"][0]["results"][0];
        assert_eq!(result["ruleId"], json!("blocking-under-lock"));
        assert_eq!(result["level"], json!("error"));
        let region = &result["locations"][0]["physicalLocation"]["region"];
        assert_eq!(region["startLine"], json!(42));
        let uri = &result["locations"][0]["physicalLocation"]["artifactLocation"]["uri"];
        assert_eq!(uri, &json!("crates/serve/src/router.rs"));
        // ruleIndex points back into the declared rules array.
        let idx = result["ruleIndex"].as_u64().expect("ruleIndex") as usize;
        assert_eq!(driver["rules"][idx]["id"], json!("blocking-under-lock"));
    }

    #[test]
    fn empty_report_yields_empty_results() {
        let doc = to_sarif(&report_with(Vec::new()));
        assert_eq!(doc["runs"][0]["results"].as_array().map(Vec::len), Some(0));
    }
}
