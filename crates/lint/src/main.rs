//! spectro-lint CLI: `cargo run -p lint --release -- [--deny] [--json]`.
//!
//! Exit codes: 0 on success (or findings without `--deny`), 1 when
//! `--deny` is set and non-baselined findings exist, 2 on usage/config/IO
//! errors.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use lint::{LintConfig, Report};

struct Options {
    root: PathBuf,
    config: Option<PathBuf>,
    json: bool,
    deny: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut options = Options {
        root: PathBuf::from("."),
        config: None,
        json: false,
        deny: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny" => options.deny = true,
            "--json" => options.json = true,
            "--root" => {
                options.root = PathBuf::from(
                    args.next().ok_or_else(|| "--root needs a path".to_string())?,
                );
            }
            "--config" => {
                options.config = Some(PathBuf::from(
                    args.next().ok_or_else(|| "--config needs a path".to_string())?,
                ));
            }
            "--help" | "-h" => {
                println!(
                    "spectro-lint: workspace static analysis\n\n\
                     USAGE: lint [--root PATH] [--config PATH] [--json] [--deny]\n\n\
                     --root PATH    workspace root to scan (default: .)\n\
                     --config PATH  lint.toml to use (default: <root>/lint.toml)\n\
                     --json         machine-readable report on stdout\n\
                     --deny         exit non-zero on any non-baselined finding (CI mode)"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(options)
}

fn print_human(report: &Report, deny: bool) {
    for finding in &report.findings {
        println!("{finding}");
    }
    for stale in &report.stale_suppressions {
        println!("lint.toml: warning: {stale}");
    }
    println!(
        "spectro-lint: {} file(s) scanned, {} finding(s), {} baselined, {} stale suppression(s)",
        report.files_scanned,
        report.findings.len(),
        report.suppressed,
        report.stale_suppressions.len()
    );
    if deny && !report.findings.is_empty() {
        println!("spectro-lint: failing (--deny): fix the findings or baseline them in lint.toml with a reason");
    }
}

fn main() -> ExitCode {
    let options = match parse_args() {
        Ok(options) => options,
        Err(message) => {
            eprintln!("spectro-lint: {message}");
            return ExitCode::from(2);
        }
    };
    let config_path = options
        .config
        .clone()
        .unwrap_or_else(|| options.root.join("lint.toml"));
    let config = match LintConfig::load(&config_path) {
        Ok(config) => config,
        Err(message) => {
            eprintln!("spectro-lint: bad config {}: {message}", config_path.display());
            return ExitCode::from(2);
        }
    };
    let report = match lint::run(&options.root, &config) {
        Ok(report) => report,
        Err(error) => {
            eprintln!("spectro-lint: {error}");
            return ExitCode::from(2);
        }
    };
    if options.json {
        match serde_json::to_string_pretty(&report) {
            Ok(json) => println!("{json}"),
            Err(error) => {
                eprintln!("spectro-lint: serialization failed: {error}");
                return ExitCode::from(2);
            }
        }
    } else {
        print_human(&report, options.deny);
    }
    if options.deny && !report.findings.is_empty() {
        return ExitCode::from(1);
    }
    ExitCode::SUCCESS
}
