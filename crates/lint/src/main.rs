//! spectro-lint CLI:
//! `cargo run -p lint --release -- [--deny] [--json] [--stats] [--lock-dot PATH]
//! [--sarif PATH]`.
//!
//! Exit codes: 0 on success (or findings without `--deny`), 1 when
//! `--deny` is set and non-baselined findings or stale suppressions
//! exist, 2 on usage/config/IO errors.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use lint::{Analysis, LintConfig, Report};

struct Options {
    root: PathBuf,
    config: Option<PathBuf>,
    json: bool,
    deny: bool,
    stats: bool,
    lock_dot: Option<PathBuf>,
    sarif: Option<PathBuf>,
}

fn parse_args() -> Result<Options, String> {
    let mut options = Options {
        root: PathBuf::from("."),
        config: None,
        json: false,
        deny: false,
        stats: false,
        lock_dot: None,
        sarif: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny" => options.deny = true,
            "--json" => options.json = true,
            "--stats" => options.stats = true,
            "--root" => {
                options.root = PathBuf::from(
                    args.next().ok_or_else(|| "--root needs a path".to_string())?,
                );
            }
            "--config" => {
                options.config = Some(PathBuf::from(
                    args.next().ok_or_else(|| "--config needs a path".to_string())?,
                ));
            }
            "--lock-dot" => {
                options.lock_dot = Some(PathBuf::from(
                    args.next()
                        .ok_or_else(|| "--lock-dot needs a path".to_string())?,
                ));
            }
            "--sarif" => {
                options.sarif = Some(PathBuf::from(
                    args.next()
                        .ok_or_else(|| "--sarif needs a path".to_string())?,
                ));
            }
            "--help" | "-h" => {
                println!(
                    "spectro-lint: workspace static analysis\n\n\
                     USAGE: lint [--root PATH] [--config PATH] [--json] [--deny] [--stats] \
                     [--lock-dot PATH] [--sarif PATH]\n\n\
                     --root PATH      workspace root to scan (default: .)\n\
                     --config PATH    lint.toml to use (default: <root>/lint.toml)\n\
                     --json           machine-readable report on stdout\n\
                     --deny           exit non-zero on any non-baselined finding or stale\n\
                     \x20                suppression (CI mode)\n\
                     --stats          print symbol-graph size and resolved-call ratio\n\
                     --lock-dot PATH  write the lock acquisition graph as GraphViz DOT\n\
                     --sarif PATH     write active findings as SARIF 2.1.0 (PR annotations)"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(options)
}

fn print_human(report: &Report, options: &Options) {
    for finding in &report.findings {
        println!("{finding}");
    }
    for stale in &report.stale_suppressions {
        println!("lint.toml: error: {stale}");
    }
    if options.stats {
        println!("spectro-lint: {}", report.stats);
    }
    println!(
        "spectro-lint: {} file(s) scanned, {} finding(s), {} baselined, {} stale suppression(s)",
        report.files_scanned,
        report.findings.len(),
        report.suppressed,
        report.stale_suppressions.len()
    );
    if options.deny && !(report.findings.is_empty() && report.stale_suppressions.is_empty()) {
        println!(
            "spectro-lint: failing (--deny): fix the findings or baseline them in lint.toml \
             with a reason, and delete stale suppressions"
        );
    }
}

fn main() -> ExitCode {
    let options = match parse_args() {
        Ok(options) => options,
        Err(message) => {
            eprintln!("spectro-lint: {message}");
            return ExitCode::from(2);
        }
    };
    let config_path = options
        .config
        .clone()
        .unwrap_or_else(|| options.root.join("lint.toml"));
    let config = match LintConfig::load(&config_path) {
        Ok(config) => config,
        Err(message) => {
            eprintln!("spectro-lint: bad config {}: {message}", config_path.display());
            return ExitCode::from(2);
        }
    };
    let Analysis { report, lock_dot } = match lint::run_full(&options.root, &config) {
        Ok(analysis) => analysis,
        Err(error) => {
            eprintln!("spectro-lint: {error}");
            return ExitCode::from(2);
        }
    };
    if let Some(dot_path) = &options.lock_dot {
        if let Err(error) = std::fs::write(dot_path, &lock_dot) {
            eprintln!("spectro-lint: writing {}: {error}", dot_path.display());
            return ExitCode::from(2);
        }
    }
    if let Some(sarif_path) = &options.sarif {
        let sarif = lint::sarif::to_sarif_string(&report);
        if let Err(error) = std::fs::write(sarif_path, sarif) {
            eprintln!("spectro-lint: writing {}: {error}", sarif_path.display());
            return ExitCode::from(2);
        }
    }
    if options.json {
        match serde_json::to_string_pretty(&report) {
            Ok(json) => println!("{json}"),
            Err(error) => {
                eprintln!("spectro-lint: serialization failed: {error}");
                return ExitCode::from(2);
            }
        }
        if options.stats {
            eprintln!("spectro-lint: {}", report.stats);
        }
    } else {
        print_human(&report, &options);
    }
    if options.deny && !(report.findings.is_empty() && report.stale_suppressions.is_empty()) {
        return ExitCode::from(1);
    }
    ExitCode::SUCCESS
}
