//! spectro-lint: workspace static analysis for project invariants.
//!
//! The paper's provenance-tracked synthetic datasets are only trustworthy
//! if the simulators and trainers are bit-deterministic, and the serving
//! and fault-tolerance layers only keep their promises if library code
//! never panics and lock acquisition stays ordered. Clippy cannot see
//! those project-specific invariants, so this crate implements them as a
//! self-contained lint pass (DESIGN.md §9 and §11): a lightweight Rust
//! lexer ([`lexer`]), an item parser ([`parser`]) that extracts
//! `fn`/`impl`/`mod`/`use` items with per-body call, panic, allocation
//! and lock events, a workspace symbol table with best-effort call
//! resolution ([`resolve`]), and two rule layers — per-file lexical rules
//! ([`rules`]) and whole-workspace graph rules ([`graph`]) — driven by
//! the engine ([`engine`]) with findings in human and JSON output.
//!
//! The lexical rules:
//!
//! * `no-unwrap-in-lib` — panic-freedom at the call-site level in the
//!   panic-free crates' non-test library code.
//! * `no-wallclock-nondeterminism` — no wall-clock reads or unseeded RNGs
//!   in `ms-sim`, `nmr-sim`, `neural`, `chemometrics` and `obs`.
//! * `no-float-eq` — no `==`/`!=` against float literals outside tests.
//! * `forbid-unsafe-coverage` — every crate root carries
//!   `#![forbid(unsafe_code)]`.
//!
//! The graph rules (interprocedural, over the resolved call graph):
//!
//! * `panic-reachability` — flags functions reachable from public entry
//!   points of the panic-free crates that can reach
//!   `panic!`/`unwrap`/`expect` (and optionally indexing), reporting the
//!   full entry-point→panic call chain.
//! * `lock-graph` — builds the whole-workspace lock acquisition graph
//!   (locks held while another is taken, including one level across
//!   function calls), flags declared-order inversions, re-acquisitions
//!   and cycles, and exports GraphViz DOT.
//! * `alloc-in-hot-path` — flags allocation-family calls inside functions
//!   marked `// lint: hot` or matching configured hot-path prefixes.
//!
//! The dataflow rules (guard-liveness through bodies, one level across
//! calls — [`dataflow`], DESIGN.md §14):
//!
//! * `blocking-under-lock` — blocking primitives (condvar waits, `join`,
//!   channel `recv`, `thread::sleep`, file I/O, engine submission)
//!   executed while any lock guard is live, with the guard's acquisition
//!   site and the caller→callee chain.
//! * `atomic-ordering` — every atomic site classified by crate-qualified
//!   field against a mandatory `[[atomics]]` contract in `lint.toml`;
//!   Relaxed halves of publication store/load pairs are flagged.
//! * `condvar-protocol` — waits not re-checked in a loop, and notifies
//!   that neither hold nor provably follow the predicate's mutex.
//!
//! Findings export as human text, JSON, or SARIF 2.1.0 ([`sarif`]) for
//! inline PR annotation.
//!
//! Pre-existing findings are burned down deliberately through the
//! checked-in baseline (`lint.toml`): every suppression names a rule, a
//! path and a reason. `--deny` (the CI mode) fails on any non-baselined
//! finding **and** on any stale suppression, so the baseline can only
//! shrink; stale entries carry a nearest-surviving-line hint for
//! re-pinning drifted line suppressions.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod dataflow;
pub mod engine;
pub mod findings;
pub mod graph;
pub mod lexer;
pub mod parser;
pub mod resolve;
pub mod rules;
pub mod sarif;

pub use config::{AtomicContract, LintConfig, Suppression};
pub use engine::{analyze_sources, apply_baseline, lint_source, run, run_full, Analysis};
pub use findings::{Finding, GraphStats, Report, Severity, StaleSuppression};
