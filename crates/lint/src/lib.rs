//! spectro-lint: workspace static analysis for project invariants.
//!
//! The paper's provenance-tracked synthetic datasets are only trustworthy
//! if the simulators and trainers are bit-deterministic, and the serving
//! and fault-tolerance layers only keep their promises if library code
//! never panics and lock acquisition stays ordered. Clippy cannot see
//! those project-specific invariants, so this crate implements them as a
//! self-contained lint pass (DESIGN.md §9): a lightweight Rust lexer
//! ([`lexer`]) plus a rule engine ([`rules`]) that walks every workspace
//! `.rs` file and reports findings with file:line, rule id and severity,
//! in human and JSON output.
//!
//! The five rules:
//!
//! * `no-unwrap-in-lib` — panic-freedom in `serve`, `neural`, `datastore`
//!   and `core` non-test library code.
//! * `no-wallclock-nondeterminism` — no wall-clock reads or unseeded RNGs
//!   in `ms-sim`, `nmr-sim`, `neural` and `chemometrics`.
//! * `no-float-eq` — no `==`/`!=` against float literals outside tests.
//! * `forbid-unsafe-coverage` — every crate root carries
//!   `#![forbid(unsafe_code)]`.
//! * `lock-order` — nested `Mutex`/`RwLock` acquisitions in `crates/serve`
//!   must follow the order declared in `lint.toml`.
//!
//! Pre-existing findings are burned down deliberately through the
//! checked-in baseline (`lint.toml`): every suppression names a rule, a
//! path and a reason. `--deny` (the CI mode) fails on any non-baselined
//! finding; suppressions that no longer match anything are reported as
//! stale so the baseline can only shrink.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod engine;
pub mod findings;
pub mod lexer;
pub mod rules;

pub use config::{LintConfig, Suppression};
pub use engine::{apply_baseline, lint_source, run};
pub use findings::{Finding, Report, Severity, StaleSuppression};
