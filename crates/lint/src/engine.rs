//! Workspace walking and rule running: files → findings → baselined report.

use std::io;
use std::path::{Path, PathBuf};

use crate::config::LintConfig;
use crate::findings::{Finding, Report, StaleSuppression};
use crate::lexer;
use crate::rules::{self, FileInput};

/// Directory names never scanned: generated output, test trees (exempt
/// from every rule), bench harnesses and fixture data.
const SKIP_DIRS: &[&str] = &[
    "target", "tests", "benches", "examples", "fixtures", ".git",
];

/// Lints every `.rs` file under `root/crates`, applying the baseline in
/// `config`. Findings are sorted by path, line, rule; suppressions that
/// match nothing are reported as stale.
///
/// # Errors
///
/// Returns the first I/O error hit while walking or reading sources.
pub fn run(root: &Path, config: &LintConfig) -> io::Result<Report> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        collect_rs_files(&crates_dir, &mut files)?;
    }
    files.sort();
    let mut findings = Vec::new();
    for file in &files {
        lint_one(root, file, config, &mut findings)?;
    }
    findings.sort_by(|a, b| {
        (&a.path, a.line, &a.rule).cmp(&(&b.path, b.line, &b.rule))
    });
    Ok(apply_baseline(findings, config, files.len()))
}

/// Lints one already-read source text (fixture tests drive this
/// directly). `rel_path` must be workspace-relative with forward slashes.
pub fn lint_source(
    rel_path: &str,
    source: &str,
    config: &LintConfig,
    out: &mut Vec<Finding>,
) {
    let tokens = lexer::lex(source);
    let mask = lexer::test_mask(&tokens);
    let (crate_name, is_compat) = crate_of(rel_path);
    let input = FileInput {
        path: rel_path,
        crate_name: &crate_name,
        is_crate_root: is_crate_root(rel_path),
        is_compat,
        tokens: &tokens,
        test_mask: &mask,
    };
    rules::check_file(&input, config, out);
}

/// Splits raw findings into active vs. baselined and detects stale
/// suppressions.
pub fn apply_baseline(findings: Vec<Finding>, config: &LintConfig, files_scanned: usize) -> Report {
    let mut used = vec![false; config.suppressions.len()];
    let mut active = Vec::new();
    let mut suppressed = 0usize;
    for finding in findings {
        let matched = config.suppressions.iter().enumerate().find(|(_, s)| {
            s.rule == finding.rule
                && s.path == finding.path
                && s.line.is_none_or(|l| l == finding.line)
        });
        match matched {
            Some((idx, _)) => {
                used[idx] = true;
                suppressed += 1;
            }
            None => active.push(finding),
        }
    }
    let stale_suppressions = config
        .suppressions
        .iter()
        .zip(&used)
        .filter(|(_, &u)| !u)
        .map(|(s, _)| StaleSuppression {
            rule: s.rule.clone(),
            path: s.path.clone(),
            line: s.line.unwrap_or(0),
        })
        .collect();
    Report {
        findings: active,
        suppressed,
        stale_suppressions,
        files_scanned,
    }
}

fn lint_one(
    root: &Path,
    file: &Path,
    config: &LintConfig,
    out: &mut Vec<Finding>,
) -> io::Result<()> {
    let source = std::fs::read_to_string(file)?;
    let rel = file
        .strip_prefix(root)
        .unwrap_or(file)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/");
    lint_source(&rel, &source, config, out);
    Ok(())
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<_> = std::fs::read_dir(dir)?.collect::<Result<_, _>>()?;
    entries.sort_by_key(std::fs::DirEntry::file_name);
    for entry in entries {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name.as_ref()) {
                collect_rs_files(&path, out)?;
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Crate directory name for a workspace-relative path, plus whether it
/// lives under `crates/compat/`.
fn crate_of(rel_path: &str) -> (String, bool) {
    let parts: Vec<&str> = rel_path.split('/').collect();
    match parts.as_slice() {
        ["crates", "compat", name, ..] => ((*name).to_string(), true),
        ["crates", name, ..] => ((*name).to_string(), false),
        _ => (String::new(), false),
    }
}

/// True for `src/lib.rs`, `src/main.rs` and `src/bin/*.rs` within a crate.
fn is_crate_root(rel_path: &str) -> bool {
    let parts: Vec<&str> = rel_path.split('/').collect();
    let within: &[&str] = match parts.as_slice() {
        ["crates", "compat", _, rest @ ..] => rest,
        ["crates", _, rest @ ..] => rest,
        _ => return false,
    };
    matches!(within, ["src", "lib.rs" | "main.rs"] | ["src", "bin", _])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Suppression;
    use crate::findings::Severity;

    #[test]
    fn crate_identification() {
        assert_eq!(crate_of("crates/serve/src/engine.rs"), ("serve".into(), false));
        assert_eq!(crate_of("crates/compat/rand/src/lib.rs"), ("rand".into(), true));
        assert!(is_crate_root("crates/serve/src/lib.rs"));
        assert!(is_crate_root("crates/bench/src/bin/table1.rs"));
        assert!(!is_crate_root("crates/serve/src/engine.rs"));
        assert!(!is_crate_root("crates/neural/src/layers/mod.rs"));
    }

    #[test]
    fn baseline_matches_by_rule_path_and_optional_line() {
        let finding = |line: usize| Finding {
            rule: "no-float-eq".into(),
            severity: Severity::Warning,
            path: "crates/x/src/lib.rs".into(),
            line,
            message: String::new(),
        };
        let config = LintConfig {
            lock_order: Vec::new(),
            suppressions: vec![
                Suppression {
                    rule: "no-float-eq".into(),
                    path: "crates/x/src/lib.rs".into(),
                    line: Some(3),
                    reason: "r".into(),
                },
                Suppression {
                    rule: "no-float-eq".into(),
                    path: "crates/y/src/lib.rs".into(),
                    line: None,
                    reason: "r".into(),
                },
            ],
        };
        let report = apply_baseline(vec![finding(3), finding(9)], &config, 1);
        assert_eq!(report.findings.len(), 1);
        assert_eq!(report.findings[0].line, 9);
        assert_eq!(report.suppressed, 1);
        // The y-crate suppression matched nothing.
        assert_eq!(report.stale_suppressions.len(), 1);
        assert_eq!(report.stale_suppressions[0].path, "crates/y/src/lib.rs");
    }
}
