//! Workspace walking and rule running: files → findings → baselined report.
//!
//! Linting is two passes. Pass 1 runs per-file: lex, compute the test
//! mask, run the lexical rules and parse items. Pass 2 runs once over the
//! whole workspace: build the symbol table and call graph, then run the
//! graph rules (`panic-reachability`, `lock-graph`, `alloc-in-hot-path`).
//! Compat stand-in crates are lexed (for `forbid-unsafe-coverage`) but
//! excluded from the symbol graph — they model external dependencies.

use std::collections::BTreeSet;
use std::io;
use std::path::{Path, PathBuf};

use crate::config::LintConfig;
use crate::dataflow;
use crate::findings::{Finding, GraphStats, Report, StaleSuppression};
use crate::graph::{self, CallGraph};
use crate::lexer;
use crate::parser::{self, ParsedFile};
use crate::resolve::SymbolTable;
use crate::rules::{self, FileInput};

/// Directory names never scanned: generated output, test trees (exempt
/// from every rule), bench harnesses and fixture data.
const SKIP_DIRS: &[&str] = &[
    "target", "tests", "benches", "examples", "fixtures", ".git",
];

/// The full outcome of a lint run: the baselined report plus the
/// lock-graph DOT export for debugging deadlock findings.
pub struct Analysis {
    /// Baselined findings, stale suppressions and graph statistics.
    pub report: Report,
    /// GraphViz DOT rendering of the workspace lock graph, cycle edges
    /// highlighted in red. Empty graph renders as a valid empty digraph.
    pub lock_dot: String,
}

/// Lints every `.rs` file under `root/crates`, applying the baseline in
/// `config`. Findings are sorted by path, line, rule; suppressions that
/// match nothing are reported as stale.
///
/// # Errors
///
/// Returns the first I/O error hit while walking or reading sources.
pub fn run(root: &Path, config: &LintConfig) -> io::Result<Report> {
    Ok(run_full(root, config)?.report)
}

/// Like [`run`], but also returns the lock-graph DOT export.
///
/// # Errors
///
/// Returns the first I/O error hit while walking or reading sources.
pub fn run_full(root: &Path, config: &LintConfig) -> io::Result<Analysis> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        collect_rs_files(&crates_dir, &mut files)?;
    }
    files.sort();
    let mut sources = Vec::with_capacity(files.len());
    for file in &files {
        let source = std::fs::read_to_string(file)?;
        let rel = file
            .strip_prefix(root)
            .unwrap_or(file)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        sources.push((rel, source));
    }
    Ok(analyze_sources(&sources, config))
}

/// Runs both passes over already-read sources (`(rel_path, source)`
/// pairs, workspace-relative forward-slash paths). Fixture tests drive
/// this directly to exercise the graph rules on synthetic workspaces.
pub fn analyze_sources(sources: &[(String, String)], config: &LintConfig) -> Analysis {
    let mut findings = Vec::new();
    let mut parsed: Vec<ParsedFile> = Vec::new();
    for (rel, source) in sources {
        let tokens = lexer::lex(source);
        let mask = lexer::test_mask(&tokens);
        let (crate_name, is_compat) = crate_of(rel);
        let input = FileInput {
            path: rel,
            crate_name: &crate_name,
            is_crate_root: is_crate_root(rel),
            is_compat,
            tokens: &tokens,
            test_mask: &mask,
        };
        rules::check_file(&input, &mut findings);
        if !is_compat && !crate_name.is_empty() {
            parsed.push(parser::parse_file(rel, &crate_name, source, &tokens, &mask));
        }
    }

    let table = SymbolTable::build(&parsed);
    let call_graph = CallGraph::build(&table, &parsed);
    let mut stats = GraphStats {
        items: table.items.len(),
        calls_resolved: call_graph.resolved,
        calls_external: call_graph.external,
        calls_unresolved: call_graph.unresolved,
        ..GraphStats::default()
    };
    graph::panic_reachability(&table, &call_graph, config, &mut stats, &mut findings);
    let lock_graph = graph::lock_graph(&table, &call_graph, config, &mut stats, &mut findings);
    graph::alloc_in_hot_path(&table, config, &mut stats, &mut findings);
    dataflow::dataflow_rules(&table, &call_graph, config, &mut stats, &mut findings);

    let cycle_edges: BTreeSet<(String, String)> = graph::find_cycles(&lock_graph)
        .iter()
        .flat_map(|cycle| {
            cycle
                .windows(2)
                .map(|w| (w[0].clone(), w[1].clone()))
                .collect::<Vec<_>>()
        })
        .collect();
    let lock_dot = lock_graph.to_dot(&cycle_edges);

    findings.sort_by(|a, b| {
        (&a.path, a.line, &a.rule).cmp(&(&b.path, b.line, &b.rule))
    });
    let mut report = apply_baseline(findings, config, sources.len());
    report.stats = stats;
    Analysis { report, lock_dot }
}

/// Runs the lexical rules over one already-read source text (fixture
/// tests drive this directly). `rel_path` must be workspace-relative with
/// forward slashes. Graph rules need the whole workspace — see
/// [`analyze_sources`].
pub fn lint_source(rel_path: &str, source: &str, out: &mut Vec<Finding>) {
    let tokens = lexer::lex(source);
    let mask = lexer::test_mask(&tokens);
    let (crate_name, is_compat) = crate_of(rel_path);
    let input = FileInput {
        path: rel_path,
        crate_name: &crate_name,
        is_crate_root: is_crate_root(rel_path),
        is_compat,
        tokens: &tokens,
        test_mask: &mask,
    };
    rules::check_file(&input, out);
}

/// Splits raw findings into active vs. baselined and detects stale
/// suppressions. Each stale line-specific suppression carries the nearest
/// line where the same rule still fires in the same file (pre-baseline),
/// so a drifted entry can be re-pinned rather than hunted down.
pub fn apply_baseline(findings: Vec<Finding>, config: &LintConfig, files_scanned: usize) -> Report {
    let raw: Vec<(String, String, usize)> = findings
        .iter()
        .map(|f| (f.rule.clone(), f.path.clone(), f.line))
        .collect();
    let mut used = vec![false; config.suppressions.len()];
    let mut active = Vec::new();
    let mut suppressed = 0usize;
    for finding in findings {
        let matched = config.suppressions.iter().enumerate().find(|(_, s)| {
            s.rule == finding.rule
                && s.path == finding.path
                && s.line.is_none_or(|l| l == finding.line)
        });
        match matched {
            Some((idx, _)) => {
                used[idx] = true;
                suppressed += 1;
            }
            None => active.push(finding),
        }
    }
    let stale_suppressions = config
        .suppressions
        .iter()
        .zip(&used)
        .filter(|(_, &u)| !u)
        .map(|(s, _)| {
            let nearest_line = s.line.map_or(0, |stale_line| {
                raw.iter()
                    .filter(|(rule, path, _)| rule == &s.rule && path == &s.path)
                    .map(|(_, _, line)| *line)
                    .min_by_key(|line| line.abs_diff(stale_line))
                    .unwrap_or(0)
            });
            StaleSuppression {
                rule: s.rule.clone(),
                path: s.path.clone(),
                line: s.line.unwrap_or(0),
                nearest_line,
            }
        })
        .collect();
    Report {
        findings: active,
        suppressed,
        stale_suppressions,
        files_scanned,
        stats: GraphStats::default(),
    }
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<_> = std::fs::read_dir(dir)?.collect::<Result<_, _>>()?;
    entries.sort_by_key(std::fs::DirEntry::file_name);
    for entry in entries {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name.as_ref()) {
                collect_rs_files(&path, out)?;
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Crate directory name for a workspace-relative path, plus whether it
/// lives under `crates/compat/`.
fn crate_of(rel_path: &str) -> (String, bool) {
    let parts: Vec<&str> = rel_path.split('/').collect();
    match parts.as_slice() {
        ["crates", "compat", name, ..] => ((*name).to_string(), true),
        ["crates", name, ..] => ((*name).to_string(), false),
        _ => (String::new(), false),
    }
}

/// True for `src/lib.rs`, `src/main.rs` and `src/bin/*.rs` within a crate.
fn is_crate_root(rel_path: &str) -> bool {
    let parts: Vec<&str> = rel_path.split('/').collect();
    let within: &[&str] = match parts.as_slice() {
        ["crates", "compat", _, rest @ ..] => rest,
        ["crates", _, rest @ ..] => rest,
        _ => return false,
    };
    matches!(within, ["src", "lib.rs" | "main.rs"] | ["src", "bin", _])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Suppression;
    use crate::findings::Severity;

    #[test]
    fn crate_identification() {
        assert_eq!(crate_of("crates/serve/src/engine.rs"), ("serve".into(), false));
        assert_eq!(crate_of("crates/compat/rand/src/lib.rs"), ("rand".into(), true));
        assert!(is_crate_root("crates/serve/src/lib.rs"));
        assert!(is_crate_root("crates/bench/src/bin/table1.rs"));
        assert!(!is_crate_root("crates/serve/src/engine.rs"));
        assert!(!is_crate_root("crates/neural/src/layers/mod.rs"));
    }

    #[test]
    fn baseline_matches_by_rule_path_and_optional_line() {
        let finding = |line: usize| Finding {
            rule: "no-float-eq".into(),
            severity: Severity::Warning,
            path: "crates/x/src/lib.rs".into(),
            line,
            message: String::new(),
        };
        let config = LintConfig {
            suppressions: vec![
                Suppression {
                    rule: "no-float-eq".into(),
                    path: "crates/x/src/lib.rs".into(),
                    line: Some(3),
                    reason: "r".into(),
                },
                Suppression {
                    rule: "no-float-eq".into(),
                    path: "crates/y/src/lib.rs".into(),
                    line: None,
                    reason: "r".into(),
                },
            ],
            ..LintConfig::default()
        };
        let report = apply_baseline(vec![finding(3), finding(9)], &config, 1);
        assert_eq!(report.findings.len(), 1);
        assert_eq!(report.findings[0].line, 9);
        assert_eq!(report.suppressed, 1);
        // The y-crate suppression matched nothing.
        assert_eq!(report.stale_suppressions.len(), 1);
        assert_eq!(report.stale_suppressions[0].path, "crates/y/src/lib.rs");
    }

    #[test]
    fn stale_line_suppression_hints_at_nearest_surviving_line() {
        let finding = |line: usize| Finding {
            rule: "no-unwrap-in-lib".into(),
            severity: Severity::Error,
            path: "crates/x/src/lib.rs".into(),
            line,
            message: String::new(),
        };
        let config = LintConfig {
            suppressions: vec![Suppression {
                rule: "no-unwrap-in-lib".into(),
                path: "crates/x/src/lib.rs".into(),
                line: Some(40),
                reason: "drifted".into(),
            }],
            ..LintConfig::default()
        };
        let report = apply_baseline(vec![finding(12), finding(44)], &config, 1);
        assert_eq!(report.stale_suppressions.len(), 1);
        assert_eq!(report.stale_suppressions[0].nearest_line, 44);
        let text = report.stale_suppressions[0].to_string();
        assert!(text.contains("line 44"), "{text}");
        assert!(text.contains("no-unwrap-in-lib"), "{text}");
    }
}
