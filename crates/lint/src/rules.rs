//! The per-file (lexical) spectro-lint rules, implemented over the token
//! stream.
//!
//! Every rule works on [`FileInput`]: the lexed tokens of one `.rs` file
//! plus enough context (crate directory name, crate-root flag, test mask)
//! to scope itself. Rules are deliberately lexical — no type information —
//! so each one documents the heuristic it actually implements.
//!
//! The graph-based rules (`panic-reachability`, `lock-graph`,
//! `alloc-in-hot-path`) live in [`crate::graph`]; they run over the whole
//! workspace at once rather than file-by-file.

use crate::findings::{Finding, Severity};
use crate::lexer::{Token, TokenKind};

/// Crates whose non-test library code must be panic-free
/// (`no-unwrap-in-lib` and `panic-reachability`): the serving path, the
/// model runtime, persistence, the orchestration core, the observability
/// layer (which instruments all of them and must never take a hot path
/// down), the chemometrics/chem analysis stack the paper's pipelines
/// call from batch jobs, and the closed monitoring loop (which runs
/// unattended and must degrade to accounted errors, never aborts).
pub const PANIC_FREE_CRATES: &[&str] = &[
    "serve",
    "neural",
    "datastore",
    "core",
    "obs",
    "chemometrics",
    "chem",
    "monitor",
];

/// Crates that must stay bit-deterministic (`no-wallclock-nondeterminism`):
/// the synthetic-spectra simulators, everything that trains or augments
/// from seeded RNG streams, and `obs` — whose `Clock` trait is the one
/// sanctioned time source (the `MonotonicClock` impl carries a baselined
/// suppression; everything else must take a `Clock`).
pub const DETERMINISTIC_CRATES: &[&str] = &["ms-sim", "nmr-sim", "neural", "chemometrics", "obs"];

/// The crates whose lock acquisitions the `lock-graph` rule checks.
/// `monitor` holds no locks of its own today but drives `serve`'s
/// swap/drain paths, so its acquisitions are kept in scope.
pub const LOCK_ORDER_CRATES: &[&str] = &["serve", "obs", "monitor"];

/// One file prepared for rule matching.
pub struct FileInput<'a> {
    /// Workspace-relative path, forward slashes.
    pub path: &'a str,
    /// Crate directory name under `crates/` (e.g. `serve`, `ms-sim`).
    pub crate_name: &'a str,
    /// True for `src/lib.rs`, `src/main.rs` and `src/bin/*.rs`.
    pub is_crate_root: bool,
    /// True for the in-workspace dependency stand-ins under
    /// `crates/compat/` (exempt from style rules, still unsafe-checked).
    pub is_compat: bool,
    /// Lexed tokens.
    pub tokens: &'a [Token],
    /// Parallel to `tokens`: true inside `#[cfg(test)]` / `#[test]` code.
    pub test_mask: &'a [bool],
}

impl FileInput<'_> {
    fn finding(&self, rule: &str, severity: Severity, line: usize, message: String) -> Finding {
        Finding {
            rule: rule.to_string(),
            severity,
            path: self.path.to_string(),
            line,
            message,
        }
    }
}

/// Runs every lexical rule over one file.
pub fn check_file(file: &FileInput<'_>, out: &mut Vec<Finding>) {
    no_unwrap_in_lib(file, out);
    no_wallclock_nondeterminism(file, out);
    no_float_eq(file, out);
    forbid_unsafe_coverage(file, out);
}

fn prev_is(tokens: &[Token], i: usize, c: char) -> bool {
    i > 0 && tokens[i - 1].is_punct(c)
}

fn next_is(tokens: &[Token], i: usize, c: char) -> bool {
    tokens.get(i + 1).is_some_and(|t| t.is_punct(c))
}

/// `no-unwrap-in-lib`: forbids `.unwrap()`, `.expect(..)` and the panic
/// macro family (`panic!`, `unreachable!`, `todo!`, `unimplemented!`) in
/// the non-test library code of the panic-free crates. Test modules,
/// `#[test]` functions, `tests/` trees and bench binaries are exempt.
fn no_unwrap_in_lib(file: &FileInput<'_>, out: &mut Vec<Finding>) {
    if !PANIC_FREE_CRATES.contains(&file.crate_name) || file.is_compat {
        return;
    }
    for (i, token) in file.tokens.iter().enumerate() {
        if file.test_mask[i] || token.kind != TokenKind::Ident {
            continue;
        }
        let method_call = prev_is(file.tokens, i, '.') && next_is(file.tokens, i, '(');
        let flagged = match token.text.as_str() {
            "unwrap" | "expect" if method_call => Some(format!(
                ".{}() panics on the error path; return a typed error instead",
                token.text
            )),
            "panic" | "unreachable" | "todo" | "unimplemented"
                if next_is(file.tokens, i, '!') =>
            {
                Some(format!(
                    "{}! aborts the thread; library code must surface a typed error",
                    token.text
                ))
            }
            _ => None,
        };
        if let Some(message) = flagged {
            out.push(file.finding("no-unwrap-in-lib", Severity::Error, token.line, message));
        }
    }
}

/// `no-wallclock-nondeterminism`: forbids wall-clock reads and unseeded
/// RNG construction in the deterministic crates — `SystemTime::now`,
/// `Instant::now`, `thread_rng`, `from_entropy`, `OsRng` and
/// `rand::random` all make synthetic-data generation unrepeatable.
fn no_wallclock_nondeterminism(file: &FileInput<'_>, out: &mut Vec<Finding>) {
    if !DETERMINISTIC_CRATES.contains(&file.crate_name) || file.is_compat {
        return;
    }
    let tokens = file.tokens;
    for (i, token) in tokens.iter().enumerate() {
        if file.test_mask[i] || token.kind != TokenKind::Ident {
            continue;
        }
        let path_call_to = |target: &str| {
            tokens.get(i + 1).is_some_and(|t| t.is_punct(':'))
                && tokens.get(i + 2).is_some_and(|t| t.is_punct(':'))
                && tokens.get(i + 3).is_some_and(|t| t.is_ident(target))
        };
        let message = match token.text.as_str() {
            "SystemTime" | "Instant" if path_call_to("now") => Some(format!(
                "{}::now() reads the wall clock; thread timestamps through the caller \
                 so simulated data stays bit-reproducible",
                token.text
            )),
            "thread_rng" | "from_entropy" | "OsRng" | "getrandom" => Some(format!(
                "{} draws OS entropy; construct RNGs from an explicit seed \
                 (e.g. ChaCha20Rng::seed_from_u64)",
                token.text
            )),
            "rand" if path_call_to("random") => Some(
                "rand::random() uses the thread RNG; derive values from a seeded stream".into(),
            ),
            _ => None,
        };
        if let Some(message) = message {
            out.push(file.finding(
                "no-wallclock-nondeterminism",
                Severity::Error,
                token.line,
                message,
            ));
        }
    }
}

/// `no-float-eq`: flags `==` / `!=` comparisons where either operand is a
/// float literal, outside tests. Lexical heuristic: without type inference
/// the rule cannot see `a == b` between two `f32` variables, but the
/// literal form covers the overwhelming majority of real float-equality
/// sites (`x == 0.0`, `rate != 1.0`, ...).
fn no_float_eq(file: &FileInput<'_>, out: &mut Vec<Finding>) {
    if file.is_compat || file.crate_name == "bench" {
        return;
    }
    let tokens = file.tokens;
    for i in 0..tokens.len().saturating_sub(1) {
        if file.test_mask[i] {
            continue;
        }
        let (op, op_len) = if tokens[i].is_punct('=') && tokens[i + 1].is_punct('=') {
            // Reject `<=`, `>=`, `!=`'s tail, `==`'s tail and `=>`.
            if i > 0
                && (tokens[i - 1].is_punct('=')
                    || tokens[i - 1].is_punct('!')
                    || tokens[i - 1].is_punct('<')
                    || tokens[i - 1].is_punct('>'))
            {
                continue;
            }
            ("==", 2)
        } else if tokens[i].is_punct('!') && tokens[i + 1].is_punct('=') {
            ("!=", 2)
        } else {
            continue;
        };
        let before = i.checked_sub(1).map(|j| &tokens[j]);
        let mut after = tokens.get(i + op_len);
        // Allow one unary minus: `x == -0.5`.
        if after.is_some_and(|t| t.is_punct('-')) {
            after = tokens.get(i + op_len + 1);
        }
        let float_operand = before.is_some_and(|t| t.kind == TokenKind::Float)
            || after.is_some_and(|t| t.kind == TokenKind::Float);
        if float_operand {
            out.push(file.finding(
                "no-float-eq",
                Severity::Warning,
                tokens[i].line,
                format!(
                    "`{op}` against a float literal; exact float equality is rarely meaningful — \
                     compare with a tolerance or justify via the baseline"
                ),
            ));
        }
    }
}

/// `forbid-unsafe-coverage`: every crate root (`src/lib.rs`, `src/main.rs`,
/// `src/bin/*.rs`) must carry `#![forbid(unsafe_code)]` so the guarantee
/// holds workspace-wide rather than crate-by-crate.
fn forbid_unsafe_coverage(file: &FileInput<'_>, out: &mut Vec<Finding>) {
    if !file.is_crate_root {
        return;
    }
    let tokens = file.tokens;
    let has_attr = tokens.windows(6).any(|w| {
        w[0].is_punct('#')
            && w[1].is_punct('!')
            && w[2].is_punct('[')
            && w[3].is_ident("forbid")
            && w[4].is_punct('(')
            && w[5].is_ident("unsafe_code")
    });
    if !has_attr {
        out.push(file.finding(
            "forbid-unsafe-coverage",
            Severity::Error,
            1,
            "crate root is missing `#![forbid(unsafe_code)]`".to_string(),
        ));
    }
}

