//! Finding and report types, serializable for `--json` output.

use std::fmt;

use serde::{Deserialize, Serialize};

/// How severe a finding is. Severity is informational — `--deny` fails on
/// any non-baselined finding regardless of severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Severity {
    /// Should be fixed, but commonly needs a deliberate judgement call
    /// (e.g. an exact-zero float guard).
    Warning,
    /// Violates a project invariant (panic in serving code, unseeded RNG
    /// in a deterministic simulator, lock-order inversion).
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Finding {
    /// Rule identifier (e.g. `no-unwrap-in-lib`).
    pub rule: String,
    /// Finding severity.
    pub severity: Severity,
    /// Workspace-relative path with forward slashes.
    pub path: String,
    /// 1-based source line.
    pub line: usize,
    /// Human-readable description of the violation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {} [{}] {}",
            self.path, self.line, self.severity, self.rule, self.message
        )
    }
}

/// Size and resolution statistics for the workspace symbol graph,
/// surfaced via `--stats` (and always embedded in the JSON report) so
/// resolver regressions show up in CI logs as a shrinking resolved-call
/// ratio.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct GraphStats {
    /// Parsed (non-test) function items in the symbol table.
    pub items: usize,
    /// Call sites resolved to a workspace item (graph edges).
    pub calls_resolved: usize,
    /// Call sites classified as std/common-method external.
    pub calls_external: usize,
    /// Call sites the best-effort resolver gave up on.
    pub calls_unresolved: usize,
    /// Public entry points seeding `panic-reachability`.
    pub entry_points: usize,
    /// Reachable functions containing at least one panic source.
    pub reachable_panic_fns: usize,
    /// Distinct lock names in the lock graph.
    pub lock_nodes: usize,
    /// Distinct held→acquired edges in the lock graph.
    pub lock_edges: usize,
    /// Functions treated as hot by `alloc-in-hot-path`.
    pub hot_fns: usize,
    /// Call/wait sites evaluated by the dataflow layer with at least one
    /// live lock guard.
    pub guard_live_sites: usize,
    /// Atomic operation sites classified by `atomic-ordering`.
    pub atomic_sites: usize,
    /// Condvar wait sites seen by `condvar-protocol`.
    pub condvar_waits: usize,
}

impl GraphStats {
    /// Resolved-call ratio in percent (rounded down), over workspace-
    /// resolvable calls only (external std calls are excluded from the
    /// denominator — they are outside the graph by design).
    pub fn resolved_pct(&self) -> usize {
        let denominator = self.calls_resolved + self.calls_unresolved;
        if denominator == 0 {
            return 100;
        }
        self.calls_resolved * 100 / denominator
    }
}

impl fmt::Display for GraphStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "symbol graph: {} fn item(s); calls {} resolved / {} external / {} unresolved \
             ({}% resolved of workspace-resolvable); {} entry point(s), {} reachable \
             panicking fn(s); lock graph {} node(s) / {} edge(s); {} hot fn(s); \
             dataflow {} guard-live site(s), {} atomic site(s), {} condvar wait(s)",
            self.items,
            self.calls_resolved,
            self.calls_external,
            self.calls_unresolved,
            self.resolved_pct(),
            self.entry_points,
            self.reachable_panic_fns,
            self.lock_nodes,
            self.lock_edges,
            self.hot_fns,
            self.guard_live_sites,
            self.atomic_sites,
            self.condvar_waits,
        )
    }
}

/// The full result of a lint run, serializable for `--json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Report {
    /// Active (non-baselined) findings, sorted by path, line, rule.
    pub findings: Vec<Finding>,
    /// Findings matched and silenced by `lint.toml` suppressions.
    pub suppressed: usize,
    /// Suppressions in `lint.toml` that matched nothing — stale entries
    /// that must be deleted (`--deny` fails on them, so the baseline can
    /// only shrink).
    pub stale_suppressions: Vec<StaleSuppression>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Symbol-graph size and resolution statistics.
    pub stats: GraphStats,
}

/// A `lint.toml` suppression that matched no finding.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StaleSuppression {
    /// The suppressed rule.
    pub rule: String,
    /// The suppressed path.
    pub path: String,
    /// The suppressed line, or 0 for a whole-file suppression.
    pub line: usize,
    /// Nearest line in the same file where the same rule still fires
    /// (pre-baseline), or 0 when the rule no longer fires in the file at
    /// all — the hint for re-pinning a drifted line suppression.
    pub nearest_line: usize,
}

impl fmt::Display for StaleSuppression {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(
                f,
                "stale suppression: [{}] at {} matches nothing",
                self.rule, self.path
            )?;
        } else {
            write!(
                f,
                "stale suppression: [{}] at {}:{} matches nothing",
                self.rule, self.path, self.line
            )?;
        }
        if self.nearest_line != 0 {
            write!(
                f,
                " (nearest surviving [{}] finding in this file is line {})",
                self.rule, self.nearest_line
            )?;
        }
        Ok(())
    }
}
