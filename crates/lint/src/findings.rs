//! Finding and report types, serializable for `--json` output.

use std::fmt;

use serde::{Deserialize, Serialize};

/// How severe a finding is. Severity is informational — `--deny` fails on
/// any non-baselined finding regardless of severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Severity {
    /// Should be fixed, but commonly needs a deliberate judgement call
    /// (e.g. an exact-zero float guard).
    Warning,
    /// Violates a project invariant (panic in serving code, unseeded RNG
    /// in a deterministic simulator, lock-order inversion).
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Finding {
    /// Rule identifier (e.g. `no-unwrap-in-lib`).
    pub rule: String,
    /// Finding severity.
    pub severity: Severity,
    /// Workspace-relative path with forward slashes.
    pub path: String,
    /// 1-based source line.
    pub line: usize,
    /// Human-readable description of the violation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {} [{}] {}",
            self.path, self.line, self.severity, self.rule, self.message
        )
    }
}

/// The full result of a lint run, serializable for `--json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Report {
    /// Active (non-baselined) findings, sorted by path, line, rule.
    pub findings: Vec<Finding>,
    /// Findings matched and silenced by `lint.toml` suppressions.
    pub suppressed: usize,
    /// Suppressions in `lint.toml` that matched nothing — stale entries
    /// that should be deleted (warned, never fails `--deny`).
    pub stale_suppressions: Vec<StaleSuppression>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

/// A `lint.toml` suppression that matched no finding.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StaleSuppression {
    /// The suppressed rule.
    pub rule: String,
    /// The suppressed path.
    pub path: String,
    /// The suppressed line, or 0 for a whole-file suppression.
    pub line: usize,
}

impl fmt::Display for StaleSuppression {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "stale suppression: {} at {} matches nothing", self.rule, self.path)
        } else {
            write!(
                f,
                "stale suppression: {} at {}:{} matches nothing",
                self.rule, self.path, self.line
            )
        }
    }
}
