//! Workspace symbol table and best-effort call resolution.
//!
//! Resolution handles exactly three call shapes, in this order:
//!
//! 1. **same-module** — `f(..)` / `Type::method(..)` defined in the
//!    calling module (or, for `self.method(..)`, on the enclosing `impl`
//!    type anywhere in the same crate);
//! 2. **`use`-imported** — the first path segment was bound by a file
//!    `use` (including aliases and group imports);
//! 3. **fully-qualified** — the first segment is a workspace crate name,
//!    or `crate`/`super`/`self` relative to the calling module.
//!
//! Everything else is deliberately out of scope and classified as
//! *external* (known std/core/alloc territory, common container methods)
//! or *unresolved* (method calls the heuristics cannot pin down, macro
//! expansions, trait-object dispatch). One extra heuristic closes the
//! biggest practical gap: a method call whose name is defined on exactly
//! one type in the whole workspace (and is not a common std name)
//! resolves to that unique definition — this is what lets
//! `plan.predict_batch(..)` in `serve` reach `neural::plan::FrozenPlan`.

use std::collections::HashMap;

use crate::parser::{CallKind, FnItem, ParsedFile};

/// Outcome of resolving one call site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Resolution {
    /// Resolved to a workspace item (index into the flattened item list).
    Item(usize),
    /// A call into std/core or a common container method — outside the
    /// workspace graph by design.
    External,
    /// The heuristics could not resolve it.
    Unresolved,
}

/// Method names too generic for the unique-name fallback: resolving
/// `x.clone()` to the single workspace type with an inherent `clone`
/// would create false edges everywhere.
const COMMON_METHODS: &[&str] = &[
    "all", "and_then", "any", "as_bytes", "as_ref", "as_str", "abs", "chain", "clamp", "clone",
    "cloned", "cmp", "collect", "contains", "copied", "count", "default", "drain", "ends_with",
    "compare_exchange", "compare_exchange_weak", "enumerate", "eq", "extend",
    "extend_from_slice", "fetch_add", "fetch_and", "fetch_max", "fetch_min", "fetch_or",
    "fetch_sub", "fetch_update", "fetch_xor", "filter", "filter_map",
    "find", "first", "flat_map", "flatten", "fmt", "fold", "from", "get", "get_mut", "hash",
    "insert", "into", "into_iter", "is_empty", "is_some", "is_none", "iter", "iter_mut",
    "join", "last", "len", "load", "lock", "map", "map_err", "max", "min", "new", "next",
    "notify_all", "notify_one", "ok", "ok_or", "ok_or_else", "parse", "pop", "position",
    "product", "push", "read", "recv", "recv_timeout", "remove", "rev", "reserve", "sleep",
    "sort", "sort_by", "sort_by_key",
    "split", "starts_with", "store", "sum", "swap", "take", "to_owned", "to_string", "to_vec",
    "trim", "unwrap", "unwrap_or", "unwrap_or_default", "unwrap_or_else", "expect", "wait",
    "wait_timeout", "write", "zip",
];

/// First path segments that mark a call as external to the workspace.
const EXTERNAL_ROOTS: &[&str] = &[
    "std", "core", "alloc", "Vec", "String", "Box", "Arc", "Rc", "Option", "Result", "Some",
    "Ok", "Err", "None", "Iterator", "Duration", "Instant", "HashMap", "HashSet", "BTreeMap",
    "BTreeSet", "VecDeque", "Ordering", "PhantomData", "Cell", "RefCell", "AtomicU64",
    "AtomicU32", "AtomicUsize", "AtomicBool", "Mutex", "RwLock", "Condvar", "f32", "f64",
    "u8", "u16", "u32", "u64", "usize", "i8", "i16", "i32", "i64", "isize", "str", "char",
    "bool", "PoisonError", "Default", "Clone", "Drop", "From", "Into", "TryFrom",
];

/// The flattened workspace: every parsed item plus lookup tables.
pub struct SymbolTable {
    /// All non-test items from every parsed file, flattened.
    pub items: Vec<FnItem>,
    /// For each item, the index of its [`ParsedFile`].
    pub item_file: Vec<usize>,
    /// Fully-qualified path → item index (first definition wins).
    by_path: HashMap<String, usize>,
    /// Method name → item indices with a `self_type`.
    methods: HashMap<String, Vec<usize>>,
    /// Underscored workspace crate names.
    crate_names: Vec<String>,
}

impl SymbolTable {
    /// Builds the table from parsed files, excluding test items (their
    /// calls and panics are exempt from every graph rule).
    pub fn build(files: &[ParsedFile]) -> Self {
        let mut items = Vec::new();
        let mut item_file = Vec::new();
        let mut by_path = HashMap::new();
        let mut methods: HashMap<String, Vec<usize>> = HashMap::new();
        let mut crate_names = Vec::new();
        for (file_idx, file) in files.iter().enumerate() {
            let crate_name = file.crate_dir.replace('-', "_");
            if !crate_names.contains(&crate_name) {
                crate_names.push(crate_name);
            }
            for item in &file.items {
                if item.in_test {
                    continue;
                }
                let idx = items.len();
                by_path.entry(item.path()).or_insert(idx);
                if item.self_type.is_some() {
                    methods.entry(item.name.clone()).or_default().push(idx);
                }
                items.push(item.clone());
                item_file.push(file_idx);
            }
        }
        Self {
            items,
            item_file,
            by_path,
            methods,
            crate_names,
        }
    }

    /// Looks up a fully-qualified path.
    pub fn lookup(&self, path: &str) -> Option<usize> {
        self.by_path.get(path).copied()
    }

    /// Resolves one call made from `caller` in `file`.
    pub fn resolve(&self, caller: &FnItem, file: &ParsedFile, call: &CallKind) -> Resolution {
        match call {
            CallKind::Path(segments) => self.resolve_path_call(caller, file, segments),
            CallKind::Method { name, on_self } => {
                self.resolve_method_call(caller, name, *on_self)
            }
        }
    }

    fn resolve_path_call(
        &self,
        caller: &FnItem,
        file: &ParsedFile,
        segments: &[String],
    ) -> Resolution {
        let Some(head) = segments.first() else {
            return Resolution::Unresolved;
        };
        // Same module: `f(..)` / `Type::method(..)` next to the caller.
        let mut local = caller.module.clone();
        local.extend(segments.iter().cloned());
        if let Some(idx) = self.lookup(&local.join("::")) {
            return Resolution::Item(idx);
        }
        // Same impl block: `Self::helper(..)`.
        if head == "Self" {
            if let Some(ty) = &caller.self_type {
                let mut path = caller.module.clone();
                path.push(ty.clone());
                path.extend(segments.iter().skip(1).cloned());
                if let Some(idx) = self.lookup(&path.join("::")) {
                    return Resolution::Item(idx);
                }
            }
            return Resolution::Unresolved;
        }
        // Imported head: splice the import target in, then normalize.
        if let Some(import) = file.imports.iter().find(|i| &i.name == head) {
            let mut target = import.target.clone();
            target.extend(segments.iter().skip(1).cloned());
            if let Some(idx) = self.lookup_normalized(&target, &file.base_module) {
                return Resolution::Item(idx);
            }
            if target.first().is_some_and(|h| EXTERNAL_ROOTS.contains(&h.as_str())) {
                return Resolution::External;
            }
        }
        // Fully qualified from a crate root or crate/super/self-relative.
        if let Some(idx) = self.lookup_normalized(segments, &caller.module) {
            return Resolution::Item(idx);
        }
        if EXTERNAL_ROOTS.contains(&head.as_str()) {
            return Resolution::External;
        }
        Resolution::Unresolved
    }

    /// Normalizes a path that may start with `crate`/`super`/`self` or a
    /// workspace crate name, then looks it up.
    fn lookup_normalized(&self, segments: &[String], context_module: &[String]) -> Option<usize> {
        let head = segments.first()?;
        let full: Vec<String> = match head.as_str() {
            "crate" => {
                let crate_name = context_module.first()?.clone();
                std::iter::once(crate_name)
                    .chain(segments.iter().skip(1).cloned())
                    .collect()
            }
            "self" => context_module
                .iter()
                .cloned()
                .chain(segments.iter().skip(1).cloned())
                .collect(),
            "super" => {
                let mut module = context_module.to_vec();
                let mut rest = segments;
                while rest.first().is_some_and(|s| s == "super") {
                    module.pop();
                    rest = &rest[1..];
                }
                module.into_iter().chain(rest.iter().cloned()).collect()
            }
            name if self.crate_names.iter().any(|c| c == name) => segments.to_vec(),
            _ => return None,
        };
        self.lookup(&full.join("::"))
    }

    fn resolve_method_call(&self, caller: &FnItem, name: &str, on_self: bool) -> Resolution {
        // `self.method(..)`: the enclosing impl type, same module first,
        // then the same type name anywhere in the caller's crate.
        if on_self {
            if let Some(ty) = &caller.self_type {
                let mut path = caller.module.clone();
                path.push(ty.clone());
                path.push(name.to_string());
                if let Some(idx) = self.lookup(&path.join("::")) {
                    return Resolution::Item(idx);
                }
                let crate_name = caller.module.first();
                if let Some(candidates) = self.methods.get(name) {
                    let same_type: Vec<usize> = candidates
                        .iter()
                        .copied()
                        .filter(|&i| {
                            self.items[i].self_type.as_deref() == Some(ty.as_str())
                                && self.items[i].module.first() == crate_name
                        })
                        .collect();
                    if let [only] = same_type.as_slice() {
                        return Resolution::Item(*only);
                    }
                }
            }
        }
        // Unique-definition fallback for distinctive names.
        if COMMON_METHODS.contains(&name) {
            return Resolution::External;
        }
        match self.methods.get(name).map(Vec::as_slice) {
            Some([only]) => Resolution::Item(*only),
            Some(_) => Resolution::Unresolved,
            None => Resolution::External,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer;
    use crate::parser::parse_file;

    fn parse(path: &str, crate_dir: &str, src: &str) -> ParsedFile {
        let tokens = lexer::lex(src);
        let mask = lexer::test_mask(&tokens);
        parse_file(path, crate_dir, src, &tokens, &mask)
    }

    fn find_call<'a>(item: &'a FnItem, pred: impl Fn(&CallKind) -> bool) -> &'a CallKind {
        &item.calls.iter().find(|c| pred(&c.kind)).expect("call").kind
    }

    #[test]
    fn resolves_same_module_imported_and_qualified_calls() {
        let neural = parse(
            "crates/neural/src/plan.rs",
            "neural",
            r#"
            pub struct FrozenPlan;
            impl FrozenPlan {
                pub fn predict_batch(&self) { helper(); }
            }
            fn helper() {}
            "#,
        );
        let serve = parse(
            "crates/serve/src/engine.rs",
            "serve",
            r#"
            use neural::plan::FrozenPlan;
            fn worker(plan: &FrozenPlan) {
                plan.predict_batch();
                FrozenPlan::predict_batch(plan);
                neural::plan::FrozenPlan::predict_batch(plan);
                crate::engine::local();
            }
            fn local() {}
            "#,
        );
        let files = vec![neural, serve];
        let table = SymbolTable::build(&files);
        let worker_idx = table
            .items
            .iter()
            .position(|i| i.name == "worker")
            .expect("worker");
        let worker = table.items[worker_idx].clone();
        let file = &files[1];

        // Method call via unique-name fallback.
        let method = find_call(&worker, |k| matches!(k, CallKind::Method { .. }));
        let target = table.resolve(&worker, file, method);
        let predict = table
            .lookup("neural::plan::FrozenPlan::predict_batch")
            .expect("predict_batch indexed");
        assert_eq!(target, Resolution::Item(predict));

        // Imported `Type::method`.
        let typed = find_call(&worker, |k| {
            matches!(k, CallKind::Path(p) if p.len() == 2 && p[0] == "FrozenPlan")
        });
        assert_eq!(table.resolve(&worker, file, typed), Resolution::Item(predict));

        // Fully qualified.
        let full = find_call(&worker, |k| {
            matches!(k, CallKind::Path(p) if p.first().is_some_and(|s| s == "neural"))
        });
        assert_eq!(table.resolve(&worker, file, full), Resolution::Item(predict));

        // crate::-relative.
        let local_call = find_call(&worker, |k| {
            matches!(k, CallKind::Path(p) if p.first().is_some_and(|s| s == "crate"))
        });
        let local = table.lookup("serve::engine::local").expect("local indexed");
        assert_eq!(table.resolve(&worker, file, local_call), Resolution::Item(local));
    }

    #[test]
    fn self_method_calls_resolve_within_the_impl_type() {
        let file = parse(
            "crates/serve/src/engine.rs",
            "serve",
            r#"
            pub struct Engine;
            impl Engine {
                pub fn submit(&self) { self.inner(); }
                fn inner(&self) {}
            }
            "#,
        );
        let files = vec![file];
        let table = SymbolTable::build(&files);
        let submit = table.items.iter().position(|i| i.name == "submit").unwrap();
        let caller = table.items[submit].clone();
        let call = find_call(&caller, |k| matches!(k, CallKind::Method { .. }));
        let inner = table.lookup("serve::engine::Engine::inner").unwrap();
        assert_eq!(table.resolve(&caller, &files[0], call), Resolution::Item(inner));
    }

    #[test]
    fn common_methods_and_std_paths_are_external() {
        let file = parse(
            "crates/serve/src/x.rs",
            "serve",
            r#"
            fn f(v: &mut Vec<u32>) {
                v.push(1);
                let _ = std::mem::take(v);
            }
            "#,
        );
        let files = vec![file];
        let table = SymbolTable::build(&files);
        let caller = table.items[0].clone();
        for call in &caller.calls {
            assert_eq!(
                table.resolve(&caller, &files[0], &call.kind),
                Resolution::External,
                "{call:?}"
            );
        }
    }
}
