//! The workspace call graph and the three graph-based rules:
//! `panic-reachability`, `lock-graph` and `alloc-in-hot-path`.
//!
//! Everything here runs on the flattened [`SymbolTable`] built from the
//! per-file parses — the rules are interprocedural but still best-effort:
//! an unresolved call is an absent edge, so the guarantees are "no false
//! chain", not "no missed chain" (DESIGN.md §11 spells out the limits).

use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};

use crate::config::LintConfig;
use crate::findings::{Finding, GraphStats, Severity};
use crate::parser::{FnItem, LockEvent, PanicKind, ParsedFile};
use crate::resolve::{Resolution, SymbolTable};
use crate::rules::{LOCK_ORDER_CRATES, PANIC_FREE_CRATES};

/// One resolved call edge in the graph.
#[derive(Debug, Clone, Copy)]
pub struct CallEdge {
    /// Callee item index.
    pub target: usize,
    /// Source line of the call site.
    pub line: usize,
    /// Index into the caller's `calls` list.
    pub call_index: usize,
}

/// The resolved workspace call graph.
pub struct CallGraph {
    /// Outgoing edges per item (parallel to `SymbolTable::items`).
    pub edges: Vec<Vec<CallEdge>>,
    /// Resolution counters for `--stats`.
    pub resolved: usize,
    /// Calls classified as std/common-method external.
    pub external: usize,
    /// Calls the resolver gave up on.
    pub unresolved: usize,
}

impl CallGraph {
    /// Resolves every call site of every item into edges.
    pub fn build(table: &SymbolTable, files: &[ParsedFile]) -> Self {
        let mut edges = vec![Vec::new(); table.items.len()];
        let (mut resolved, mut external, mut unresolved) = (0usize, 0usize, 0usize);
        for (idx, item) in table.items.iter().enumerate() {
            let file = &files[table.item_file[idx]];
            for (call_index, call) in item.calls.iter().enumerate() {
                match table.resolve(item, file, &call.kind) {
                    Resolution::Item(target) => {
                        resolved += 1;
                        edges[idx].push(CallEdge {
                            target,
                            line: call.line,
                            call_index,
                        });
                    }
                    Resolution::External => external += 1,
                    Resolution::Unresolved => unresolved += 1,
                }
            }
        }
        Self {
            edges,
            resolved,
            external,
            unresolved,
        }
    }
}

/// Entry-point predicate for `panic-reachability`: a plain-`pub` non-test
/// function in a panic-free crate's library code (bin targets and
/// `main.rs` are process entry points, not API surface).
fn is_entry_point(item: &FnItem) -> bool {
    if !item.is_pub || item.in_test {
        return false;
    }
    if item.file.contains("/src/bin/") || item.file.ends_with("/src/main.rs") {
        return false;
    }
    let crate_dir = crate_dir_of(&item.file);
    PANIC_FREE_CRATES.contains(&crate_dir)
}

/// Crate directory name (`ms-sim` style) for a workspace-relative path.
pub(crate) fn crate_dir_of(path: &str) -> &str {
    let mut parts = path.split('/');
    match (parts.next(), parts.next()) {
        (Some("crates"), Some("compat")) => parts.next().unwrap_or(""),
        (Some("crates"), Some(name)) => name,
        _ => "",
    }
}

/// `panic-reachability`: BFS from every public entry point of the
/// panic-free crates; any reachable function containing a panic source
/// yields one finding carrying the full entry-point→panic call chain.
pub fn panic_reachability(
    table: &SymbolTable,
    graph: &CallGraph,
    config: &LintConfig,
    stats: &mut GraphStats,
    out: &mut Vec<Finding>,
) {
    let mut parent: Vec<Option<usize>> = vec![None; table.items.len()];
    let mut visited = vec![false; table.items.len()];
    let mut queue = VecDeque::new();
    for (idx, item) in table.items.iter().enumerate() {
        if is_entry_point(item) {
            visited[idx] = true;
            queue.push_back(idx);
            stats.entry_points += 1;
        }
    }
    while let Some(node) = queue.pop_front() {
        for edge in &graph.edges[node] {
            if !visited[edge.target] {
                visited[edge.target] = true;
                parent[edge.target] = Some(node);
                queue.push_back(edge.target);
            }
        }
    }
    for (idx, item) in table.items.iter().enumerate() {
        if !visited[idx] {
            continue;
        }
        let sites: Vec<_> = item
            .panics
            .iter()
            .filter(|p| config.index_panics || p.kind != PanicKind::Index)
            .collect();
        let Some(first) = sites.first() else { continue };
        stats.reachable_panic_fns += 1;
        // Reconstruct the entry → ... → item chain.
        let mut chain = vec![idx];
        let mut cursor = idx;
        while let Some(p) = parent[cursor] {
            chain.push(p);
            cursor = p;
        }
        chain.reverse();
        let chain_text: Vec<String> = chain.iter().map(|&i| table.items[i].path()).collect();
        let extra = if sites.len() > 1 {
            format!(" (+{} more site(s) in this fn)", sites.len() - 1)
        } else {
            String::new()
        };
        out.push(Finding {
            rule: "panic-reachability".to_string(),
            severity: Severity::Error,
            path: item.file.clone(),
            line: first.line,
            message: format!(
                "{} at line {} is reachable from public entry point `{}` via {}{}",
                first.kind.label(),
                first.line,
                chain_text.first().cloned().unwrap_or_default(),
                chain_text.join(" → "),
                extra,
            ),
        });
    }
}

/// Where a lock edge was observed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockEdgeSite {
    /// File of the acquisition that closed the edge.
    pub file: String,
    /// Line of that acquisition.
    pub line: usize,
    /// `Some((caller, callee))` when the edge crosses a function call
    /// (one level deep), `None` for an intra-function nesting.
    pub via: Option<(String, String)>,
}

/// The whole-workspace lock acquisition graph: an edge A→B means "B was
/// acquired while A was held" somewhere in the lock-ordered crates.
#[derive(Debug, Default)]
pub struct LockGraph {
    /// Edge → first site that produced it (deterministic: files are
    /// walked in sorted order).
    pub edges: BTreeMap<(String, String), LockEdgeSite>,
    /// Every lock name that participated in any acquisition.
    pub nodes: BTreeSet<String>,
}

impl LockGraph {
    /// Renders the graph as GraphViz DOT, cycle edges in red.
    pub fn to_dot(&self, cycle_edges: &BTreeSet<(String, String)>) -> String {
        let mut dot = String::from("digraph lock_graph {\n    rankdir=LR;\n");
        for node in &self.nodes {
            dot.push_str(&format!("    \"{node}\";\n"));
        }
        for ((from, to), site) in &self.edges {
            let label = match &site.via {
                Some((caller, callee)) => {
                    format!("{}:{} via {} → {}", site.file, site.line, caller, callee)
                }
                None => format!("{}:{}", site.file, site.line),
            };
            let color = if cycle_edges.contains(&(from.clone(), to.clone())) {
                ", color=red, fontcolor=red"
            } else {
                ""
            };
            dot.push_str(&format!(
                "    \"{from}\" -> \"{to}\" [label=\"{label}\"{color}];\n"
            ));
        }
        dot.push_str("}\n");
        dot
    }
}

/// Per-function lock facts extracted by replaying [`LockEvent`]s.
struct FnLockFacts {
    /// Locks directly acquired anywhere in the function body.
    acquires: Vec<(String, usize)>,
    /// Direct nesting edges observed inside the function.
    edges: Vec<(String, String, usize)>,
    /// Re-acquisitions of a lock already held (self-deadlock).
    reacquires: Vec<(String, usize)>,
    /// Calls made while at least one lock was held: (call index, held).
    calls_holding: Vec<(usize, Vec<String>)>,
}

/// Crate-qualified lock identity: `serve::state`, not bare `state`, so
/// same-named fields in different crates never alias in the lock graph.
pub(crate) fn qualify_lock(crate_dir: &str, field: &str) -> String {
    if crate_dir.is_empty() {
        field.to_string()
    } else {
        format!("{crate_dir}::{field}")
    }
}

/// Replays one function's lock events against the configured
/// (crate-qualified) lock names.
fn replay_lock_events(item: &FnItem, lock_names: &[String], crate_prefix: &str) -> FnLockFacts {
    struct Held {
        binding: Option<String>,
        lock: String,
        depth: usize,
    }
    let mut facts = FnLockFacts {
        acquires: Vec::new(),
        edges: Vec::new(),
        reacquires: Vec::new(),
        calls_holding: Vec::new(),
    };
    let mut held: Vec<Held> = Vec::new();
    let mut depth = 0usize;
    for event in &item.lock_events {
        match event {
            LockEvent::Open => depth += 1,
            LockEvent::Close => {
                depth = depth.saturating_sub(1);
                held.retain(|h| h.depth <= depth);
            }
            LockEvent::DropBinding { name } => {
                held.retain(|h| h.binding.as_deref() != Some(name.as_str()));
            }
            LockEvent::Acquire { field, binding, line } => {
                let lock = qualify_lock(crate_prefix, field);
                if !lock_names.contains(&lock) {
                    continue;
                }
                facts.acquires.push((lock.clone(), *line));
                for h in &held {
                    if h.lock == lock {
                        facts.reacquires.push((lock.clone(), *line));
                    } else {
                        facts.edges.push((h.lock.clone(), lock.clone(), *line));
                    }
                }
                // Only bound guards outlive their own statement.
                if binding.is_some() {
                    held.push(Held {
                        binding: binding.clone(),
                        lock,
                        depth,
                    });
                }
            }
            LockEvent::Call { index } => {
                if !held.is_empty() {
                    let held_now: Vec<String> = held.iter().map(|h| h.lock.clone()).collect();
                    facts.calls_holding.push((*index, held_now));
                }
            }
            // Condvar traffic is the dataflow layer's concern; a `wait`
            // atomically releases and reacquires the same mutex, which
            // cannot create a new ordering edge.
            LockEvent::CondvarWait { .. } | LockEvent::Notify { .. } => {}
        }
    }
    facts
}

/// `lock-graph`: builds the workspace lock graph (intra-function nesting
/// plus one level of cross-function expansion through resolved calls),
/// flags declared-order inversions, re-acquisitions and cycles, and
/// returns the graph for DOT export.
pub fn lock_graph(
    table: &SymbolTable,
    graph: &CallGraph,
    config: &LintConfig,
    stats: &mut GraphStats,
    out: &mut Vec<Finding>,
) -> LockGraph {
    let lock_names = &config.lock_order;
    let mut lock_graph = LockGraph::default();
    if lock_names.is_empty() {
        return lock_graph;
    }
    let rank_of = |name: &str| lock_names.iter().position(|l| l == name);
    let in_scope: Vec<bool> = table
        .items
        .iter()
        .map(|i| LOCK_ORDER_CRATES.contains(&crate_dir_of(&i.file)))
        .collect();
    let facts: Vec<FnLockFacts> = table
        .items
        .iter()
        .enumerate()
        .map(|(i, item)| {
            if in_scope[i] {
                replay_lock_events(item, lock_names, crate_dir_of(&item.file))
            } else {
                replay_lock_events(item, &[], "")
            }
        })
        .collect();

    let add_edge = |lock_graph: &mut LockGraph,
                        from: &str,
                        to: &str,
                        site: LockEdgeSite| {
        lock_graph.nodes.insert(from.to_string());
        lock_graph.nodes.insert(to.to_string());
        lock_graph
            .edges
            .entry((from.to_string(), to.to_string()))
            .or_insert(site);
    };

    for (idx, item) in table.items.iter().enumerate() {
        if !in_scope[idx] {
            continue;
        }
        for (lock, _line) in &facts[idx].acquires {
            lock_graph.nodes.insert(lock.clone());
        }
        for (from, to, line) in &facts[idx].edges {
            add_edge(
                &mut lock_graph,
                from,
                to,
                LockEdgeSite {
                    file: item.file.clone(),
                    line: *line,
                    via: None,
                },
            );
        }
        for (lock, line) in &facts[idx].reacquires {
            out.push(Finding {
                rule: "lock-graph".to_string(),
                severity: Severity::Error,
                path: item.file.clone(),
                line: *line,
                message: format!(
                    "re-acquiring `{lock}` in `{}` while a guard for it is still held \
                     (parking_lot locks are not reentrant)",
                    item.path()
                ),
            });
        }
        // One level of cross-function expansion: locks held across a
        // resolved call meet the callee's direct acquisitions.
        for (call_index, held) in &facts[idx].calls_holding {
            let Some(edge) = graph.edges[idx].iter().find(|e| e.call_index == *call_index)
            else {
                continue;
            };
            if !in_scope[edge.target] {
                continue;
            }
            let callee = &table.items[edge.target];
            for (acquired, acq_line) in &facts[edge.target].acquires {
                for held_lock in held {
                    if held_lock == acquired {
                        out.push(Finding {
                            rule: "lock-graph".to_string(),
                            severity: Severity::Error,
                            path: callee.file.clone(),
                            line: *acq_line,
                            message: format!(
                                "`{}` re-acquires `{acquired}` already held by caller `{}` \
                                 at {}:{} (parking_lot locks are not reentrant)",
                                callee.path(),
                                item.path(),
                                item.file,
                                edge.line,
                            ),
                        });
                    } else {
                        add_edge(
                            &mut lock_graph,
                            held_lock,
                            acquired,
                            LockEdgeSite {
                                file: callee.file.clone(),
                                line: *acq_line,
                                via: Some((item.path(), callee.path())),
                            },
                        );
                    }
                }
            }
        }
    }

    // Declared-order inversions, one finding per offending edge.
    for ((from, to), site) in &lock_graph.edges {
        let (Some(from_rank), Some(to_rank)) = (rank_of(from), rank_of(to)) else {
            continue;
        };
        if from_rank > to_rank {
            let via = match &site.via {
                Some((caller, callee)) => format!(" (via call `{caller}` → `{callee}`)"),
                None => String::new(),
            };
            out.push(Finding {
                rule: "lock-graph".to_string(),
                severity: Severity::Error,
                path: site.file.clone(),
                line: site.line,
                message: format!(
                    "acquiring `{to}` while holding `{from}` inverts the declared order [{}]{via}",
                    lock_names.join(" < "),
                ),
            });
        }
    }

    // Cycle detection over the edge set.
    let cycles = find_cycles(&lock_graph);
    for cycle in &cycles {
        let first_edge = (cycle[0].clone(), cycle[1].clone());
        let site = &lock_graph.edges[&first_edge];
        let legs: Vec<String> = cycle
            .windows(2)
            .map(|w| {
                let s = &lock_graph.edges[&(w[0].clone(), w[1].clone())];
                match &s.via {
                    Some((caller, callee)) => format!(
                        "`{}` taken holding `{}` at {}:{} via `{caller}` → `{callee}`",
                        w[1], w[0], s.file, s.line
                    ),
                    None => format!(
                        "`{}` taken holding `{}` at {}:{}",
                        w[1], w[0], s.file, s.line
                    ),
                }
            })
            .collect();
        out.push(Finding {
            rule: "lock-graph".to_string(),
            severity: Severity::Error,
            path: site.file.clone(),
            line: site.line,
            message: format!(
                "lock cycle {}: {}",
                cycle.join(" → "),
                legs.join("; "),
            ),
        });
    }

    stats.lock_nodes = lock_graph.nodes.len();
    stats.lock_edges = lock_graph.edges.len();
    lock_graph
}

/// Elementary cycles of the lock graph, each reported once in canonical
/// rotation (smallest node first), as closed node lists `[a, b, a]`.
pub fn find_cycles(graph: &LockGraph) -> Vec<Vec<String>> {
    let nodes: Vec<&String> = graph.nodes.iter().collect();
    let index_of: HashMap<&str, usize> = nodes
        .iter()
        .enumerate()
        .map(|(i, n)| (n.as_str(), i))
        .collect();
    let mut adjacency: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
    for (from, to) in graph.edges.keys() {
        if let (Some(&f), Some(&t)) = (index_of.get(from.as_str()), index_of.get(to.as_str())) {
            adjacency[f].push(t);
        }
    }
    let mut cycles: BTreeSet<Vec<String>> = BTreeSet::new();
    // DFS from every node; a back-edge onto the current stack closes a
    // cycle. Graphs here are tiny (lock names), so this stays cheap.
    for start in 0..nodes.len() {
        let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
        let mut path: Vec<usize> = vec![start];
        let mut on_path = vec![false; nodes.len()];
        on_path[start] = true;
        while let Some((node, next_edge)) = stack.last_mut() {
            if let Some(&target) = adjacency[*node].get(*next_edge) {
                *next_edge += 1;
                if on_path[target] {
                    // Close the cycle at `target`.
                    if let Some(pos) = path.iter().position(|&n| n == target) {
                        let mut cycle: Vec<String> =
                            path[pos..].iter().map(|&n| nodes[n].clone()).collect();
                        // Canonical rotation: smallest name first.
                        let min_pos = cycle
                            .iter()
                            .enumerate()
                            .min_by_key(|(_, n)| n.as_str())
                            .map(|(i, _)| i)
                            .unwrap_or(0);
                        cycle.rotate_left(min_pos);
                        cycle.push(cycle[0].clone());
                        cycles.insert(cycle);
                    }
                } else {
                    on_path[target] = true;
                    path.push(target);
                    stack.push((target, 0));
                }
            } else {
                on_path[*node] = false;
                path.pop();
                stack.pop();
            }
        }
    }
    cycles.into_iter().collect()
}

/// `alloc-in-hot-path`: flags allocation-family calls inside functions
/// marked `// lint: hot` or matching a configured hot-path prefix.
pub fn alloc_in_hot_path(
    table: &SymbolTable,
    config: &LintConfig,
    stats: &mut GraphStats,
    out: &mut Vec<Finding>,
) {
    for item in &table.items {
        if item.in_test {
            continue;
        }
        let path = item.path();
        let configured = config.hot_paths.iter().any(|p| path.starts_with(p.as_str()));
        let marked = item.hot_marker;
        if !configured && !marked {
            continue;
        }
        stats.hot_fns += 1;
        let how = if marked { "`// lint: hot` marker" } else { "lint.toml hot path" };
        for alloc in &item.allocs {
            out.push(Finding {
                rule: "alloc-in-hot-path".to_string(),
                severity: Severity::Warning,
                path: item.file.clone(),
                line: alloc.line,
                message: format!(
                    "`{}` allocates inside hot path `{path}` ({how}); preallocate, reuse a \
                     scratch buffer, or baseline with a reason",
                    alloc.what,
                ),
            });
        }
    }
}

