//! A recursive-descent JSON parser producing [`Value`] trees.

use std::collections::BTreeMap;

use serde::{Number, Value};

use crate::Error;

pub(crate) fn parse(text: &str) -> Result<Value, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.err("trailing characters after JSON value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> Error {
        Error::new(format!("{message} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", byte as char)))
        }
    }

    fn literal(&mut self, text: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err(&format!("invalid literal (expected `{text}`)")))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(&format!("unexpected character `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let code = self.hex4()?;
                            // Surrogate pairs for astral-plane characters.
                            let c = if (0xD800..0xDC00).contains(&code) {
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let low = self.hex4()?;
                                    let combined = 0x10000
                                        + ((code - 0xD800) << 10)
                                        + (low.wrapping_sub(0xDC00) & 0x3FF);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(code)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid \\u escape"))?);
                            // hex4 leaves pos after the digits; compensate
                            // for the shared `pos += 1` below.
                            self.pos -= 1;
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is valid UTF-8 by
                    // construction from &str).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    let c = s.chars().next().expect("non-empty checked via peek");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let digits = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let code =
            u32::from_str_radix(digits, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if text.is_empty() || text == "-" {
            return Err(self.err("invalid number"));
        }
        let number = if is_float {
            Number::from_f64(text.parse::<f64>().map_err(|_| self.err("invalid number"))?)
        } else if text.starts_with('-') {
            Number::from_i64(text.parse::<i64>().map_err(|_| self.err("invalid number"))?)
        } else {
            match text.parse::<u64>() {
                Ok(n) => Number::from_u64(n),
                // Fall back to float for out-of-range integers.
                Err(_) => Number::from_f64(
                    text.parse::<f64>().map_err(|_| self.err("invalid number"))?,
                ),
            }
        };
        Ok(Value::Number(number))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v = parse(r#"{"a": [1, -2, 3.5], "b": {"c": null, "d": true}, "e": "x"}"#).unwrap();
        assert_eq!(v["a"][2], Value::Number(Number::from_f64(3.5)));
        assert_eq!(v["a"][1], -2);
        assert!(v["b"]["c"].is_null());
        assert_eq!(v["b"]["d"], true);
        assert_eq!(v["e"], "x");
    }

    #[test]
    fn parses_unicode_escapes() {
        let v = parse(r#""Aé😀""#).unwrap();
        assert_eq!(v, "Aé😀");
    }

    #[test]
    fn scientific_notation_is_float() {
        let v = parse("1e3").unwrap();
        assert_eq!(v.as_f64(), Some(1000.0));
    }
}
