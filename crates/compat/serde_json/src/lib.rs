//! Offline, in-workspace stand-in for `serde_json`.
//!
//! Provides the JSON text format over the [`Value`] model shared with the
//! `serde` stand-in: [`to_string`], [`to_string_pretty`], [`from_str`],
//! [`to_value`], [`from_value`] and the [`json!`] macro. Numbers preserve
//! their integer/float kind; floats print with the shortest
//! representation that round-trips exactly, so `f32`/`f64` payloads
//! survive a save/load cycle bit-identically.

#![forbid(unsafe_code)]

use std::fmt;

use serde::de::DeserializeOwned;
use serde::Serialize;

pub use serde::{Number, Value};

mod parse;

/// A serialization or parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    pub(crate) fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error::new(e.to_string())
    }
}

/// A `Result` alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Converts a serializable value into a [`Value`] tree.
///
/// # Errors
///
/// Never fails in this stand-in; the `Result` keeps the upstream
/// signature.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value> {
    Ok(value.to_value())
}

/// Reconstructs `T` from a [`Value`] tree.
///
/// # Errors
///
/// Returns [`Error`] if the value does not match `T`'s shape.
pub fn from_value<T: DeserializeOwned>(value: Value) -> Result<T> {
    T::from_value(&value).map_err(Error::from)
}

/// Serializes a value to compact JSON text.
///
/// # Errors
///
/// Never fails in this stand-in; the `Result` keeps the upstream
/// signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes a value to human-readable, two-space-indented JSON text.
///
/// # Errors
///
/// Never fails in this stand-in; the `Result` keeps the upstream
/// signature.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text into `T`.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: DeserializeOwned>(text: &str) -> Result<T> {
    let value = parse::parse(text)?;
    T::from_value(&value).map_err(Error::from)
}

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, level: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => out.push_str(&n.to_string()),
        Value::String(s) => write_escaped(out, s),
        Value::Array(items) => write_seq(out, indent, level, items.iter(), '[', ']', |out, v, l| {
            write_value(out, v, indent, l);
        }),
        Value::Object(map) => write_seq(out, indent, level, map.iter(), '{', '}', |out, (k, v), l| {
            write_escaped(out, k);
            out.push(':');
            if indent.is_some() {
                out.push(' ');
            }
            write_value(out, v, indent, l);
        }),
    }
}

fn write_seq<I: ExactSizeIterator>(
    out: &mut String,
    indent: Option<usize>,
    level: usize,
    items: I,
    open: char,
    close: char,
    mut write_item: impl FnMut(&mut String, I::Item, usize),
) {
    out.push(open);
    let len = items.len();
    if len == 0 {
        out.push(close);
        return;
    }
    for (i, item) in items.enumerate() {
        if let Some(width) = indent {
            out.push('\n');
            out.extend(std::iter::repeat(' ').take(width * (level + 1)));
        }
        write_item(out, item, level + 1);
        if i + 1 < len {
            out.push(',');
        }
    }
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat(' ').take(width * level));
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[doc(hidden)]
pub fn value_from_serialize<T: Serialize>(value: &T) -> Value {
    value.to_value()
}

/// Builds a [`Value`] from a JSON-like literal. Object values and array
/// elements may be arbitrary serializable Rust expressions.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $( $elem:expr ),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::value_from_serialize(&$elem) ),* ])
    };
    ({ $( $key:literal : $val:expr ),* $(,)? }) => {{
        #[allow(unused_mut)]
        let mut map = ::std::collections::BTreeMap::new();
        $( map.insert($key.to_string(), $crate::value_from_serialize(&$val)); )*
        $crate::Value::Object(map)
    }};
    ($other:expr) => { $crate::value_from_serialize(&$other) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_output_matches_expectations() {
        let v = json!({"b": 1, "a": [true, null, "x"], "f": 0.5});
        assert_eq!(
            to_string(&v).unwrap(),
            r#"{"a":[true,null,"x"],"b":1,"f":0.5}"#
        );
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = json!({"name": "net", "weights": [1.5, -2.0], "epochs": 12});
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn float_roundtrip_is_exact() {
        for x in [0.1f64, 1.0 / 3.0, f64::MIN_POSITIVE, 12345.678e-9, -0.0] {
            let text = to_string(&x).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} via {text}");
        }
        for x in [0.1f32, 2.0 / 3.0, f32::MIN_POSITIVE] {
            let text = to_string(&x).unwrap();
            let back: f32 = from_str(&text).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} via {text}");
        }
    }

    #[test]
    fn string_escapes_roundtrip() {
        let s = "line1\nline2\t\"quoted\" \\ \u{1}".to_string();
        let text = to_string(&s).unwrap();
        let back: String = from_str(&text).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn malformed_json_is_an_error() {
        assert!(from_str::<Value>("{\"a\": ").is_err());
        assert!(from_str::<Value>("[1, 2,]").is_err());
        assert!(from_str::<Value>("nul").is_err());
        assert!(from_str::<Value>("{} trailing").is_err());
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
    }
}
