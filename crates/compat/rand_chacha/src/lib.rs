//! Offline, in-workspace stand-in for the `rand_chacha` crate.
//!
//! Provides [`ChaCha8Rng`], [`ChaCha12Rng`] and [`ChaCha20Rng`] backed by
//! a genuine ChaCha keystream (see `rand::chacha_impl`). Output streams
//! are deterministic per seed but are not bit-compatible with the
//! upstream crate, which nothing in this workspace relies on.

#![forbid(unsafe_code)]

use rand::chacha_impl::ChaChaCore;
use rand::{RngCore, SeedableRng};

macro_rules! chacha_rng {
    ($(#[$doc:meta])* $name:ident, $rounds:expr) => {
        $(#[$doc])*
        #[derive(Debug, Clone)]
        pub struct $name(ChaChaCore<$rounds>);

        impl RngCore for $name {
            fn next_u32(&mut self) -> u32 {
                self.0.next_word()
            }
        }

        impl SeedableRng for $name {
            type Seed = [u8; 32];

            fn from_seed(seed: Self::Seed) -> Self {
                Self(ChaChaCore::from_seed_bytes(seed))
            }
        }
    };
}

chacha_rng!(
    /// ChaCha with 8 rounds (4 double-rounds): the workspace's default
    /// deterministic generator.
    ChaCha8Rng,
    4
);
chacha_rng!(
    /// ChaCha with 12 rounds.
    ChaCha12Rng,
    6
);
chacha_rng!(
    /// ChaCha with 20 rounds.
    ChaCha20Rng,
    10
);

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let xs: Vec<u64> = (0..32).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.gen()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn different_round_counts_differ() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha20Rng::seed_from_u64(1);
        assert_ne!(a.gen::<u64>(), b.gen::<u64>());
    }
}
