//! Offline, in-workspace stand-in for `criterion`.
//!
//! Keeps the `Criterion` / `BenchmarkGroup` / `Bencher` API shape and the
//! `criterion_group!` / `criterion_main!` macros so `harness = false`
//! bench targets compile and run unchanged, but replaces the statistical
//! machinery with a single warm-up pass plus a fixed number of timed
//! iterations printed as a mean per-iteration time.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Opaque value barrier re-exported for bench code.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// The benchmark driver handed to each `criterion_group!` target.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the iteration count used for subsequent benchmarks.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples.max(1);
        self
    }

    /// Times `routine` and prints its mean per-iteration wall time.
    pub fn bench_function<F>(&mut self, name: impl std::fmt::Display, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = name.to_string();
        let mut bencher = Bencher {
            iterations: self.sample_size as u64,
            elapsed: Duration::ZERO,
        };
        routine(&mut bencher);
        let mean = bencher.elapsed.as_nanos() / u128::from(bencher.iterations.max(1));
        println!("bench: {name:<40} {mean:>12} ns/iter ({} iters)", bencher.iterations);
        self
    }

    /// Opens a named group of benchmarks sharing a sample size.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            parent: self,
            sample_size: None,
        }
    }
}

/// A group of related benchmarks (a named scope with its own sample size).
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Sets the iteration count for benchmarks in this group.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = Some(samples.max(1));
        self
    }

    /// Times `routine` under this group's sample size.
    pub fn bench_function<F>(&mut self, name: impl std::fmt::Display, routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let saved = self.parent.sample_size;
        if let Some(samples) = self.sample_size {
            self.parent.sample_size = samples;
        }
        self.parent.bench_function(name, routine);
        self.parent.sample_size = saved;
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Runs and times the benchmark routine.
#[derive(Debug)]
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Calls `routine` once to warm up, then `iterations` timed times.
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Bundles benchmark functions into a single runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut calls = 0u64;
        let mut c = Criterion::default();
        c.sample_size(3).bench_function("counting", |b| {
            b.iter(|| {
                calls += 1;
            })
        });
        // One warm-up call plus three timed iterations.
        assert_eq!(calls, 4);
    }

    #[test]
    fn groups_restore_parent_sample_size() {
        let mut c = Criterion::default();
        {
            let mut group = c.benchmark_group("g");
            group.sample_size(2);
            group.bench_function("inner", |b| b.iter(|| 1 + 1));
            group.finish();
        }
        assert_eq!(c.sample_size, 10);
    }
}
