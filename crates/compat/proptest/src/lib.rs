//! Offline, in-workspace stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace uses:
//! range and tuple strategies, `prop_map`, `prop::collection::vec`, the
//! [`proptest!`] macro with an optional `#![proptest_config(..)]` header,
//! and the `prop_assert*` / `prop_assume!` macros. Cases are generated
//! from a per-test deterministic seed (an FNV-1a hash of the test name),
//! so failures reproduce across runs. Unlike upstream proptest there is
//! no shrinking: a failing case reports the inputs as generated.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The RNG handed to strategies while generating a test case.
pub type TestRng = StdRng;

/// How a single generated test case ended.
#[derive(Debug)]
pub enum TestCaseError {
    /// An assertion failed; carries the rendered failure message.
    Fail(String),
    /// A `prop_assume!` rejected the inputs; the case is not counted.
    Reject,
}

/// Per-test configuration (case count).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` accepted cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A generator of values for property tests.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Produces one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `map`.
    fn prop_map<O, F>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map {
            inner: self,
            map,
        }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    map: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.map)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*
    };
}

impl_range_strategy!(f32, f64, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A.0);
impl_tuple_strategy!(A.0, B.1);
impl_tuple_strategy!(A.0, B.1, C.2);
impl_tuple_strategy!(A.0, B.1, C.2, D.3);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// An inclusive-exclusive length range for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            Self { lo: r.start, hi: r.end }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi: r.end().saturating_add(1),
            }
        }
    }

    /// The strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.hi > self.size.lo {
                rng.gen_range(self.size.lo..self.size.hi)
            } else {
                self.size.lo
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Generates `Vec`s whose elements come from `element` and whose
    /// length falls in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Namespace alias matching `proptest::prelude::prop`.
pub mod prop {
    pub use crate::collection;
}

/// The conventional glob-import surface.
pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just,
        ProptestConfig, Strategy,
    };
}

#[doc(hidden)]
pub fn seed_for(test_name: &str) -> u64 {
    // FNV-1a, so each property gets a stable, distinct stream.
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in test_name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[doc(hidden)]
pub fn new_test_rng(test_name: &str) -> TestRng {
    TestRng::seed_from_u64(seed_for(test_name))
}

/// Defines property tests. Accepts an optional
/// `#![proptest_config(expr)]` header followed by `fn` items whose
/// parameters use `name in strategy` syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { (<$crate::ProptestConfig as ::core::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (($config:expr) $($(#[$meta:meta])* fn $name:ident( $($arg:ident in $strategy:expr),* $(,)? ) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::new_test_rng(concat!(module_path!(), "::", stringify!($name)));
                let mut accepted: u32 = 0;
                let mut attempts: u32 = 0;
                while accepted < config.cases {
                    attempts += 1;
                    if attempts > config.cases.saturating_mul(64).saturating_add(1024) {
                        panic!(
                            "proptest {}: too many cases rejected by prop_assume! \
                             ({accepted}/{} accepted after {attempts} attempts)",
                            stringify!($name),
                            config.cases,
                        );
                    }
                    $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)*
                    let inputs = format!(
                        concat!($(stringify!($arg), " = {:?}, ",)* ""),
                        $(&$arg),*
                    );
                    let outcome = (move || -> ::core::result::Result<(), $crate::TestCaseError> {
                        $body
                        Ok(())
                    })();
                    match outcome {
                        Ok(()) => accepted += 1,
                        Err($crate::TestCaseError::Reject) => {}
                        Err($crate::TestCaseError::Fail(message)) => {
                            panic!(
                                "proptest {} failed on case {accepted}: {message}\n  inputs: {inputs}",
                                stringify!($name),
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(left == right, $($fmt)+);
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `(left != right)`\n  both: `{:?}`",
            left
        );
    }};
}

/// Rejects the current case (without failing) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pairs() -> impl Strategy<Value = Vec<(f64, f64)>> {
        prop::collection::vec((-50.0..150.0f64, 0.0..100.0f64), 0..40)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in -3.0..3.0f64, n in 1usize..20) {
            prop_assert!((-3.0..3.0).contains(&x));
            prop_assert!((1..20).contains(&n));
        }

        #[test]
        fn vec_lengths_respect_size_range(v in prop::collection::vec(0.0..1.0f64, 2..32)) {
            prop_assert!(v.len() >= 2 && v.len() < 32);
            prop_assert!(v.iter().all(|&x| (0.0..1.0).contains(&x)));
        }

        #[test]
        fn prop_map_applies(len in (1usize..8).prop_map(|n| n * 2)) {
            prop_assert_eq!(len % 2, 0);
        }

        #[test]
        fn assume_skips_cases(n in 0usize..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }

        #[test]
        fn helper_strategies_compose(raw in pairs()) {
            prop_assert!(raw.len() < 40);
        }
    }

    #[test]
    fn seeds_are_stable_and_distinct() {
        assert_eq!(crate::seed_for("a"), crate::seed_for("a"));
        assert_ne!(crate::seed_for("a"), crate::seed_for("b"));
    }

    #[test]
    fn exact_size_is_exact() {
        let mut rng = crate::new_test_rng("exact_size");
        let v = prop::collection::vec(0.0..1.0f64, 64).generate(&mut rng);
        assert_eq!(v.len(), 64);
    }
}
