//! Offline, in-workspace stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s panic-free guard
//! API (`read()` / `write()` / `lock()` return guards directly, with
//! poisoning transparently recovered — matching `parking_lot`'s lack of
//! lock poisoning).

#![forbid(unsafe_code)]

use std::fmt;
use std::sync::{
    Condvar as StdCondvar, Mutex as StdMutex, MutexGuard, PoisonError, RwLock as StdRwLock,
    RwLockReadGuard, RwLockWriteGuard, WaitTimeoutResult,
};
use std::time::Duration;

/// A reader-writer lock whose guards never require unwrapping.
pub struct RwLock<T: ?Sized> {
    inner: StdRwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates the lock.
    pub const fn new(value: T) -> Self {
        Self {
            inner: StdRwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: fmt::Debug + ?Sized> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&self.inner, f)
    }
}

/// A mutex whose guard never requires unwrapping.
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    /// Creates the mutex.
    pub const fn new(value: T) -> Self {
        Self {
            inner: StdMutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: fmt::Debug + ?Sized> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&self.inner, f)
    }
}

/// A condition variable paired with [`Mutex`].
///
/// Deviation from real `parking_lot`: waits take and return the guard by
/// value (`std::sync::Condvar` style) rather than `&mut guard`, because the
/// guard here *is* a `std::sync::MutexGuard` and the std API consumes it.
/// Poisoning is transparently recovered, matching the rest of this stub.
#[derive(Default)]
pub struct Condvar {
    inner: StdCondvar,
}

impl Condvar {
    /// Creates the condition variable.
    pub const fn new() -> Self {
        Self {
            inner: StdCondvar::new(),
        }
    }

    /// Blocks until notified, releasing the guard while parked.
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        self.inner
            .wait(guard)
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        timeout: Duration,
    ) -> (MutexGuard<'a, T>, WaitTimeoutResult) {
        self.inner
            .wait_timeout(guard, timeout)
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Wakes one parked waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes every parked waiter.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&self.inner, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_read_write() {
        let lock = RwLock::new(1);
        assert_eq!(*lock.read(), 1);
        *lock.write() += 1;
        assert_eq!(*lock.read(), 2);
        assert_eq!(lock.into_inner(), 2);
    }

    #[test]
    fn mutex_lock() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(m.into_inner(), vec![1, 2]);
    }

    #[test]
    fn condvar_wakes_waiter() {
        use std::sync::Arc;
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let handle = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            *m.lock() = true;
            cv.notify_one();
        });
        let (m, cv) = &*pair;
        let mut ready = m.lock();
        while !*ready {
            ready = cv.wait(ready);
        }
        handle.join().unwrap();
        assert!(*ready);
    }

    #[test]
    fn condvar_wait_timeout_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let guard = m.lock();
        let (_guard, result) = cv.wait_timeout(guard, Duration::from_millis(5));
        assert!(result.timed_out());
    }
}
