//! Offline, in-workspace stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for the
//! shapes this workspace actually uses, generating impls of the sibling
//! `serde` stand-in's `Value`-based traits:
//!
//! * structs with named fields → JSON objects;
//! * tuple structs with one field (newtypes) → the inner value;
//! * tuple structs with several fields → JSON arrays;
//! * enums with unit variants → `"VariantName"` strings;
//! * enums with struct or newtype variants → `{"VariantName": ...}`
//!   externally-tagged objects (serde's default representation).
//!
//! Generics, lifetimes and `#[serde(...)]` attributes are not supported;
//! the derive panics at compile time if it meets them, which surfaces as
//! a clear build error at the offending type.
//!
//! The implementation deliberately uses only the compiler-provided
//! `proc_macro` API (no `syn`/`quote`), since the build environment has
//! no registry access.

#![forbid(unsafe_code)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// What a parsed type looks like, reduced to what codegen needs.
enum Shape {
    /// `struct S { a, b, .. }`
    NamedStruct { name: String, fields: Vec<String> },
    /// `struct S(T, ..);` with the number of fields.
    TupleStruct { name: String, arity: usize },
    /// `enum E { .. }`
    Enum { name: String, variants: Vec<Variant> },
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    /// Struct variant with named fields.
    Named(Vec<String>),
    /// Tuple variant with the given arity (only 1 is supported).
    Tuple(usize),
}

/// Derives the stand-in `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = parse(input);
    gen_serialize(&shape).parse().expect("generated Serialize impl parses")
}

/// Derives the stand-in `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = parse(input);
    gen_deserialize(&shape).parse().expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------- parsing

fn parse(input: TokenStream) -> Shape {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);

    let keyword = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde stand-in derive: expected `struct` or `enum`, got {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde stand-in derive: expected type name, got {other:?}"),
    };
    i += 1;

    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde stand-in derive: generic type `{name}` is not supported");
    }

    match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct {
                    name,
                    fields: parse_named_fields(g.stream()),
                }
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct {
                    name,
                    arity: count_tuple_fields(g.stream()),
                }
            }
            other => panic!("serde stand-in derive: unsupported struct body for `{name}`: {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Shape::Enum {
                name,
                variants: parse_variants(g.stream()),
            },
            other => panic!("serde stand-in derive: unsupported enum body for `{name}`: {other:?}"),
        },
        other => panic!("serde stand-in derive: unsupported item kind `{other}`"),
    }
}

/// Advances past leading `#[...]` attributes and a `pub`/`pub(...)`
/// visibility qualifier.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // `#` + `[...]` group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(
                    tokens.get(*i),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    *i += 1; // `pub(crate)` etc.
                }
            }
            _ => return,
        }
    }
}

/// Skips a type expression, stopping after the `,` that terminates it
/// (angle-bracket depth aware: commas inside `<...>` do not terminate).
fn skip_type_until_comma(tokens: &[TokenTree], i: &mut usize) {
    let mut depth = 0i32;
    while let Some(token) = tokens.get(*i) {
        if let TokenTree::Punct(p) = token {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    *i += 1;
                    return;
                }
                _ => {}
            }
        }
        *i += 1;
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde stand-in derive: expected field name, got {other:?}"),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("serde stand-in derive: expected `:` after `{name}`, got {other:?}"),
        }
        skip_type_until_comma(&tokens, &mut i);
        fields.push(name);
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 0;
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        skip_type_until_comma(&tokens, &mut i);
        count += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde stand-in derive: expected variant name, got {other:?}"),
        };
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                i += 1;
                VariantKind::Named(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_tuple_fields(g.stream());
                i += 1;
                VariantKind::Tuple(arity)
            }
            _ => VariantKind::Unit,
        };
        // Skip an explicit discriminant (`= expr`), then the separator.
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            i += 1;
            skip_type_until_comma(&tokens, &mut i);
        } else if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push(Variant { name, kind });
    }
    variants
}

// ---------------------------------------------------------------- codegen

fn gen_serialize(shape: &Shape) -> String {
    match shape {
        Shape::NamedStruct { name, fields } => {
            let inserts: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "map.insert({f:?}.to_string(), ::serde::Serialize::to_value(&self.{f}));\n"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         let mut map = ::std::collections::BTreeMap::new();\n\
                         {inserts}\
                         ::serde::Value::Object(map)\n\
                     }}\n\
                 }}"
            )
        }
        Shape::TupleStruct { name, arity: 1 } => format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                     ::serde::Serialize::to_value(&self.0)\n\
                 }}\n\
             }}"
        ),
        Shape::TupleStruct { name, arity } => {
            let items: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Array(vec![{}])\n\
                     }}\n\
                 }}",
                items.join(", ")
            )
        }
        Shape::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vname} => ::serde::Value::String({vname:?}.to_string()),\n"
                        ),
                        VariantKind::Named(fields) => {
                            let bindings = fields.join(", ");
                            let inserts: String = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "inner.insert({f:?}.to_string(), \
                                         ::serde::Serialize::to_value({f}));\n"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vname} {{ {bindings} }} => {{\n\
                                     let mut inner = ::std::collections::BTreeMap::new();\n\
                                     {inserts}\
                                     let mut outer = ::std::collections::BTreeMap::new();\n\
                                     outer.insert({vname:?}.to_string(), \
                                         ::serde::Value::Object(inner));\n\
                                     ::serde::Value::Object(outer)\n\
                                 }}\n"
                            )
                        }
                        VariantKind::Tuple(1) => format!(
                            "{name}::{vname}(inner) => {{\n\
                                 let mut outer = ::std::collections::BTreeMap::new();\n\
                                 outer.insert({vname:?}.to_string(), \
                                     ::serde::Serialize::to_value(inner));\n\
                                 ::serde::Value::Object(outer)\n\
                             }}\n"
                        ),
                        VariantKind::Tuple(n) => panic!(
                            "serde stand-in derive: {n}-field tuple variant \
                             `{name}::{vname}` is not supported"
                        ),
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{\n{arms}}}\n\
                     }}\n\
                 }}"
            )
        }
    }
}

/// The expression deserializing field `f` of `owner` from object map
/// expression `obj`.
fn field_expr(owner: &str, obj: &str, f: &str) -> String {
    format!(
        "{f}: ::serde::Deserialize::from_value(\
             {obj}.get({f:?}).unwrap_or(&::serde::Value::Null)\
         ).map_err(|e| e.context(concat!({owner:?}, \".\", {f:?})))?,\n"
    )
}

fn gen_deserialize(shape: &Shape) -> String {
    match shape {
        Shape::NamedStruct { name, fields } => {
            let field_exprs: String =
                fields.iter().map(|f| field_expr(name, "obj", f)).collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(value: &::serde::Value) \
                         -> ::core::result::Result<Self, ::serde::DeError> {{\n\
                         let obj = value.as_object().ok_or_else(|| \
                             ::serde::DeError::new(concat!(\
                                 \"expected object for struct \", {name:?})))?;\n\
                         ::core::result::Result::Ok({name} {{\n{field_exprs}}})\n\
                     }}\n\
                 }}"
            )
        }
        Shape::TupleStruct { name, arity: 1 } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(value: &::serde::Value) \
                     -> ::core::result::Result<Self, ::serde::DeError> {{\n\
                     ::core::result::Result::Ok({name}(\
                         ::serde::Deserialize::from_value(value)\
                             .map_err(|e| e.context({name:?}))?))\n\
                 }}\n\
             }}"
        ),
        Shape::TupleStruct { name, arity } => {
            let items: Vec<String> = (0..*arity)
                .map(|i| {
                    format!(
                        "::serde::Deserialize::from_value(&items[{i}])\
                             .map_err(|e| e.context({name:?}))?"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(value: &::serde::Value) \
                         -> ::core::result::Result<Self, ::serde::DeError> {{\n\
                         match value {{\n\
                             ::serde::Value::Array(items) if items.len() == {arity} => \
                                 ::core::result::Result::Ok({name}({list})),\n\
                             other => ::core::result::Result::Err(::serde::DeError::new(\
                                 format!(\"expected {arity}-element array for {name}, \
                                          got {{}}\", other.kind()))),\n\
                         }}\n\
                     }}\n\
                 }}",
                list = items.join(", ")
            )
        }
        Shape::Enum { name, variants } => {
            let unit_arms: String = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| {
                    let vname = &v.name;
                    format!("{vname:?} => ::core::result::Result::Ok({name}::{vname}),\n")
                })
                .collect();
            let tagged_arms: String = variants
                .iter()
                .filter_map(|v| {
                    let vname = &v.name;
                    match &v.kind {
                        VariantKind::Unit => None,
                        VariantKind::Named(fields) => {
                            let field_exprs: String =
                                fields.iter().map(|f| field_expr(name, "obj", f)).collect();
                            Some(format!(
                                "{vname:?} => {{\n\
                                     let obj = inner.as_object().ok_or_else(|| \
                                         ::serde::DeError::new(concat!(\
                                             \"expected object payload for \", \
                                             {name:?}, \"::\", {vname:?})))?;\n\
                                     ::core::result::Result::Ok({name}::{vname} {{\n\
                                         {field_exprs}}})\n\
                                 }}\n"
                            ))
                        }
                        VariantKind::Tuple(1) => Some(format!(
                            "{vname:?} => ::core::result::Result::Ok({name}::{vname}(\
                                 ::serde::Deserialize::from_value(inner)\
                                     .map_err(|e| e.context({vname:?}))?)),\n"
                        )),
                        VariantKind::Tuple(n) => panic!(
                            "serde stand-in derive: {n}-field tuple variant \
                             `{name}::{vname}` is not supported"
                        ),
                    }
                })
                .collect();
            let object_arm = if tagged_arms.is_empty() {
                String::new()
            } else {
                format!(
                    "::serde::Value::Object(map) if map.len() == 1 => {{\n\
                         let (tag, inner) = \
                             map.iter().next().expect(\"length checked\");\n\
                         match tag.as_str() {{\n\
                             {tagged_arms}\
                             other => ::core::result::Result::Err(\
                                 ::serde::DeError::new(format!(\
                                     \"unknown variant {{other}} for {name}\"))),\n\
                         }}\n\
                     }}\n"
                )
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(value: &::serde::Value) \
                         -> ::core::result::Result<Self, ::serde::DeError> {{\n\
                         match value {{\n\
                             ::serde::Value::String(s) => match s.as_str() {{\n\
                                 {unit_arms}\
                                 other => ::core::result::Result::Err(::serde::DeError::new(\
                                     format!(\"unknown variant {{other}} for {name}\"))),\n\
                             }},\n\
                             {object_arm}\
                             other => ::core::result::Result::Err(::serde::DeError::new(\
                                 format!(\"expected variant of {name}, got {{}}\", \
                                         other.kind()))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    }
}
