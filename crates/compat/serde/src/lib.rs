//! Offline, in-workspace stand-in for `serde`.
//!
//! The build environment has no crates.io access, so this crate provides
//! the thin slice of serde the workspace uses: [`Serialize`] /
//! [`Deserialize`] traits with `#[derive(..)]` support (via the sibling
//! `serde_derive` stand-in), modelled over a JSON-like [`Value`] tree
//! instead of serde's visitor machinery. `serde_json` builds its text
//! format on the same [`Value`].
//!
//! The public trait names and import paths match upstream
//! (`use serde::{Serialize, Deserialize};`,
//! `use serde::de::DeserializeOwned;`), so swapping the real crates back
//! in later only requires restoring the registry dependencies.

#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

mod value;

pub use value::{Number, Value};

/// A deserialization/validation error with a context trail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    message: String,
}

impl DeError {
    /// Creates an error from a message.
    pub fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }

    /// Wraps the error with a `where` context (e.g. a field path).
    #[must_use]
    pub fn context(self, location: &str) -> Self {
        Self {
            message: format!("{location}: {}", self.message),
        }
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for DeError {}

/// Serialization into the [`Value`] data model.
pub trait Serialize {
    /// Converts `self` into a [`Value`] tree.
    fn to_value(&self) -> Value;
}

/// Deserialization from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a [`Value`] tree.
    ///
    /// # Errors
    ///
    /// Returns [`DeError`] if the value does not match the expected shape.
    fn from_value(value: &Value) -> Result<Self, DeError>;
}

/// Deserialization-related items, mirroring `serde::de`.
pub mod de {
    /// Marker for types deserializable without borrowing from the input.
    /// In this stand-in every [`crate::Deserialize`] qualifies.
    pub trait DeserializeOwned: crate::Deserialize {}

    impl<T: crate::Deserialize> DeserializeOwned for T {}
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        Ok(value.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::new(format!("expected bool, got {}", other.kind()))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::String(s) => Ok(s.clone()),
            other => Err(DeError::new(format!(
                "expected string, got {}",
                other.kind()
            ))),
        }
    }
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::from_u64(*self as u64))
            }
        }

        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let n = value
                    .as_u64()
                    .ok_or_else(|| DeError::new(format!(
                        "expected unsigned integer, got {}",
                        value.kind()
                    )))?;
                <$t>::try_from(n).map_err(|_| {
                    DeError::new(format!("{n} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::from_i64(*self as i64))
            }
        }

        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let n = value
                    .as_i64()
                    .ok_or_else(|| DeError::new(format!(
                        "expected integer, got {}",
                        value.kind()
                    )))?;
                <$t>::try_from(n).map_err(|_| {
                    DeError::new(format!("{n} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

impl_serde_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::from_f64(*self))
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_f64()
            .ok_or_else(|| DeError::new(format!("expected number, got {}", value.kind())))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        // f32 -> f64 is exact; the shortest-roundtrip printer preserves
        // enough digits that casting back recovers the original bits.
        Value::Number(Number::from_f64(f64::from(*self)))
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        Ok(f64::from_value(value)? as f32)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Array(items) => items
                .iter()
                .enumerate()
                .map(|(i, v)| T::from_value(v).map_err(|e| e.context(&format!("[{i}]"))))
                .collect(),
            other => Err(DeError::new(format!("expected array, got {}", other.kind()))),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Object(map) => map
                .iter()
                .map(|(k, v)| {
                    V::from_value(v)
                        .map(|v| (k.clone(), v))
                        .map_err(|e| e.context(&format!(".{k}")))
                })
                .collect(),
            other => Err(DeError::new(format!(
                "expected object, got {}",
                other.kind()
            ))),
        }
    }
}

impl<V: Serialize, S> Serialize for std::collections::HashMap<String, V, S> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize, S: std::hash::BuildHasher + Default> Deserialize
    for std::collections::HashMap<String, V, S>
{
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Object(map) => map
                .iter()
                .map(|(k, v)| {
                    V::from_value(v)
                        .map(|v| (k.clone(), v))
                        .map_err(|e| e.context(&format!(".{k}")))
                })
                .collect(),
            other => Err(DeError::new(format!(
                "expected object, got {}",
                other.kind()
            ))),
        }
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+) of $len:expr;)*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }

        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                match value {
                    Value::Array(items) if items.len() == $len => Ok((
                        $($name::from_value(&items[$idx])
                            .map_err(|e| e.context(concat!("tuple.", stringify!($idx))))?,)+
                    )),
                    other => Err(DeError::new(format!(
                        "expected {}-element array, got {}",
                        $len,
                        other.kind()
                    ))),
                }
            }
        }
    )*};
}

impl_serde_tuple! {
    (A: 0) of 1;
    (A: 0, B: 1) of 2;
    (A: 0, B: 1, C: 2) of 3;
    (A: 0, B: 1, C: 2, D: 3) of 4;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-42i64).to_value()).unwrap(), -42);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        assert_eq!(bool::from_value(&true.to_value()).unwrap(), true);
    }

    #[test]
    fn collections_roundtrip() {
        let v = vec![vec![1.0f32, 2.0], vec![3.0]];
        let back: Vec<Vec<f32>> = Deserialize::from_value(&v.to_value()).unwrap();
        assert_eq!(back, v);

        let mut m = BTreeMap::new();
        m.insert("a".to_string(), "x".to_string());
        let back: BTreeMap<String, String> = Deserialize::from_value(&m.to_value()).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn option_and_tuple_roundtrip() {
        let some: Option<u32> = Some(7);
        let none: Option<u32> = None;
        assert_eq!(Option::<u32>::from_value(&some.to_value()).unwrap(), some);
        assert_eq!(Option::<u32>::from_value(&none.to_value()).unwrap(), none);
        let t = ("k".to_string(), 2.5f64);
        let back: (String, f64) = Deserialize::from_value(&t.to_value()).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn type_mismatch_is_reported() {
        let err = u64::from_value(&Value::String("x".into())).unwrap_err();
        assert!(err.to_string().contains("expected unsigned integer"));
    }
}
