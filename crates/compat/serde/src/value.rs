//! The JSON-like data model shared by the `serde` and `serde_json`
//! stand-ins.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON number: integer kinds are preserved so that integral values
/// print without a fractional part and hash/compare predictably.
#[derive(Debug, Clone, Copy)]
pub enum Number {
    /// A non-negative integer.
    PosInt(u64),
    /// A negative integer.
    NegInt(i64),
    /// A (finite) floating-point number.
    Float(f64),
}

impl Number {
    /// A number from a `u64`.
    pub fn from_u64(n: u64) -> Self {
        Number::PosInt(n)
    }

    /// A number from an `i64`.
    pub fn from_i64(n: i64) -> Self {
        if n >= 0 {
            Number::PosInt(n as u64)
        } else {
            Number::NegInt(n)
        }
    }

    /// A number from an `f64`.
    pub fn from_f64(n: f64) -> Self {
        Number::Float(n)
    }

    /// The value as `f64` (lossy for very large integers).
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::PosInt(n) => n as f64,
            Number::NegInt(n) => n as f64,
            Number::Float(n) => n,
        }
    }

    /// The value as `u64` if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::PosInt(n) => Some(n),
            Number::NegInt(_) => None,
            Number::Float(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => {
                Some(f as u64)
            }
            Number::Float(_) => None,
        }
    }

    /// The value as `i64` if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::PosInt(n) => i64::try_from(n).ok(),
            Number::NegInt(n) => Some(n),
            Number::Float(f)
                if f.fract() == 0.0 && f >= i64::MIN as f64 && f <= i64::MAX as f64 =>
            {
                Some(f as i64)
            }
            Number::Float(_) => None,
        }
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Number::PosInt(a), Number::PosInt(b)) => a == b,
            (Number::NegInt(a), Number::NegInt(b)) => a == b,
            // Cross-kind comparisons go through f64 so that an integral
            // float equals its integer twin (serde_json does the same for
            // `Value == i64` comparisons users actually write).
            _ => self.as_f64() == other.as_f64(),
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Number::PosInt(n) => write!(f, "{n}"),
            Number::NegInt(n) => write!(f, "{n}"),
            // `{:?}` prints the shortest decimal that round-trips.
            Number::Float(x) if x.is_finite() => write!(f, "{x:?}"),
            // JSON has no NaN/Infinity; serde_json emits null too.
            Number::Float(_) => write!(f, "null"),
        }
    }
}

/// A JSON value tree.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// JSON `null`.
    #[default]
    Null,
    /// A boolean.
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object with sorted keys.
    Object(BTreeMap<String, Value>),
}

static NULL: Value = Value::Null;

impl Value {
    /// A short name of the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// Returns `true` for `Value::Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The boolean payload, if any.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The numeric payload as `f64`, if any.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The numeric payload as `u64`, if integral and non-negative.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The numeric payload as `i64`, if integral.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// The string payload, if any.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The array payload, if any.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The object payload, if any.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Looks up a key in an object value (`None` for other kinds).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|o| o.get(key))
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, index: usize) -> &Value {
        self.as_array().and_then(|a| a.get(index)).unwrap_or(&NULL)
    }
}

macro_rules! impl_value_eq_int {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                self.as_i64().map_or(false, |n| {
                    i64::try_from(*other).map_or(false, |o| n == o)
                }) || self.as_u64().map_or(false, |n| {
                    u64::try_from(*other).map_or(false, |o| n == o)
                })
            }
        }

        impl PartialEq<Value> for $t {
            fn eq(&self, other: &Value) -> bool {
                other == self
            }
        }
    )*};
}

impl_value_eq_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_by_key_and_position() {
        let mut obj = BTreeMap::new();
        obj.insert("xs".to_string(), Value::Array(vec![Value::Bool(true)]));
        let v = Value::Object(obj);
        assert_eq!(v["xs"][0], true);
        assert!(v["missing"].is_null());
        assert!(v["xs"][9].is_null());
    }

    #[test]
    fn number_equality_crosses_kinds() {
        assert_eq!(Value::Number(Number::from_u64(7)), 7);
        assert_eq!(Value::Number(Number::from_i64(-7)), -7i64);
        assert_eq!(Value::Number(Number::from_f64(7.0)), 7);
        assert_ne!(Value::Number(Number::from_f64(7.5)), 7);
        assert_eq!(Value::String("a".into()), "a");
    }
}
