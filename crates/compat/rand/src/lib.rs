//! Offline, in-workspace stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small slice of the `rand 0.8` API it actually uses:
//! [`RngCore`], the [`Rng`] extension trait (`gen`, `gen_range`,
//! `gen_bool`), [`SeedableRng`] (including `seed_from_u64` via
//! SplitMix64), [`rngs::StdRng`] and [`seq::SliceRandom`].
//!
//! The generators are real ChaCha stream ciphers, so statistical quality
//! matches the upstream crate; only the exact output streams differ,
//! which nothing in this workspace depends on.

#![forbid(unsafe_code)]

use core::ops::{Range, RangeInclusive};

/// The core of a random number generator: a source of uniform bits.
pub trait RngCore {
    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;

    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64 {
        let hi = self.next_u32() as u64;
        let lo = self.next_u32() as u64;
        (hi << 32) | lo
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(4) {
            let bytes = self.next_u32().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from their "standard" domain
/// (`[0, 1)` for floats, the full range for integers).
pub trait StandardSample: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

/// Types with a uniform sampler over a `[low, high)` / `[low, high]`
/// interval.
pub trait SampleUniform: Sized {
    /// Uniform draw from `[low, high)` (`inclusive` widens to `[low, high]`).
    fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self, inclusive: bool)
        -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                inclusive: bool,
            ) -> Self {
                assert!(
                    if inclusive { low <= high } else { low < high },
                    "gen_range: empty range"
                );
                let span = (high as i128 - low as i128 + if inclusive { 1 } else { 0 }) as u128;
                if span == 0 {
                    // Inclusive full-width range: every value is valid.
                    return rng.next_u64() as $t;
                }
                // Lemire-style scaling; bias is < 2^-64, irrelevant here.
                let scaled = ((rng.next_u64() as u128).wrapping_mul(span)) >> 64;
                (low as i128 + scaled as i128) as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                inclusive: bool,
            ) -> Self {
                assert!(
                    if inclusive { low <= high } else { low < high },
                    "gen_range: empty range"
                );
                let u: $t = StandardSample::sample_standard(rng);
                let v = low + (high - low) * u;
                // Guard against rounding up to `high` in the exclusive case.
                if !inclusive && v >= high {
                    low
                } else {
                    v
                }
            }
        }
    )*};
}

impl_uniform_float!(f32, f64);

/// Ranges that can be sampled: `low..high` and `low..=high`.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = self.into_inner();
        T::sample_uniform(rng, start, end, true)
    }
}

/// User-facing extension methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of `T` from its standard distribution.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministically seedable generators.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Builds the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it with SplitMix64
    /// (the same construction upstream `rand` uses).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Internal ChaCha block generator shared with the `rand_chacha`
/// stand-in. Not part of the public API surface mirrored from upstream.
#[doc(hidden)]
pub mod chacha_impl {
    /// A ChaCha stream generator with `R` double-rounds.
    #[derive(Debug, Clone)]
    pub struct ChaChaCore<const R: usize> {
        key: [u32; 8],
        counter: u64,
        buffer: [u32; 16],
        index: usize,
    }

    impl<const R: usize> ChaChaCore<R> {
        /// Creates the generator from a 32-byte key.
        pub fn from_seed_bytes(seed: [u8; 32]) -> Self {
            let mut key = [0u32; 8];
            for (i, chunk) in seed.chunks_exact(4).enumerate() {
                key[i] = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
            }
            Self {
                key,
                counter: 0,
                buffer: [0; 16],
                index: 16,
            }
        }

        #[inline]
        fn quarter(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
            state[a] = state[a].wrapping_add(state[b]);
            state[d] = (state[d] ^ state[a]).rotate_left(16);
            state[c] = state[c].wrapping_add(state[d]);
            state[b] = (state[b] ^ state[c]).rotate_left(12);
            state[a] = state[a].wrapping_add(state[b]);
            state[d] = (state[d] ^ state[a]).rotate_left(8);
            state[c] = state[c].wrapping_add(state[d]);
            state[b] = (state[b] ^ state[c]).rotate_left(7);
        }

        fn refill(&mut self) {
            let mut state = [0u32; 16];
            state[0] = 0x6170_7865;
            state[1] = 0x3320_646e;
            state[2] = 0x7962_2d32;
            state[3] = 0x6b20_6574;
            state[4..12].copy_from_slice(&self.key);
            state[12] = self.counter as u32;
            state[13] = (self.counter >> 32) as u32;
            state[14] = 0;
            state[15] = 0;
            let initial = state;
            for _ in 0..R {
                // Column round.
                Self::quarter(&mut state, 0, 4, 8, 12);
                Self::quarter(&mut state, 1, 5, 9, 13);
                Self::quarter(&mut state, 2, 6, 10, 14);
                Self::quarter(&mut state, 3, 7, 11, 15);
                // Diagonal round.
                Self::quarter(&mut state, 0, 5, 10, 15);
                Self::quarter(&mut state, 1, 6, 11, 12);
                Self::quarter(&mut state, 2, 7, 8, 13);
                Self::quarter(&mut state, 3, 4, 9, 14);
            }
            for (s, i) in state.iter_mut().zip(initial) {
                *s = s.wrapping_add(i);
            }
            self.buffer = state;
            self.index = 0;
            self.counter = self.counter.wrapping_add(1);
        }

        /// Returns the next 32 bits of keystream.
        pub fn next_word(&mut self) -> u32 {
            if self.index >= 16 {
                self.refill();
            }
            let word = self.buffer[self.index];
            self.index += 1;
            word
        }
    }
}

/// Concrete generators.
pub mod rngs {
    use super::chacha_impl::ChaChaCore;
    use super::{RngCore, SeedableRng};

    /// The workspace's "standard" deterministic generator (ChaCha with 6
    /// double-rounds, matching upstream `StdRng`'s ChaCha12 strength).
    #[derive(Debug, Clone)]
    pub struct StdRng(ChaChaCore<6>);

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            self.0.next_word()
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            Self(ChaChaCore::from_seed_bytes(seed))
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Extension methods on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn unit_floats_are_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = rng.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let i = rng.gen_range(3usize..17);
            assert!((3..17).contains(&i));
            let f = rng.gen_range(-2.5..7.5f64);
            assert!((-2.5..7.5).contains(&f));
            let k = rng.gen_range(0u64..=4);
            assert!(k <= 4);
            let s = rng.gen_range(-1.0..=1.0f32);
            assert!((-1.0..=1.0).contains(&s));
        }
    }

    #[test]
    fn mean_of_unit_uniform_is_centered() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted);
    }
}
