//! A provenance-tracked document store — the workspace's MongoDB
//! substitute.
//!
//! "To handle the big amounts of data (measured samples, simulated
//! samples, trained networks, ...) a MongoDB database is used to store
//! the data of all tools in the presented toolflow. In addition to the
//! actual data, all objects stored in the database also store metadata
//! that make it possible to trace the basis on which the respective data
//! was generated" (paper §III.A.1).
//!
//! [`Store`] keeps JSON documents in named collections. Every document
//! carries [`Metadata`]: the tool that created it, free-form parameters,
//! a logical timestamp, and *parent* document ids — enough to answer
//! "which measurements have been used to train the simulators and which
//! data has been used to train a specific network". Stores are in-memory
//! by default and can be persisted to / loaded from a directory of JSON
//! files.
//!
//! # Durability
//!
//! Persistence is crash-safe: every document is written to a temporary
//! file and atomically renamed into place, wrapped in an envelope
//! carrying a CRC-32 checksum of the document JSON
//! (`{"crc32": N, "doc": {...}}`). On load, documents whose checksum
//! does not verify — torn writes, bit rot — are moved into a
//! `quarantine/` subdirectory and reported via [`LoadReport`] instead of
//! aborting the load. Files written before checksumming existed (a bare
//! document object) are still accepted.
//!
//! # Example
//!
//! ```
//! use datastore::{Metadata, Store};
//!
//! # fn main() -> Result<(), datastore::StoreError> {
//! let store = Store::in_memory();
//! let measurement = store.insert(
//!     "measurements",
//!     Metadata::created_by("mms-prototype"),
//!     &serde_json::json!({"mixture": "N2/O2"}),
//! )?;
//! let simulator = store.insert(
//!     "simulators",
//!     Metadata::created_by("tool-2").with_parent(measurement),
//!     &serde_json::json!({"peak_width": 0.45}),
//! )?;
//! let lineage = store.lineage(simulator)?;
//! assert_eq!(lineage, vec![simulator, measurement]);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fmt;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::RwLock;
use serde::de::DeserializeOwned;
use serde::{Deserialize, Serialize};

/// A document identifier, unique within one [`Store`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct DocumentId(u64);

impl fmt::Display for DocumentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "doc-{}", self.0)
    }
}

/// Error type for store operations.
#[derive(Debug)]
#[non_exhaustive]
pub enum StoreError {
    /// The requested document does not exist.
    NotFound(DocumentId),
    /// The requested collection does not exist.
    UnknownCollection(String),
    /// A payload failed to (de)serialize.
    Serde(String),
    /// Filesystem persistence failed.
    Io(std::io::Error),
    /// A referenced parent id does not exist in the store.
    DanglingParent(DocumentId),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::NotFound(id) => write!(f, "document {id} not found"),
            StoreError::UnknownCollection(name) => write!(f, "unknown collection {name}"),
            StoreError::Serde(msg) => write!(f, "serialization error: {msg}"),
            StoreError::Io(err) => write!(f, "io error: {err}"),
            StoreError::DanglingParent(id) => write!(f, "parent {id} does not exist"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(err) => Some(err),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(err: std::io::Error) -> Self {
        StoreError::Io(err)
    }
}

/// Provenance metadata attached to every document.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Metadata {
    /// The tool that created this document (e.g. `"tool-2"`).
    pub created_by: String,
    /// Free-form key/value parameters (e.g. `samples_per_mixture=25`).
    pub params: BTreeMap<String, String>,
    /// Logical creation time (monotonic per store).
    pub sequence: u64,
    /// Documents this one was derived from.
    pub parents: Vec<DocumentId>,
}

impl Metadata {
    /// Metadata naming the creating tool.
    pub fn created_by(tool: impl Into<String>) -> Self {
        Self {
            created_by: tool.into(),
            params: BTreeMap::new(),
            sequence: 0,
            parents: Vec::new(),
        }
    }

    /// Adds a parameter (builder style).
    #[must_use]
    pub fn with_param(mut self, key: impl Into<String>, value: impl ToString) -> Self {
        self.params.insert(key.into(), value.to_string());
        self
    }

    /// Adds a parent document (builder style).
    #[must_use]
    pub fn with_parent(mut self, parent: DocumentId) -> Self {
        self.parents.push(parent);
        self
    }

    /// Adds several parents (builder style).
    #[must_use]
    pub fn with_parents(mut self, parents: impl IntoIterator<Item = DocumentId>) -> Self {
        self.parents.extend(parents);
        self
    }
}

/// A stored document: metadata plus a JSON payload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Document {
    /// The document id.
    pub id: DocumentId,
    /// The collection the document lives in.
    pub collection: String,
    /// Provenance metadata.
    pub metadata: Metadata,
    /// The JSON payload.
    pub payload: serde_json::Value,
}

/// The document store. Cheap to share: all methods take `&self` and the
/// interior is guarded by an `RwLock`.
#[derive(Debug)]
pub struct Store {
    documents: RwLock<BTreeMap<DocumentId, Document>>,
    next_id: AtomicU64,
}

impl Store {
    /// An empty in-memory store.
    pub fn in_memory() -> Self {
        Self {
            documents: RwLock::new(BTreeMap::new()),
            next_id: AtomicU64::new(1),
        }
    }

    /// Inserts a serializable payload into `collection`, assigning the id
    /// and logical sequence number.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Serde`] if the payload fails to serialize,
    /// or [`StoreError::DanglingParent`] if a parent id is unknown.
    pub fn insert<T: Serialize>(
        &self,
        collection: &str,
        metadata: Metadata,
        payload: &T,
    ) -> Result<DocumentId, StoreError> {
        let value = serde_json::to_value(payload).map_err(|e| StoreError::Serde(e.to_string()))?;
        let mut documents = self.documents.write();
        for parent in &metadata.parents {
            if !documents.contains_key(parent) {
                return Err(StoreError::DanglingParent(*parent));
            }
        }
        let id = DocumentId(self.next_id.fetch_add(1, Ordering::SeqCst));
        let mut metadata = metadata;
        metadata.sequence = id.0;
        documents.insert(
            id,
            Document {
                id,
                collection: collection.to_string(),
                metadata,
                payload: value,
            },
        );
        obs::counter_add("store.inserts", 1);
        Ok(id)
    }

    /// Fetches a document by id.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::NotFound`] if the id is unknown.
    pub fn get(&self, id: DocumentId) -> Result<Document, StoreError> {
        self.documents
            .read()
            .get(&id)
            .cloned()
            .ok_or(StoreError::NotFound(id))
    }

    /// Deserializes a document's payload into `T`.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::NotFound`] or [`StoreError::Serde`].
    pub fn get_payload<T: DeserializeOwned>(&self, id: DocumentId) -> Result<T, StoreError> {
        let doc = self.get(id)?;
        serde_json::from_value(doc.payload).map_err(|e| StoreError::Serde(e.to_string()))
    }

    /// All documents of a collection, in insertion order.
    pub fn collection(&self, name: &str) -> Vec<Document> {
        self.documents
            .read()
            .values()
            .filter(|d| d.collection == name)
            .cloned()
            .collect()
    }

    /// Collection names present in the store.
    pub fn collections(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .documents
            .read()
            .values()
            .map(|d| d.collection.clone())
            .collect();
        names.sort();
        names.dedup();
        names
    }

    /// Documents of a collection whose metadata parameter `key` equals
    /// `value`.
    pub fn query(&self, collection: &str, key: &str, value: &str) -> Vec<Document> {
        self.collection(collection)
            .into_iter()
            .filter(|d| d.metadata.params.get(key).map(String::as_str) == Some(value))
            .collect()
    }

    /// Distinct values of metadata parameter `key` across a collection,
    /// sorted. The model registry uses this to enumerate deployed model
    /// names without fetching payloads.
    pub fn param_values(&self, collection: &str, key: &str) -> Vec<String> {
        let mut values: Vec<String> = self
            .documents
            .read()
            .values()
            .filter(|d| d.collection == collection)
            .filter_map(|d| d.metadata.params.get(key).cloned())
            .collect();
        values.sort();
        values.dedup();
        values
    }

    /// The newest (highest logical sequence) document of a collection
    /// whose metadata parameter `key` equals `value`, or `None` if no
    /// document matches.
    pub fn latest(&self, collection: &str, key: &str, value: &str) -> Option<Document> {
        self.documents
            .read()
            .values()
            .filter(|d| d.collection == collection)
            .filter(|d| d.metadata.params.get(key).map(String::as_str) == Some(value))
            .max_by_key(|d| d.metadata.sequence)
            .cloned()
    }

    /// Total number of documents.
    pub fn len(&self) -> usize {
        self.documents.read().len()
    }

    /// Returns `true` if the store holds no documents.
    pub fn is_empty(&self) -> bool {
        self.documents.read().is_empty()
    }

    /// The full provenance chain of a document: itself, then its parents
    /// in breadth-first order (each id once).
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::NotFound`] if the starting id is unknown.
    pub fn lineage(&self, id: DocumentId) -> Result<Vec<DocumentId>, StoreError> {
        let documents = self.documents.read();
        if !documents.contains_key(&id) {
            return Err(StoreError::NotFound(id));
        }
        let mut seen = vec![id];
        let mut queue = std::collections::VecDeque::from([id]);
        while let Some(current) = queue.pop_front() {
            if let Some(doc) = documents.get(&current) {
                for &parent in &doc.metadata.parents {
                    if !seen.contains(&parent) {
                        seen.push(parent);
                        queue.push_back(parent);
                    }
                }
            }
        }
        Ok(seen)
    }

    /// Documents that list `id` as a parent (direct descendants).
    pub fn children(&self, id: DocumentId) -> Vec<DocumentId> {
        self.documents
            .read()
            .values()
            .filter(|d| d.metadata.parents.contains(&id))
            .map(|d| d.id)
            .collect()
    }

    /// Persists the store as one checksummed JSON file per document
    /// under `dir` (created if missing).
    ///
    /// Each file holds an envelope `{"crc32": N, "doc": {...}}` where `N`
    /// is the CRC-32 (IEEE) of the canonical document JSON, and is
    /// written via a temporary file + atomic rename so a crash mid-save
    /// never leaves a half-written document at its final path.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] or [`StoreError::Serde`].
    pub fn save_to_dir(&self, dir: &Path) -> Result<(), StoreError> {
        self.save_internal(dir, None)
    }

    /// [`Store::save_to_dir`] with torn-write fault injection: documents
    /// scheduled by `plan` are written *truncated, directly to their
    /// final path* — simulating a crash between write and rename on a
    /// non-atomic implementation. Testing aid for recovery drills.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] or [`StoreError::Serde`].
    pub fn save_to_dir_with_faults(
        &self,
        dir: &Path,
        plan: &faultsim::FaultPlan,
    ) -> Result<(), StoreError> {
        self.save_internal(dir, Some(plan))
    }

    fn save_internal(
        &self,
        dir: &Path,
        plan: Option<&faultsim::FaultPlan>,
    ) -> Result<(), StoreError> {
        let _span = obs::span!("store.save");
        std::fs::create_dir_all(dir)?;
        for doc in self.documents.read().values() {
            let doc_json =
                serde_json::to_string(doc).map_err(|e| StoreError::Serde(e.to_string()))?;
            let envelope = format!(
                "{{\"crc32\":{},\"doc\":{}}}",
                crc32(doc_json.as_bytes()),
                doc_json
            );
            let path = dir.join(format!("{}.json", doc.id.0));
            if plan.is_some_and(|p| p.tear_write()) {
                // Torn write: half the envelope lands at the final path.
                let torn = &envelope.as_bytes()[..envelope.len() / 2];
                std::fs::write(&path, torn)?;
            } else {
                let tmp = dir.join(format!("{}.json.tmp", doc.id.0));
                std::fs::write(&tmp, &envelope)?;
                std::fs::rename(&tmp, &path)?;
            }
        }
        Ok(())
    }

    /// Loads a store previously written by [`Store::save_to_dir`],
    /// discarding the corruption report.
    ///
    /// Corrupt documents are quarantined, not fatal — use
    /// [`Store::load_from_dir_report`] to see what was set aside.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] if the directory cannot be read.
    pub fn load_from_dir(dir: &Path) -> Result<Self, StoreError> {
        Ok(Self::load_from_dir_report(dir)?.store)
    }

    /// Loads a store from `dir`, verifying every document's CRC-32.
    ///
    /// Files that fail to parse or whose checksum does not match are
    /// moved to `dir/quarantine/` and listed in the returned
    /// [`LoadReport`]; the remaining documents load normally. Bare
    /// document files from before checksumming (no envelope) are
    /// accepted as-is.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] only if the directory itself cannot be
    /// read or a quarantine move fails — per-document corruption is
    /// reported, not raised.
    pub fn load_from_dir_report(dir: &Path) -> Result<LoadReport, StoreError> {
        let _span = obs::span!("store.load");
        let store = Self::in_memory();
        let mut max_id = 0u64;
        let mut docs = BTreeMap::new();
        let mut quarantined = Vec::new();
        let mut entries: Vec<_> =
            std::fs::read_dir(dir)?.collect::<Result<Vec<_>, _>>()?;
        entries.sort_by_key(|e| e.path());
        for entry in entries {
            let path = entry.path();
            if path.extension().map(|e| e != "json").unwrap_or(true) {
                continue;
            }
            let file = path
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            let json = match std::fs::read_to_string(&path) {
                Ok(json) => json,
                Err(err) => {
                    quarantined.push(quarantine(dir, &path, file, format!("unreadable: {err}"))?);
                    continue;
                }
            };
            match verify_envelope(&json) {
                Ok(doc) => {
                    max_id = max_id.max(doc.id.0);
                    docs.insert(doc.id, doc);
                }
                Err(reason) => {
                    quarantined.push(quarantine(dir, &path, file, reason)?);
                }
            }
        }
        let loaded = docs.len();
        *store.documents.write() = docs;
        store.next_id.store(max_id + 1, Ordering::SeqCst);
        Ok(LoadReport {
            store,
            loaded,
            quarantined,
        })
    }
}

/// Outcome of [`Store::load_from_dir_report`].
#[derive(Debug)]
pub struct LoadReport {
    /// The store holding every document that verified.
    pub store: Store,
    /// Number of documents loaded successfully.
    pub loaded: usize,
    /// Files that failed verification, now under `dir/quarantine/`.
    pub quarantined: Vec<QuarantinedFile>,
}

/// One file set aside by corruption detection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantinedFile {
    /// File name within the store directory.
    pub file: String,
    /// Why verification failed.
    pub reason: String,
}

/// Parses a persisted file: a `{"crc32": N, "doc": {...}}` envelope
/// (checksum verified), or a bare pre-checksum document.
fn verify_envelope(json: &str) -> Result<Document, String> {
    let value: serde_json::Value =
        serde_json::from_str(json).map_err(|e| format!("invalid JSON: {e}"))?;
    let envelope = value
        .as_object()
        .filter(|o| o.contains_key("crc32") && o.contains_key("doc"));
    let Some(obj) = envelope else {
        // Legacy layout: the file is the document itself.
        return serde_json::from_value(value)
            .map_err(|e| format!("not an envelope and not a document: {e}"));
    };
    let stored = obj
        .get("crc32")
        .and_then(serde_json::Value::as_u64)
        .ok_or_else(|| "crc32 field is not an integer".to_string())?;
    let doc_value = obj.get("doc").cloned().unwrap_or(serde_json::Value::Null);
    // Checksums cover the canonical (compact) document JSON; re-serializing
    // the parsed value reproduces it exactly.
    let doc_json =
        serde_json::to_string(&doc_value).map_err(|e| format!("re-serialize failed: {e}"))?;
    let actual = u64::from(crc32(doc_json.as_bytes()));
    if actual != stored {
        return Err(format!("crc32 mismatch: stored {stored}, computed {actual}"));
    }
    serde_json::from_value(doc_value).map_err(|e| format!("checksum ok but not a document: {e}"))
}

/// Moves a corrupt file into `dir/quarantine/`, keeping its name.
fn quarantine(
    dir: &Path,
    path: &Path,
    file: String,
    reason: String,
) -> Result<QuarantinedFile, StoreError> {
    let qdir = dir.join("quarantine");
    std::fs::create_dir_all(&qdir)?;
    std::fs::rename(path, qdir.join(&file))?;
    Ok(QuarantinedFile { file, reason })
}

/// CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`) — the same
/// checksum gzip and PNG use. Bitwise implementation; document files are
/// small enough that a lookup table buys nothing.
fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &byte in bytes {
        crc ^= u32::from(byte);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

impl Default for Store {
    fn default() -> Self {
        Self::in_memory()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload(v: i64) -> serde_json::Value {
        serde_json::json!({ "value": v })
    }

    #[test]
    fn insert_and_get_roundtrip() {
        let store = Store::in_memory();
        let id = store
            .insert("measurements", Metadata::created_by("test"), &payload(7))
            .unwrap();
        let doc = store.get(id).unwrap();
        assert_eq!(doc.collection, "measurements");
        assert_eq!(doc.payload["value"], 7);
        let typed: serde_json::Value = store.get_payload(id).unwrap();
        assert_eq!(typed["value"], 7);
    }

    #[test]
    fn missing_document_is_not_found() {
        let store = Store::in_memory();
        assert!(matches!(
            store.get(DocumentId(99)),
            Err(StoreError::NotFound(_))
        ));
    }

    #[test]
    fn dangling_parent_is_rejected() {
        let store = Store::in_memory();
        let meta = Metadata::created_by("x").with_parent(DocumentId(42));
        assert!(matches!(
            store.insert("c", meta, &payload(1)),
            Err(StoreError::DanglingParent(_))
        ));
    }

    #[test]
    fn lineage_walks_parents_transitively() {
        let store = Store::in_memory();
        let a = store
            .insert("measurements", Metadata::created_by("mms"), &payload(1))
            .unwrap();
        let b = store
            .insert(
                "simulators",
                Metadata::created_by("tool2").with_parent(a),
                &payload(2),
            )
            .unwrap();
        let c = store
            .insert(
                "datasets",
                Metadata::created_by("tool3").with_parent(b),
                &payload(3),
            )
            .unwrap();
        let d = store
            .insert(
                "networks",
                Metadata::created_by("tool4").with_parents([c, a]),
                &payload(4),
            )
            .unwrap();
        let lineage = store.lineage(d).unwrap();
        assert_eq!(lineage[0], d);
        assert!(lineage.contains(&a));
        assert!(lineage.contains(&b));
        assert!(lineage.contains(&c));
        assert_eq!(lineage.len(), 4);
    }

    #[test]
    fn children_finds_descendants() {
        let store = Store::in_memory();
        let a = store
            .insert("m", Metadata::created_by("x"), &payload(1))
            .unwrap();
        let b = store
            .insert("s", Metadata::created_by("y").with_parent(a), &payload(2))
            .unwrap();
        assert_eq!(store.children(a), vec![b]);
        assert!(store.children(b).is_empty());
    }

    #[test]
    fn query_filters_by_param() {
        let store = Store::in_memory();
        store
            .insert(
                "networks",
                Metadata::created_by("tool4").with_param("activation", "selu"),
                &payload(1),
            )
            .unwrap();
        store
            .insert(
                "networks",
                Metadata::created_by("tool4").with_param("activation", "relu"),
                &payload(2),
            )
            .unwrap();
        let selu = store.query("networks", "activation", "selu");
        assert_eq!(selu.len(), 1);
        assert_eq!(selu[0].payload["value"], 1);
    }

    #[test]
    fn param_values_lists_distinct_sorted() {
        let store = Store::in_memory();
        for name in ["ms-b", "ms-a", "ms-b"] {
            store
                .insert(
                    "models",
                    Metadata::created_by("deploy").with_param("model", name),
                    &payload(0),
                )
                .unwrap();
        }
        store
            .insert("other", Metadata::created_by("x").with_param("model", "zz"), &payload(0))
            .unwrap();
        assert_eq!(
            store.param_values("models", "model"),
            vec!["ms-a".to_string(), "ms-b".to_string()]
        );
        assert!(store.param_values("models", "missing").is_empty());
    }

    #[test]
    fn latest_returns_highest_sequence_match() {
        let store = Store::in_memory();
        let first = store
            .insert(
                "models",
                Metadata::created_by("deploy").with_param("model", "ms"),
                &payload(1),
            )
            .unwrap();
        let second = store
            .insert(
                "models",
                Metadata::created_by("deploy").with_param("model", "ms"),
                &payload(2),
            )
            .unwrap();
        assert!(second > first);
        let doc = store.latest("models", "model", "ms").unwrap();
        assert_eq!(doc.id, second);
        assert!(store.latest("models", "model", "nope").is_none());
    }

    #[test]
    fn collections_are_listed() {
        let store = Store::in_memory();
        store
            .insert("b", Metadata::created_by("x"), &payload(1))
            .unwrap();
        store
            .insert("a", Metadata::created_by("x"), &payload(2))
            .unwrap();
        assert_eq!(store.collections(), vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn persistence_roundtrip() {
        let dir = std::env::temp_dir().join(format!("spectroai-store-{}", std::process::id()));
        let store = Store::in_memory();
        let a = store
            .insert("m", Metadata::created_by("x").with_param("k", "v"), &payload(1))
            .unwrap();
        let b = store
            .insert("s", Metadata::created_by("y").with_parent(a), &payload(2))
            .unwrap();
        store.save_to_dir(&dir).unwrap();
        let loaded = Store::load_from_dir(&dir).unwrap();
        assert_eq!(loaded.len(), 2);
        assert_eq!(loaded.get(a).unwrap().payload["value"], 1);
        assert_eq!(loaded.lineage(b).unwrap(), vec![b, a]);
        // New inserts do not collide with loaded ids.
        let c = loaded
            .insert("m", Metadata::created_by("z"), &payload(3))
            .unwrap();
        assert!(c > b);
        std::fs::remove_dir_all(&dir).ok();
    }

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("spectroai-{tag}-{}", std::process::id()))
    }

    fn seeded_store(n: i64) -> Store {
        let store = Store::in_memory();
        for v in 0..n {
            store
                .insert("m", Metadata::created_by("x"), &payload(v))
                .unwrap();
        }
        store
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard check value for the IEEE polynomial.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn saved_files_are_checksummed_envelopes() {
        let dir = temp_dir("envelope");
        seeded_store(1).save_to_dir(&dir).unwrap();
        let json = std::fs::read_to_string(dir.join("1.json")).unwrap();
        assert!(json.starts_with("{\"crc32\":"));
        assert!(json.contains("\"doc\":"));
        // No stray temp files left behind.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter(|e| {
                e.as_ref().unwrap().path().extension().map(|x| x == "tmp") == Some(true)
            })
            .collect();
        assert!(leftovers.is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupted_file_is_quarantined_not_fatal() {
        let dir = temp_dir("corrupt");
        seeded_store(3).save_to_dir(&dir).unwrap();
        // Flip payload bytes inside document 2's envelope.
        let path = dir.join("2.json");
        let tampered = std::fs::read_to_string(&path).unwrap().replace(
            "\"value\":1",
            "\"value\":9",
        );
        std::fs::write(&path, tampered).unwrap();

        let report = Store::load_from_dir_report(&dir).unwrap();
        assert_eq!(report.loaded, 2);
        assert_eq!(report.quarantined.len(), 1);
        assert_eq!(report.quarantined[0].file, "2.json");
        assert!(report.quarantined[0].reason.contains("crc32 mismatch"));
        // The bad file moved into quarantine/ and out of the data dir.
        assert!(dir.join("quarantine").join("2.json").exists());
        assert!(!path.exists());
        assert!(matches!(
            report.store.get(DocumentId(2)),
            Err(StoreError::NotFound(_))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_write_is_detected_via_checksum() {
        let dir = temp_dir("torn");
        let plan = faultsim::FaultPlan::new().with_torn_write(1);
        seeded_store(3).save_to_dir_with_faults(&dir, &plan).unwrap();
        assert_eq!(plan.events().len(), 1);

        let report = Store::load_from_dir_report(&dir).unwrap();
        assert_eq!(report.loaded, 2);
        assert_eq!(report.quarantined.len(), 1);
        assert!(report.quarantined[0].reason.contains("invalid JSON"));
        // Reloading after quarantine is clean.
        let again = Store::load_from_dir_report(&dir).unwrap();
        assert_eq!(again.loaded, 2);
        assert!(again.quarantined.is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn legacy_bare_document_files_still_load() {
        let dir = temp_dir("legacy");
        std::fs::create_dir_all(&dir).unwrap();
        let store = seeded_store(1);
        let doc = store.get(DocumentId(1)).unwrap();
        let bare = serde_json::to_string(&doc).unwrap();
        std::fs::write(dir.join("1.json"), bare).unwrap();

        let report = Store::load_from_dir_report(&dir).unwrap();
        assert_eq!(report.loaded, 1);
        assert!(report.quarantined.is_empty());
        assert_eq!(report.store.get(DocumentId(1)).unwrap(), doc);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sequence_is_monotonic() {
        let store = Store::in_memory();
        let a = store
            .insert("m", Metadata::created_by("x"), &payload(1))
            .unwrap();
        let b = store
            .insert("m", Metadata::created_by("x"), &payload(2))
            .unwrap();
        assert!(store.get(b).unwrap().metadata.sequence > store.get(a).unwrap().metadata.sequence);
    }
}
