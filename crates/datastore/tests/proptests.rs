//! Property-based tests for the provenance store.

use datastore::{Metadata, Store};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn linear_chains_have_full_lineage(depth in 1usize..20) {
        let store = Store::in_memory();
        let mut ids = Vec::new();
        let mut parent = None;
        for i in 0..depth {
            let mut meta = Metadata::created_by(format!("tool-{i}"));
            if let Some(p) = parent {
                meta = meta.with_parent(p);
            }
            let id = store
                .insert("chain", meta, &serde_json::json!({ "step": i }))
                .expect("insert");
            ids.push(id);
            parent = Some(id);
        }
        let lineage = store.lineage(*ids.last().expect("non-empty")).expect("lineage");
        prop_assert_eq!(lineage.len(), depth);
        for id in &ids {
            prop_assert!(lineage.contains(id));
        }
    }

    #[test]
    fn ids_are_unique_and_monotonic(count in 1usize..50) {
        let store = Store::in_memory();
        let mut previous = None;
        for i in 0..count {
            let id = store
                .insert("c", Metadata::created_by("t"), &serde_json::json!(i))
                .expect("insert");
            if let Some(prev) = previous {
                prop_assert!(id > prev);
            }
            previous = Some(id);
        }
        prop_assert_eq!(store.len(), count);
    }

    #[test]
    fn query_finds_exactly_matching_params(n_match in 0usize..10, n_other in 0usize..10) {
        let store = Store::in_memory();
        for i in 0..n_match {
            store
                .insert(
                    "nets",
                    Metadata::created_by("t").with_param("act", "selu"),
                    &serde_json::json!(i),
                )
                .expect("insert");
        }
        for i in 0..n_other {
            store
                .insert(
                    "nets",
                    Metadata::created_by("t").with_param("act", "relu"),
                    &serde_json::json!(i),
                )
                .expect("insert");
        }
        prop_assert_eq!(store.query("nets", "act", "selu").len(), n_match);
        prop_assert_eq!(store.query("nets", "act", "relu").len(), n_other);
        prop_assert_eq!(store.query("nets", "act", "tanh").len(), 0);
    }

    #[test]
    fn fan_in_lineage_deduplicates(width in 1usize..8) {
        // Many parents feeding one child: lineage lists each id once.
        let store = Store::in_memory();
        let parents: Vec<_> = (0..width)
            .map(|i| {
                store
                    .insert("p", Metadata::created_by("t"), &serde_json::json!(i))
                    .expect("insert")
            })
            .collect();
        let child = store
            .insert(
                "c",
                Metadata::created_by("t").with_parents(parents.clone()),
                &serde_json::json!("child"),
            )
            .expect("insert");
        let lineage = store.lineage(child).expect("lineage");
        prop_assert_eq!(lineage.len(), width + 1);
        let mut sorted = lineage.clone();
        sorted.sort();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), lineage.len());
    }
}
