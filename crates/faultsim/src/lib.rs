//! Deterministic fault injection for robustness testing.
//!
//! A [`FaultPlan`] schedules faults at chosen points — NaN training
//! batches, pipeline-stage failures, torn datastore writes — and the
//! subsystems under test consult it through cheap hooks
//! ([`FaultPlan::poison_batch`], [`FaultPlan::fail_stage`],
//! [`FaultPlan::tear_write`]). Plans are either built explicitly or
//! scattered pseudo-randomly from a seed, so every run of a fault
//! scenario is reproducible. Each triggered fault is recorded in an
//! event log for assertions.
//!
//! The plan is internally synchronised and is shared by reference (or
//! `Arc`) across the training loop, the datastore, the pipeline runner,
//! the serving tier and the online-monitoring loop.
//!
//! # Fault catalogue
//!
//! | Constructor | Hook (consulted by) | Effect |
//! |---|---|---|
//! | [`FaultPlan::with_nan_batch`] | [`FaultPlan::poison_batch`] (`neural::guard`) | Poisons one training batch with NaN inputs |
//! | [`FaultPlan::with_stage_failure`] | [`FaultPlan::fail_stage`] (`spectroai::recovery`) | Fails a pipeline stage attempt |
//! | [`FaultPlan::with_torn_write`] | [`FaultPlan::tear_write`] (`datastore`) | Truncates a persistence write mid-file |
//! | [`FaultPlan::with_worker_panic`] | [`FaultPlan::batch_fault`] (`serve` worker loop) | Panics a shard worker before a batch |
//! | [`FaultPlan::arm_worker_panic`] | [`FaultPlan::batch_fault`] (`serve` worker loop) | Panics a shard worker N batches from now (runtime arming, e.g. on a swap canary) |
//! | [`FaultPlan::with_stall_batch`] | [`FaultPlan::batch_fault`] (`serve` worker loop) | Stalls a batch past the supervisor's deadline |
//! | [`FaultPlan::with_slow_predict`] | [`FaultPlan::batch_fault`] (`serve` worker loop) | Multiplies one batch's compute time |
//! | [`FaultPlan::with_registry_load_error`] | [`FaultPlan::fail_registry_load`] (`serve::Router::rolling_swap`) | Fails a registry load / upgrade publish |
//! | [`FaultPlan::with_sensor_dropout`] | [`FaultPlan::sensor_dropout`] (`monitor` spectra stream) | Drops one stream measurement (sensor blackout) |
//! | [`FaultPlan::with_characterize_error`] | [`FaultPlan::fail_characterize`] (`monitor` recharacterizer) | Fails one re-characterization attempt |
//!
//! Serve-side faults are keyed by `(shard, nth batch)`; stream and
//! characterization faults are keyed by a plan-lifetime attempt counter,
//! like torn writes and registry-load errors.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Mutex;
use std::time::Duration;

/// A fault that a [`FaultPlan`] actually delivered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultEvent {
    /// A training batch was poisoned with non-finite values.
    NanBatch {
        /// Epoch of the poisoned batch.
        epoch: usize,
        /// Batch index within the epoch.
        batch: usize,
    },
    /// A pipeline stage was made to fail.
    StageFailure {
        /// Stage name.
        stage: String,
        /// Failures still scheduled for this stage afterwards.
        remaining: usize,
    },
    /// A datastore write was torn (truncated mid-write).
    TornWrite {
        /// Zero-based index of the torn write.
        write_index: u64,
    },
    /// A serving worker was made to panic mid-loop.
    WorkerPanic {
        /// Shard whose worker panicked.
        shard: usize,
    },
    /// A serving batch was stalled (worker slept past its deadline).
    StallBatch {
        /// Shard whose batch stalled.
        shard: usize,
        /// Stall duration in milliseconds.
        millis: u64,
    },
    /// A registry load (or upgrade publish) was made to fail.
    RegistryLoadError {
        /// Zero-based index of the failed load in plan-lifetime order.
        load_index: u64,
    },
    /// A serving batch was slowed by a multiplicative factor.
    SlowPredict {
        /// Shard whose batch was slowed.
        shard: usize,
        /// Slowdown factor in percent (250 = 2.5× the measured compute).
        factor_pct: u32,
    },
    /// A stream measurement was dropped (sensor blackout).
    SensorDropout {
        /// Zero-based index of the dropped measurement in plan-lifetime
        /// order.
        measurement: u64,
    },
    /// A re-characterization attempt was made to fail.
    CharacterizeError {
        /// Zero-based index of the failed attempt in plan-lifetime order.
        attempt: u64,
    },
}

/// A serve-side fault the engine's worker loop must apply to the batch it
/// is about to execute. Returned by [`FaultPlan::batch_fault`].
#[derive(Debug, Clone, PartialEq)]
pub enum ServeFault {
    /// Panic the worker thread (the supervisor must restart the shard).
    Panic,
    /// Sleep this long before executing the batch (stall detection).
    Stall(Duration),
    /// Multiply the batch's compute time by this factor (slow shard).
    Slow(f64),
}

impl ServeFault {
    /// Applies the pre-execution half of the fault: panics the calling
    /// thread for [`ServeFault::Panic`], sleeps for [`ServeFault::Stall`],
    /// and does nothing for [`ServeFault::Slow`] (the caller applies the
    /// factor after measuring its compute time via [`ServeFault::slow_factor`]).
    ///
    /// Living here keeps the deliberate chaos `panic!` out of the
    /// panic-free serving crate — the lint baseline points at this one
    /// site instead.
    pub fn apply_pre(&self) {
        match self {
            ServeFault::Panic => panic!("faultsim: injected serve worker panic"),
            ServeFault::Stall(duration) => std::thread::sleep(*duration),
            ServeFault::Slow(_) => {}
        }
    }

    /// The slowdown factor, if this is a [`ServeFault::Slow`].
    pub fn slow_factor(&self) -> Option<f64> {
        match self {
            ServeFault::Slow(factor) => Some(*factor),
            _ => None,
        }
    }
}

#[derive(Debug, Default)]
struct PlanInner {
    nan_batches: BTreeSet<(usize, usize)>,
    stage_failures: BTreeMap<String, usize>,
    torn_writes: BTreeSet<u64>,
    write_counter: u64,
    // Serve-side faults, keyed by (shard, nth batch processed on that
    // shard in plan lifetime). Per-shard batch counters advance on every
    // `batch_fault` consultation, so schedules are deterministic even
    // with concurrent shards.
    worker_panics: BTreeSet<(usize, u64)>,
    stall_batches: BTreeMap<(usize, u64), u64>,
    slow_predicts: BTreeMap<(usize, u64), u32>,
    batch_counters: BTreeMap<usize, u64>,
    registry_load_errors: BTreeSet<u64>,
    load_counter: u64,
    sensor_dropouts: BTreeSet<u64>,
    measurement_counter: u64,
    characterize_errors: BTreeSet<u64>,
    characterize_counter: u64,
    events: Vec<FaultEvent>,
}

/// A deterministic schedule of faults to inject.
///
/// # Example
///
/// ```
/// use faultsim::FaultPlan;
///
/// let plan = FaultPlan::new()
///     .with_nan_batch(2, 0)
///     .with_stage_failure("calibration", 1)
///     .with_torn_write(3);
/// assert!(plan.poison_batch(2, 0));
/// assert!(!plan.poison_batch(2, 0), "each fault fires once");
/// assert!(plan.fail_stage("calibration"));
/// assert!(!plan.fail_stage("calibration"));
/// assert_eq!(plan.events().len(), 2);
/// ```
#[derive(Debug, Default)]
pub struct FaultPlan {
    inner: Mutex<PlanInner>,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules a NaN batch at `(epoch, batch)`.
    pub fn with_nan_batch(self, epoch: usize, batch: usize) -> Self {
        self.lock().nan_batches.insert((epoch, batch));
        self
    }

    /// Schedules `times` consecutive failures of `stage`.
    pub fn with_stage_failure(self, stage: &str, times: usize) -> Self {
        *self.lock().stage_failures.entry(stage.to_string()).or_insert(0) += times;
        self
    }

    /// Schedules the `nth` datastore write (zero-based, in plan lifetime
    /// order) to be torn.
    pub fn with_torn_write(self, nth: u64) -> Self {
        self.lock().torn_writes.insert(nth);
        self
    }

    /// Scatters `count` NaN batches pseudo-randomly (from `seed`) over an
    /// `epochs` × `batches_per_epoch` grid.
    pub fn with_scattered_nan_batches(
        self,
        seed: u64,
        count: usize,
        epochs: usize,
        batches_per_epoch: usize,
    ) -> Self {
        let cells = epochs.saturating_mul(batches_per_epoch);
        {
            let mut inner = self.lock();
            let mut stream = SplitMix64::new(seed);
            let target = count.min(cells);
            while inner.nan_batches.len() < target {
                let cell = (stream.next() % cells.max(1) as u64) as usize;
                inner
                    .nan_batches
                    .insert((cell / batches_per_epoch.max(1), cell % batches_per_epoch.max(1)));
            }
        }
        self
    }

    /// Scatters `count` torn writes pseudo-randomly (from `seed`) over the
    /// first `writes` writes.
    pub fn with_scattered_torn_writes(self, seed: u64, count: usize, writes: u64) -> Self {
        {
            let mut inner = self.lock();
            let mut stream = SplitMix64::new(seed);
            let target = count.min(writes as usize);
            while inner.torn_writes.len() < target {
                inner.torn_writes.insert(stream.next() % writes.max(1));
            }
        }
        self
    }

    /// Schedules a worker panic on `shard` when it consults
    /// [`FaultPlan::batch_fault`] for the `nth_batch`-th time (zero-based).
    pub fn with_worker_panic(self, shard: usize, nth_batch: u64) -> Self {
        self.lock().worker_panics.insert((shard, nth_batch));
        self
    }

    /// Schedules `shard`'s `nth_batch`-th batch to stall for `millis`
    /// milliseconds before executing.
    pub fn with_stall_batch(self, shard: usize, nth_batch: u64, millis: u64) -> Self {
        self.lock().stall_batches.insert((shard, nth_batch), millis);
        self
    }

    /// Arms a worker panic on `shard` `after` batches from *now*
    /// (`after = 0` panics the very next batch), relative to the shard's
    /// current batch counter. Unlike [`FaultPlan::with_worker_panic`]
    /// this works on a shared plan mid-run — the monitor loop uses it to
    /// land a panic exactly on a rolling swap's canary batch, when no
    /// other traffic is in flight.
    pub fn arm_worker_panic(&self, shard: usize, after: u64) {
        let mut inner = self.lock();
        let current = inner.batch_counters.get(&shard).copied().unwrap_or(0);
        inner.worker_panics.insert((shard, current + after));
    }

    /// Schedules `shard`'s `nth_batch`-th batch to run `factor_pct`/100×
    /// slower than measured (250 = 2.5× the compute time).
    pub fn with_slow_predict(self, shard: usize, nth_batch: u64, factor_pct: u32) -> Self {
        self.lock().slow_predicts.insert((shard, nth_batch), factor_pct);
        self
    }

    /// Schedules the `nth` registry load (zero-based, in plan lifetime
    /// order) to fail.
    pub fn with_registry_load_error(self, nth: u64) -> Self {
        self.lock().registry_load_errors.insert(nth);
        self
    }

    /// Schedules the `nth` stream measurement (zero-based, in plan
    /// lifetime order) to be dropped — the sensor returns nothing and the
    /// monitoring loop must carry on without poisoning its statistics.
    pub fn with_sensor_dropout(self, nth: u64) -> Self {
        self.lock().sensor_dropouts.insert(nth);
        self
    }

    /// Schedules the `nth` re-characterization attempt (zero-based, in
    /// plan lifetime order) to fail.
    pub fn with_characterize_error(self, nth: u64) -> Self {
        self.lock().characterize_errors.insert(nth);
        self
    }

    /// Hook for serving workers: consulted once per batch, advancing
    /// `shard`'s batch counter, and returning the fault (if any) scheduled
    /// for this batch. Panic wins over stall wins over slow when several
    /// are scheduled on the same batch. Each fault fires at most once.
    pub fn batch_fault(&self, shard: usize) -> Option<ServeFault> {
        let mut inner = self.lock();
        let counter = inner.batch_counters.entry(shard).or_insert(0);
        let index = *counter;
        *counter += 1;
        if inner.worker_panics.remove(&(shard, index)) {
            inner.events.push(FaultEvent::WorkerPanic { shard });
            return Some(ServeFault::Panic);
        }
        if let Some(millis) = inner.stall_batches.remove(&(shard, index)) {
            inner.events.push(FaultEvent::StallBatch { shard, millis });
            return Some(ServeFault::Stall(Duration::from_millis(millis)));
        }
        if let Some(factor_pct) = inner.slow_predicts.remove(&(shard, index)) {
            inner.events.push(FaultEvent::SlowPredict { shard, factor_pct });
            return Some(ServeFault::Slow(f64::from(factor_pct) / 100.0));
        }
        None
    }

    /// Hook for registry loaders and upgrade publishers: counts one load
    /// attempt and returns `true` if it should fail.
    pub fn fail_registry_load(&self) -> bool {
        let mut inner = self.lock();
        let index = inner.load_counter;
        inner.load_counter += 1;
        if inner.registry_load_errors.remove(&index) {
            inner
                .events
                .push(FaultEvent::RegistryLoadError { load_index: index });
            true
        } else {
            false
        }
    }

    /// Hook for spectra streams: counts one measurement and returns
    /// `true` if the sensor should drop it (no sample delivered).
    pub fn sensor_dropout(&self) -> bool {
        let mut inner = self.lock();
        let index = inner.measurement_counter;
        inner.measurement_counter += 1;
        if inner.sensor_dropouts.remove(&index) {
            inner
                .events
                .push(FaultEvent::SensorDropout { measurement: index });
            true
        } else {
            false
        }
    }

    /// Hook for re-characterization: counts one attempt and returns
    /// `true` if it should fail.
    pub fn fail_characterize(&self) -> bool {
        let mut inner = self.lock();
        let index = inner.characterize_counter;
        inner.characterize_counter += 1;
        if inner.characterize_errors.remove(&index) {
            inner
                .events
                .push(FaultEvent::CharacterizeError { attempt: index });
            true
        } else {
            false
        }
    }

    /// Hook for the training loop: returns `true` if the batch at
    /// `(epoch, batch)` should be poisoned. Fires at most once per
    /// scheduled point.
    pub fn poison_batch(&self, epoch: usize, batch: usize) -> bool {
        let mut inner = self.lock();
        if inner.nan_batches.remove(&(epoch, batch)) {
            inner.events.push(FaultEvent::NanBatch { epoch, batch });
            true
        } else {
            false
        }
    }

    /// Hook for stage runners: returns `true` if `stage` should fail this
    /// attempt, consuming one scheduled failure.
    pub fn fail_stage(&self, stage: &str) -> bool {
        let mut inner = self.lock();
        match inner.stage_failures.get_mut(stage) {
            Some(remaining) if *remaining > 0 => {
                *remaining -= 1;
                let remaining = *remaining;
                inner.events.push(FaultEvent::StageFailure {
                    stage: stage.to_string(),
                    remaining,
                });
                true
            }
            _ => false,
        }
    }

    /// Hook for writers: counts one write and returns `true` if it should
    /// be torn.
    pub fn tear_write(&self) -> bool {
        let mut inner = self.lock();
        let index = inner.write_counter;
        inner.write_counter += 1;
        if inner.torn_writes.remove(&index) {
            inner.events.push(FaultEvent::TornWrite { write_index: index });
            true
        } else {
            false
        }
    }

    /// Faults delivered so far, in delivery order.
    pub fn events(&self) -> Vec<FaultEvent> {
        self.lock().events.clone()
    }

    /// Number of scheduled faults not yet delivered.
    pub fn pending(&self) -> usize {
        let inner = self.lock();
        inner.nan_batches.len()
            + inner.stage_failures.values().sum::<usize>()
            + inner.torn_writes.len()
            + inner.worker_panics.len()
            + inner.stall_batches.len()
            + inner.slow_predicts.len()
            + inner.registry_load_errors.len()
            + inner.sensor_dropouts.len()
            + inner.characterize_errors.len()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, PlanInner> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// SplitMix64 — the small deterministic stream behind the `scattered`
/// constructors.
#[derive(Debug)]
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nan_batches_fire_once() {
        let plan = FaultPlan::new().with_nan_batch(1, 2);
        assert!(!plan.poison_batch(0, 0));
        assert!(plan.poison_batch(1, 2));
        assert!(!plan.poison_batch(1, 2));
        assert_eq!(plan.events(), vec![FaultEvent::NanBatch { epoch: 1, batch: 2 }]);
    }

    #[test]
    fn stage_failures_count_down() {
        let plan = FaultPlan::new().with_stage_failure("training", 2);
        assert!(plan.fail_stage("training"));
        assert!(plan.fail_stage("training"));
        assert!(!plan.fail_stage("training"));
        assert!(!plan.fail_stage("other"));
        assert_eq!(plan.events().len(), 2);
    }

    #[test]
    fn torn_writes_index_by_write_order() {
        let plan = FaultPlan::new().with_torn_write(1);
        assert!(!plan.tear_write()); // write 0
        assert!(plan.tear_write()); // write 1
        assert!(!plan.tear_write()); // write 2
        assert_eq!(plan.events(), vec![FaultEvent::TornWrite { write_index: 1 }]);
    }

    #[test]
    fn scattered_plans_are_deterministic() {
        let a = FaultPlan::new().with_scattered_nan_batches(7, 5, 10, 8);
        let b = FaultPlan::new().with_scattered_nan_batches(7, 5, 10, 8);
        let mut fired_a = Vec::new();
        let mut fired_b = Vec::new();
        for epoch in 0..10 {
            for batch in 0..8 {
                if a.poison_batch(epoch, batch) {
                    fired_a.push((epoch, batch));
                }
                if b.poison_batch(epoch, batch) {
                    fired_b.push((epoch, batch));
                }
            }
        }
        assert_eq!(fired_a.len(), 5);
        assert_eq!(fired_a, fired_b);
    }

    #[test]
    fn pending_tracks_undelivered_faults() {
        let plan = FaultPlan::new()
            .with_nan_batch(0, 0)
            .with_stage_failure("s", 3)
            .with_torn_write(0);
        assert_eq!(plan.pending(), 5);
        plan.poison_batch(0, 0);
        plan.fail_stage("s");
        plan.tear_write();
        assert_eq!(plan.pending(), 2);
    }

    #[test]
    fn batch_faults_fire_once_per_shard_batch_index() {
        let plan = FaultPlan::new()
            .with_worker_panic(1, 2)
            .with_stall_batch(0, 1, 50)
            .with_slow_predict(0, 2, 250);
        // Shard 0, batches 0..3: nothing, stall, slow.
        assert_eq!(plan.batch_fault(0), None);
        assert_eq!(plan.batch_fault(0), Some(ServeFault::Stall(Duration::from_millis(50))));
        let slow = plan.batch_fault(0).expect("slow fault");
        assert_eq!(slow.slow_factor(), Some(2.5));
        // Shard 1 counts independently: batches 0,1 clean, 2 panics.
        assert_eq!(plan.batch_fault(1), None);
        assert_eq!(plan.batch_fault(1), None);
        assert_eq!(plan.batch_fault(1), Some(ServeFault::Panic));
        assert_eq!(plan.batch_fault(1), None);
        assert_eq!(
            plan.events(),
            vec![
                FaultEvent::StallBatch { shard: 0, millis: 50 },
                FaultEvent::SlowPredict { shard: 0, factor_pct: 250 },
                FaultEvent::WorkerPanic { shard: 1 },
            ]
        );
        assert_eq!(plan.pending(), 0);
    }

    #[test]
    fn registry_load_errors_index_by_load_order() {
        let plan = FaultPlan::new().with_registry_load_error(1);
        assert!(!plan.fail_registry_load()); // load 0
        assert!(plan.fail_registry_load()); // load 1
        assert!(!plan.fail_registry_load()); // load 2
        assert_eq!(
            plan.events(),
            vec![FaultEvent::RegistryLoadError { load_index: 1 }]
        );
    }

    #[test]
    #[should_panic(expected = "injected serve worker panic")]
    fn panic_fault_panics_on_apply() {
        ServeFault::Panic.apply_pre();
    }

    #[test]
    fn arm_worker_panic_is_relative_to_current_counter() {
        let plan = FaultPlan::new();
        // Advance shard 0's counter by two batches, then arm "next batch".
        assert!(plan.batch_fault(0).is_none());
        assert!(plan.batch_fault(0).is_none());
        plan.arm_worker_panic(0, 0);
        assert!(matches!(plan.batch_fault(0), Some(ServeFault::Panic)));
        assert!(plan.batch_fault(0).is_none());
        // Arming with a delay skips that many batches first.
        plan.arm_worker_panic(1, 1);
        assert!(plan.batch_fault(1).is_none());
        assert!(matches!(plan.batch_fault(1), Some(ServeFault::Panic)));
    }

    #[test]
    fn sensor_dropouts_index_by_measurement_order() {
        let plan = FaultPlan::new().with_sensor_dropout(1).with_sensor_dropout(2);
        assert!(!plan.sensor_dropout()); // measurement 0
        assert!(plan.sensor_dropout()); // measurement 1
        assert!(plan.sensor_dropout()); // measurement 2
        assert!(!plan.sensor_dropout()); // measurement 3
        assert_eq!(
            plan.events(),
            vec![
                FaultEvent::SensorDropout { measurement: 1 },
                FaultEvent::SensorDropout { measurement: 2 },
            ]
        );
        assert_eq!(plan.pending(), 0);
    }

    #[test]
    fn characterize_errors_index_by_attempt_order() {
        let plan = FaultPlan::new().with_characterize_error(0);
        assert_eq!(plan.pending(), 1);
        assert!(plan.fail_characterize()); // attempt 0
        assert!(!plan.fail_characterize()); // attempt 1
        assert_eq!(
            plan.events(),
            vec![FaultEvent::CharacterizeError { attempt: 0 }]
        );
        assert_eq!(plan.pending(), 0);
    }

    #[test]
    fn scattered_torn_writes_within_bounds() {
        let plan = FaultPlan::new().with_scattered_torn_writes(3, 4, 20);
        let mut torn = 0;
        for _ in 0..20 {
            if plan.tear_write() {
                torn += 1;
            }
        }
        assert_eq!(torn, 4);
        assert_eq!(plan.pending(), 0);
    }
}
