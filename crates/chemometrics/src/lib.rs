//! Classical chemometric baselines.
//!
//! The paper contrasts its ANN approach with "multivariate tools and
//! algorithms ... such as ... Principal Component Analysis (PCA), Partial
//! Least Squares (PLS), or Latent Discriminant Analysis" (§II.C) and
//! benchmarks the NMR networks against *Indirect Hard Modelling* (IHM,
//! §III.B). This crate implements those baselines:
//!
//! * [`pca`] — NIPALS principal component analysis;
//! * [`pls`] — NIPALS partial least squares regression (PLS2);
//! * [`lm`] — a generic Levenberg–Marquardt solver;
//! * [`ihm`] — Indirect Hard Modelling: fitting Lorentz–Gauss pure
//!   component models (with per-component shift and broadening) to a
//!   mixture spectrum to recover concentrations.
//!
//! # Example
//!
//! ```
//! use chem::nmr::lithiation_components;
//! use chemometrics::ihm::IhmAnalyzer;
//! use spectrum::{ContinuousSpectrum, UniformAxis};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let axis = UniformAxis::new(0.0, 12.0 / 1699.0, 1700)?;
//! let components = lithiation_components();
//! // Synthesize a mixture and recover its concentrations.
//! let truth = [0.3, 0.4, 0.2, 0.1];
//! let mut mixture = ContinuousSpectrum::zeros(axis);
//! for (component, &c) in components.iter().zip(&truth) {
//!     mixture.add_assign(&component.render(&axis, c, 0.0, 1.0)?)?;
//! }
//! let analyzer = IhmAnalyzer::new(components, axis)?;
//! let fit = analyzer.fit(&mixture)?;
//! for (found, expect) in fit.concentrations.iter().zip(&truth) {
//!     assert!((found - expect).abs() < 0.01);
//! }
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ihm;
pub mod lm;
pub mod pca;
pub mod pls;

mod error;

pub use error::ChemometricsError;
