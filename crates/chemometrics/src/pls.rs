//! Partial least squares regression (NIPALS PLS2).
//!
//! PLS is the workhorse of classical quantitative spectroscopy (paper
//! §II.C) and serves as a multivariate baseline against the ANN pipelines:
//! it regresses concentration vectors on spectra through a small number of
//! latent variables.

use spectrum::linalg::{dot, norm, Matrix};

use crate::pca::validate;
use crate::ChemometricsError;

/// A fitted PLS2 regression model.
///
/// # Example
///
/// ```
/// use chemometrics::pls::Pls;
///
/// # fn main() -> Result<(), chemometrics::ChemometricsError> {
/// // y = x0 + 2*x1 with three informative inputs.
/// let x: Vec<Vec<f64>> = (0..30)
///     .map(|i| vec![(i % 5) as f64, (i / 5) as f64, 1.0])
///     .collect();
/// let y: Vec<Vec<f64>> = x.iter().map(|r| vec![r[0] + 2.0 * r[1]]).collect();
/// let model = Pls::fit(&x, &y, 2)?;
/// let pred = model.predict(&[3.0, 4.0, 1.0])?;
/// assert!((pred[0] - 11.0).abs() < 0.2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Pls {
    x_mean: Vec<f64>,
    y_mean: Vec<f64>,
    /// Regression coefficients, `x_width × y_width`.
    coefficients: Matrix,
    n_components: usize,
}

impl Pls {
    /// Fits a PLS2 model with `n_components` latent variables.
    ///
    /// # Errors
    ///
    /// Returns [`ChemometricsError::InvalidInput`] if the matrices are
    /// empty, ragged, of different sample counts, or `n_components` is
    /// zero.
    pub fn fit(
        x: &[Vec<f64>],
        y: &[Vec<f64>],
        n_components: usize,
    ) -> Result<Self, ChemometricsError> {
        let (rows, x_cols) = validate(x)?;
        let (y_rows, y_cols) = validate(y)?;
        if rows != y_rows {
            return Err(ChemometricsError::InvalidInput(format!(
                "{rows} x-samples vs {y_rows} y-samples"
            )));
        }
        if n_components == 0 {
            return Err(ChemometricsError::InvalidInput(
                "need at least one component".into(),
            ));
        }
        let n_components = n_components.min(x_cols).min(rows.saturating_sub(1).max(1));

        // Center both blocks.
        let x_mean = column_means(x, rows, x_cols);
        let y_mean = column_means(y, rows, y_cols);
        let mut ex: Vec<Vec<f64>> = x
            .iter()
            .map(|r| r.iter().zip(&x_mean).map(|(v, m)| v - m).collect())
            .collect();
        let mut fy: Vec<Vec<f64>> = y
            .iter()
            .map(|r| r.iter().zip(&y_mean).map(|(v, m)| v - m).collect())
            .collect();

        // Collected loadings for the coefficient computation.
        let mut w_mat = Matrix::zeros(n_components, x_cols); // weights
        let mut p_mat = Matrix::zeros(n_components, x_cols); // x loadings
        let mut q_mat = Matrix::zeros(n_components, y_cols); // y loadings
        let mut fitted = 0usize;

        for comp in 0..n_components {
            // u = column of F with largest variance.
            let start = (0..y_cols)
                .max_by(|&a, &b| {
                    let va: f64 = fy.iter().map(|r| r[a] * r[a]).sum();
                    let vb: f64 = fy.iter().map(|r| r[b] * r[b]).sum();
                    va.total_cmp(&vb)
                })
                .unwrap_or(0);
            let mut u: Vec<f64> = fy.iter().map(|r| r[start]).collect();
            if norm(&u) < 1e-12 {
                break;
            }
            let mut w = vec![0.0; x_cols];
            let mut t = vec![0.0; rows];
            let mut q = vec![0.0; y_cols];
            for _ in 0..500 {
                // w = Eᵀ u / ||...||
                let uu = dot(&u, &u).max(1e-300);
                for (j, wj) in w.iter_mut().enumerate() {
                    *wj = ex.iter().zip(&u).map(|(r, &ui)| r[j] * ui).sum::<f64>() / uu;
                }
                let wn = norm(&w).max(1e-300);
                for wj in &mut w {
                    *wj /= wn;
                }
                // t = E w
                for (ti, r) in t.iter_mut().zip(&ex) {
                    *ti = dot(r, &w);
                }
                // q = Fᵀ t / (tᵀ t)
                let tt = dot(&t, &t).max(1e-300);
                for (j, qj) in q.iter_mut().enumerate() {
                    *qj = fy.iter().zip(&t).map(|(r, &ti)| r[j] * ti).sum::<f64>() / tt;
                }
                // u = F q / (qᵀ q)
                let qq = dot(&q, &q).max(1e-300);
                let u_new: Vec<f64> = fy.iter().map(|r| dot(r, &q) / qq).collect();
                let delta: f64 = u_new
                    .iter()
                    .zip(&u)
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum::<f64>()
                    .sqrt();
                let scale = norm(&u_new).max(1e-300);
                u = u_new;
                if delta / scale < 1e-12 {
                    break;
                }
            }
            // x loadings p = Eᵀ t / (tᵀ t); deflate.
            let tt = dot(&t, &t).max(1e-300);
            let mut p = vec![0.0; x_cols];
            for (j, pj) in p.iter_mut().enumerate() {
                *pj = ex.iter().zip(&t).map(|(r, &ti)| r[j] * ti).sum::<f64>() / tt;
            }
            for (row, &ti) in ex.iter_mut().zip(&t) {
                for (v, &pj) in row.iter_mut().zip(&p) {
                    *v -= ti * pj;
                }
            }
            for (row, &ti) in fy.iter_mut().zip(&t) {
                for (v, &qj) in row.iter_mut().zip(&q) {
                    *v -= ti * qj;
                }
            }
            for j in 0..x_cols {
                w_mat.set(comp, j, w[j]);
                p_mat.set(comp, j, p[j]);
            }
            for (j, &qj) in q.iter().enumerate().take(y_cols) {
                q_mat.set(comp, j, qj);
            }
            fitted = comp + 1;
        }
        if fitted == 0 {
            return Err(ChemometricsError::NoConvergence { iterations: 0 });
        }

        // B = W (Pᵀ W)⁻¹ Qᵀ  — computed on the fitted sub-blocks.
        let w_used = submatrix(&w_mat, fitted, x_cols);
        let p_used = submatrix(&p_mat, fitted, x_cols);
        let q_used = submatrix(&q_mat, fitted, y_cols);
        // (P Wᵀ) is fitted × fitted: entry (i, j) = p_i · w_j.
        let mut pw = Matrix::zeros(fitted, fitted);
        for i in 0..fitted {
            for j in 0..fitted {
                pw.set(i, j, dot(p_used.row(i), w_used.row(j)));
            }
        }
        // Solve (P Wᵀ) A = Q for A (fitted × y_cols), then B = Wᵀ A.
        let mut a = Matrix::zeros(fitted, y_cols);
        for col in 0..y_cols {
            let rhs: Vec<f64> = (0..fitted).map(|i| q_used.get(i, col)).collect();
            let sol = spectrum::linalg::solve(&pw, &rhs)?;
            for (i, &v) in sol.iter().enumerate() {
                a.set(i, col, v);
            }
        }
        let mut coefficients = Matrix::zeros(x_cols, y_cols);
        for j in 0..x_cols {
            for col in 0..y_cols {
                let mut acc = 0.0;
                for i in 0..fitted {
                    acc += w_used.get(i, j) * a.get(i, col);
                }
                coefficients.set(j, col, acc);
            }
        }

        Ok(Self {
            x_mean,
            y_mean,
            coefficients,
            n_components: fitted,
        })
    }

    /// Number of latent variables actually fitted.
    pub fn n_components(&self) -> usize {
        self.n_components
    }

    /// Predicts the response for one sample.
    ///
    /// # Errors
    ///
    /// Returns [`ChemometricsError::InvalidInput`] on width mismatch.
    pub fn predict(&self, sample: &[f64]) -> Result<Vec<f64>, ChemometricsError> {
        if sample.len() != self.x_mean.len() {
            return Err(ChemometricsError::InvalidInput(format!(
                "sample width {} vs model width {}",
                sample.len(),
                self.x_mean.len()
            )));
        }
        let centered: Vec<f64> = sample.iter().zip(&self.x_mean).map(|(v, m)| v - m).collect();
        let mut out = self.y_mean.clone();
        for (j, &x) in centered.iter().enumerate() {
            if x == 0.0 {
                continue;
            }
            for (col, o) in out.iter_mut().enumerate() {
                *o += x * self.coefficients.get(j, col);
            }
        }
        Ok(out)
    }

    /// Predicts responses for many samples.
    ///
    /// # Errors
    ///
    /// Returns [`ChemometricsError::InvalidInput`] on width mismatch.
    pub fn predict_batch(&self, samples: &[Vec<f64>]) -> Result<Vec<Vec<f64>>, ChemometricsError> {
        samples.iter().map(|s| self.predict(s)).collect()
    }
}

fn column_means(data: &[Vec<f64>], rows: usize, cols: usize) -> Vec<f64> {
    let mut mean = vec![0.0; cols];
    for row in data {
        for (m, v) in mean.iter_mut().zip(row) {
            *m += v;
        }
    }
    for m in &mut mean {
        *m /= rows as f64;
    }
    mean
}

fn submatrix(m: &Matrix, rows: usize, cols: usize) -> Matrix {
    let mut out = Matrix::zeros(rows, cols);
    for i in 0..rows {
        for j in 0..cols {
            out.set(i, j, m.get(i, j));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear_problem() -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
        // y0 = x0 + 0.5 x2; y1 = -x1.
        let x: Vec<Vec<f64>> = (0..40)
            .map(|i| {
                let a = (i % 5) as f64;
                let b = ((i / 5) % 4) as f64;
                let c = (i % 7) as f64;
                vec![a, b, c]
            })
            .collect();
        let y = x
            .iter()
            .map(|r| vec![r[0] + 0.5 * r[2], -r[1]])
            .collect();
        (x, y)
    }

    #[test]
    fn recovers_linear_relations() {
        let (x, y) = linear_problem();
        let model = Pls::fit(&x, &y, 3).unwrap();
        for (xi, yi) in x.iter().zip(&y) {
            let pred = model.predict(xi).unwrap();
            assert!((pred[0] - yi[0]).abs() < 1e-6, "{pred:?} vs {yi:?}");
            assert!((pred[1] - yi[1]).abs() < 1e-6);
        }
    }

    #[test]
    fn fewer_components_still_reasonable() {
        let (x, y) = linear_problem();
        let model = Pls::fit(&x, &y, 1).unwrap();
        assert_eq!(model.n_components(), 1);
        // One latent variable cannot be exact but should correlate.
        let preds: Vec<f64> = x.iter().map(|xi| model.predict(xi).unwrap()[0]).collect();
        let targets: Vec<f64> = y.iter().map(|r| r[0]).collect();
        let r = spectrum::stats::pearson(&preds, &targets).unwrap();
        assert!(r > 0.5, "correlation {r}");
    }

    #[test]
    fn validates_inputs() {
        let (x, y) = linear_problem();
        assert!(Pls::fit(&[], &y, 1).is_err());
        assert!(Pls::fit(&x, &y[..10], 1).is_err());
        assert!(Pls::fit(&x, &y, 0).is_err());
    }

    #[test]
    fn predict_checks_width() {
        let (x, y) = linear_problem();
        let model = Pls::fit(&x, &y, 2).unwrap();
        assert!(model.predict(&[1.0]).is_err());
    }

    #[test]
    fn predict_batch_matches_single() {
        let (x, y) = linear_problem();
        let model = Pls::fit(&x, &y, 2).unwrap();
        let batch = model.predict_batch(&x[..5]).unwrap();
        for (row, xi) in batch.iter().zip(&x[..5]) {
            assert_eq!(row, &model.predict(xi).unwrap());
        }
    }

    #[test]
    fn spectra_like_regression() {
        // Synthetic "spectra": two overlapping Gaussian bands whose
        // amplitudes are the concentrations to recover.
        let axis: Vec<f64> = (0..100).map(|i| i as f64 / 10.0).collect();
        let band = |center: f64, x: f64| (-((x - center) * (x - center)) / 0.8).exp();
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..25 {
            let c1 = (i % 5) as f64 / 5.0 + 0.1;
            let c2 = (i / 5) as f64 / 5.0 + 0.1;
            let spec: Vec<f64> = axis
                .iter()
                .map(|&x| c1 * band(4.0, x) + c2 * band(6.0, x))
                .collect();
            xs.push(spec);
            ys.push(vec![c1, c2]);
        }
        let model = Pls::fit(&xs, &ys, 2).unwrap();
        for (xi, yi) in xs.iter().zip(&ys) {
            let pred = model.predict(xi).unwrap();
            assert!((pred[0] - yi[0]).abs() < 0.01);
            assert!((pred[1] - yi[1]).abs() < 0.01);
        }
    }
}
