use std::fmt;

use spectrum::SpectrumError;

/// Error type for the chemometric algorithms.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ChemometricsError {
    /// Input matrices were empty or inconsistent.
    InvalidInput(String),
    /// An iterative algorithm failed to converge.
    NoConvergence {
        /// Iterations performed before giving up.
        iterations: usize,
    },
    /// An underlying linear-algebra or spectrum operation failed.
    Spectrum(SpectrumError),
}

impl fmt::Display for ChemometricsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChemometricsError::InvalidInput(msg) => write!(f, "invalid input: {msg}"),
            ChemometricsError::NoConvergence { iterations } => {
                write!(f, "no convergence after {iterations} iterations")
            }
            ChemometricsError::Spectrum(err) => write!(f, "spectrum error: {err}"),
        }
    }
}

impl std::error::Error for ChemometricsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ChemometricsError::Spectrum(err) => Some(err),
            _ => None,
        }
    }
}

impl From<SpectrumError> for ChemometricsError {
    fn from(err: SpectrumError) -> Self {
        ChemometricsError::Spectrum(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_sources() {
        let err = ChemometricsError::from(SpectrumError::Singular);
        assert!(err.to_string().contains("singular"));
        assert!(std::error::Error::source(&err).is_some());
        assert!(std::error::Error::source(&ChemometricsError::NoConvergence {
            iterations: 5
        })
        .is_none());
    }
}
