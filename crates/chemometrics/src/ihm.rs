//! Indirect Hard Modelling (IHM).
//!
//! Paper §III.B.1: "Based on a physical assumption (hard model), each
//! component can be described as a pure component, which is done with a
//! series of Lorentz-Gauss functions. With IHM, these pure components can
//! be found in the total spectrum of a mixture by fitting algorithms and
//! their intensities and thus concentrations can be determined, although
//! individual signals are allowed to shift or broaden."
//!
//! The fit is a separable least-squares problem: per-component shift and
//! broadening are optimized by Levenberg–Marquardt while, for every trial
//! of those nonlinear parameters, the concentrations are recovered by
//! non-negative linear least squares on the rendered component basis.

use chem::nmr::NmrComponent;
use spectrum::linalg::{nnls, Matrix};
use spectrum::{ContinuousSpectrum, UniformAxis};

use crate::lm::{levenberg_marquardt, LmOptions};
use crate::ChemometricsError;

/// Configuration of the IHM fit.
#[derive(Debug, Clone, PartialEq)]
pub struct IhmConfig {
    /// Maximum per-component chemical-shift offset (ppm).
    pub max_shift: f64,
    /// Allowed line-broadening factor range.
    pub broaden_bounds: (f64, f64),
    /// Levenberg–Marquardt options for the nonlinear stage.
    pub lm: LmOptions,
}

impl Default for IhmConfig {
    fn default() -> Self {
        Self {
            max_shift: 0.06,
            broaden_bounds: (0.7, 1.6),
            lm: LmOptions {
                max_iterations: 25,
                jacobian_step: 1e-4,
                ..LmOptions::default()
            },
        }
    }
}

/// Result of one IHM analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct IhmFit {
    /// Recovered concentrations, one per component (model units).
    pub concentrations: Vec<f64>,
    /// Fitted per-component shifts (ppm).
    pub shifts: Vec<f64>,
    /// Fitted per-component broadening factors.
    pub broadenings: Vec<f64>,
    /// Root-mean-square residual of the final fit.
    pub residual_rms: f64,
    /// Levenberg–Marquardt iterations used.
    pub iterations: usize,
}

/// An IHM analyzer bound to a component library and spectral axis.
///
/// See the [crate-level example](crate) for end-to-end usage.
#[derive(Debug, Clone)]
pub struct IhmAnalyzer {
    components: Vec<NmrComponent>,
    axis: UniformAxis,
    config: IhmConfig,
}

impl IhmAnalyzer {
    /// Creates an analyzer with the default configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ChemometricsError::InvalidInput`] if `components` is
    /// empty.
    pub fn new(
        components: Vec<NmrComponent>,
        axis: UniformAxis,
    ) -> Result<Self, ChemometricsError> {
        Self::with_config(components, axis, IhmConfig::default())
    }

    /// Creates an analyzer with an explicit configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ChemometricsError::InvalidInput`] if `components` is
    /// empty or the configuration is inconsistent.
    pub fn with_config(
        components: Vec<NmrComponent>,
        axis: UniformAxis,
        config: IhmConfig,
    ) -> Result<Self, ChemometricsError> {
        if components.is_empty() {
            return Err(ChemometricsError::InvalidInput(
                "need at least one component model".into(),
            ));
        }
        // partial_cmp keeps NaN bounds invalid (a bare `<`/`<=` would
        // accept them).
        use std::cmp::Ordering::{Equal, Greater};
        if !matches!(config.max_shift.partial_cmp(&0.0), Some(Greater | Equal))
            || config.broaden_bounds.0.partial_cmp(&0.0) != Some(Greater)
            || config.broaden_bounds.0 > config.broaden_bounds.1
        {
            return Err(ChemometricsError::InvalidInput(
                "invalid shift/broadening bounds".into(),
            ));
        }
        Ok(Self {
            components,
            axis,
            config,
        })
    }

    /// The component library (order defines the concentration layout).
    pub fn components(&self) -> &[NmrComponent] {
        &self.components
    }

    /// Component names in concentration order.
    pub fn component_names(&self) -> Vec<&str> {
        self.components.iter().map(|c| c.name()).collect()
    }

    /// Renders the unit-concentration basis for the given nonlinear
    /// parameters (`theta = [shift_0, broaden_0, shift_1, ...]`) and
    /// solves the non-negative least-squares problem for concentrations.
    fn solve_linear(
        &self,
        data: &[f64],
        theta: &[f64],
    ) -> Result<(Vec<f64>, Vec<f64>), ChemometricsError> {
        let n = self.axis.len();
        let c = self.components.len();
        let mut basis = Matrix::zeros(n, c);
        for (j, component) in self.components.iter().enumerate() {
            let shift = theta[2 * j];
            let broaden = theta[2 * j + 1];
            let rendered = component.render(&self.axis, 1.0, shift, broaden)?;
            for (i, &v) in rendered.intensities().iter().enumerate() {
                basis.set(i, j, v);
            }
        }
        let conc = nnls(&basis, data, 8)?;
        let model = basis.matvec(&conc);
        let residuals: Vec<f64> = model.iter().zip(data).map(|(m, d)| m - d).collect();
        Ok((conc, residuals))
    }

    /// Fits the hard model to `spectrum` and returns the recovered
    /// concentrations.
    ///
    /// # Errors
    ///
    /// Returns [`ChemometricsError::InvalidInput`] if the spectrum is not
    /// on the analyzer's axis, or propagates solver errors.
    pub fn fit(&self, spectrum: &ContinuousSpectrum) -> Result<IhmFit, ChemometricsError> {
        if spectrum.axis() != &self.axis {
            return Err(ChemometricsError::InvalidInput(
                "spectrum axis does not match analyzer axis".into(),
            ));
        }
        let data = spectrum.intensities().to_vec();
        let c = self.components.len();
        let initial: Vec<f64> = (0..c).flat_map(|_| [0.0, 1.0]).collect();
        let mut lower = Vec::with_capacity(2 * c);
        let mut upper = Vec::with_capacity(2 * c);
        for _ in 0..c {
            lower.push(-self.config.max_shift);
            lower.push(self.config.broaden_bounds.0);
            upper.push(self.config.max_shift);
            upper.push(self.config.broaden_bounds.1);
        }
        let options = LmOptions {
            lower_bounds: lower,
            upper_bounds: upper,
            ..self.config.lm.clone()
        };

        let result = levenberg_marquardt(
            |theta| match self.solve_linear(&data, theta) {
                Ok((_, residuals)) => residuals,
                // An invalid trial point (e.g. numerically broken basis)
                // is penalized with huge residuals instead of aborting.
                Err(_) => vec![1e6; data.len()],
            },
            &initial,
            &options,
        )?;

        let (concentrations, residuals) = self.solve_linear(&data, &result.parameters)?;
        let rms = (residuals.iter().map(|r| r * r).sum::<f64>() / residuals.len() as f64).sqrt();
        let shifts = (0..c).map(|j| result.parameters[2 * j]).collect();
        let broadenings = (0..c).map(|j| result.parameters[2 * j + 1]).collect();
        Ok(IhmFit {
            concentrations,
            shifts,
            broadenings,
            residual_rms: rms,
            iterations: result.iterations,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chem::nmr::lithiation_components;

    fn axis() -> UniformAxis {
        UniformAxis::new(0.0, 12.0 / 1699.0, 1700).unwrap()
    }

    fn mixture(
        concs: &[f64],
        shifts: &[f64],
        broadens: &[f64],
    ) -> ContinuousSpectrum {
        let comps = lithiation_components();
        let ax = axis();
        let mut out = ContinuousSpectrum::zeros(ax);
        for (i, comp) in comps.iter().enumerate() {
            let rendered = comp.render(&ax, concs[i], shifts[i], broadens[i]).unwrap();
            out.add_assign(&rendered).unwrap();
        }
        out
    }

    #[test]
    fn recovers_clean_concentrations() {
        let truth = [0.35, 0.3, 0.25, 0.1];
        let spec = mixture(&truth, &[0.0; 4], &[1.0; 4]);
        let analyzer = IhmAnalyzer::new(lithiation_components(), axis()).unwrap();
        let fit = analyzer.fit(&spec).unwrap();
        for (found, expect) in fit.concentrations.iter().zip(&truth) {
            assert!(
                (found - expect).abs() < 0.01,
                "found {found}, expect {expect}"
            );
        }
        assert!(fit.residual_rms < 1e-3);
    }

    #[test]
    fn tolerates_peak_shifts() {
        let truth = [0.2, 0.4, 0.3, 0.1];
        let shifts = [0.03, -0.02, 0.04, -0.03];
        let spec = mixture(&truth, &shifts, &[1.0; 4]);
        let analyzer = IhmAnalyzer::new(lithiation_components(), axis()).unwrap();
        let fit = analyzer.fit(&spec).unwrap();
        for (found, expect) in fit.concentrations.iter().zip(&truth) {
            assert!(
                (found - expect).abs() < 0.03,
                "found {found}, expect {expect}"
            );
        }
        // Fitted shifts should move in the right direction.
        for (fitted, actual) in fit.shifts.iter().zip(&shifts) {
            assert!((fitted - actual).abs() < 0.03, "shift {fitted} vs {actual}");
        }
    }

    #[test]
    fn tolerates_broadening() {
        let truth = [0.25, 0.25, 0.4, 0.1];
        let broadens = [1.2, 0.9, 1.3, 1.1];
        let spec = mixture(&truth, &[0.0; 4], &broadens);
        let analyzer = IhmAnalyzer::new(lithiation_components(), axis()).unwrap();
        let fit = analyzer.fit(&spec).unwrap();
        for (found, expect) in fit.concentrations.iter().zip(&truth) {
            assert!(
                (found - expect).abs() < 0.04,
                "found {found}, expect {expect}"
            );
        }
    }

    #[test]
    fn zero_component_stays_near_zero() {
        let truth = [0.5, 0.5, 0.0, 0.0];
        let spec = mixture(&truth, &[0.0; 4], &[1.0; 4]);
        let analyzer = IhmAnalyzer::new(lithiation_components(), axis()).unwrap();
        let fit = analyzer.fit(&spec).unwrap();
        assert!(fit.concentrations[2] < 0.02, "{:?}", fit.concentrations);
        assert!(fit.concentrations[3] < 0.02);
        assert!(fit.concentrations.iter().all(|&c| c >= 0.0));
    }

    #[test]
    fn rejects_wrong_axis() {
        let analyzer = IhmAnalyzer::new(lithiation_components(), axis()).unwrap();
        let other_axis = UniformAxis::new(0.0, 0.01, 100).unwrap();
        let spec = ContinuousSpectrum::zeros(other_axis);
        assert!(analyzer.fit(&spec).is_err());
    }

    #[test]
    fn rejects_empty_components_and_bad_config() {
        assert!(IhmAnalyzer::new(vec![], axis()).is_err());
        let bad = IhmConfig {
            broaden_bounds: (2.0, 1.0),
            ..IhmConfig::default()
        };
        assert!(IhmAnalyzer::with_config(lithiation_components(), axis(), bad).is_err());
    }

    #[test]
    fn component_names_follow_order() {
        let analyzer = IhmAnalyzer::new(lithiation_components(), axis()).unwrap();
        assert_eq!(
            analyzer.component_names(),
            vec!["p-toluidine", "o-FNB", "Li-HMDS", "MNDPA"]
        );
    }
}
