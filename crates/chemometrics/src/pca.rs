//! Principal component analysis (NIPALS).

use spectrum::linalg::{dot, norm, Matrix};

use crate::ChemometricsError;

/// A fitted PCA model: mean vector, loadings and per-component explained
/// variance.
///
/// # Example
///
/// ```
/// use chemometrics::pca::Pca;
///
/// # fn main() -> Result<(), chemometrics::ChemometricsError> {
/// // Points on the line y = 2x, plus tiny jitter on the 2nd axis.
/// let data: Vec<Vec<f64>> = (0..20)
///     .map(|i| vec![i as f64, 2.0 * i as f64 + if i % 2 == 0 { 0.01 } else { -0.01 }])
///     .collect();
/// let pca = Pca::fit(&data, 2)?;
/// // First component captures essentially all variance.
/// assert!(pca.explained_variance_ratio()[0] > 0.999);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Pca {
    mean: Vec<f64>,
    /// Loadings, one unit vector per component (rows).
    loadings: Matrix,
    explained_variance: Vec<f64>,
    total_variance: f64,
}

impl Pca {
    /// Fits up to `n_components` principal components with NIPALS.
    ///
    /// # Errors
    ///
    /// Returns [`ChemometricsError::InvalidInput`] if the data is empty or
    /// ragged, or `n_components` is zero.
    pub fn fit(data: &[Vec<f64>], n_components: usize) -> Result<Self, ChemometricsError> {
        let (rows, cols) = validate(data)?;
        if n_components == 0 {
            return Err(ChemometricsError::InvalidInput(
                "need at least one component".into(),
            ));
        }
        let n_components = n_components.min(cols).min(rows);
        // Center.
        let mut mean = vec![0.0; cols];
        for row in data {
            for (m, v) in mean.iter_mut().zip(row) {
                *m += v;
            }
        }
        for m in &mut mean {
            *m /= rows as f64;
        }
        let mut x: Vec<Vec<f64>> = data
            .iter()
            .map(|row| row.iter().zip(&mean).map(|(v, m)| v - m).collect())
            .collect();
        let total_variance: f64 = x
            .iter()
            .map(|row| row.iter().map(|v| v * v).sum::<f64>())
            .sum::<f64>()
            / rows as f64;

        let mut loadings = Matrix::zeros(n_components, cols);
        let mut explained = Vec::with_capacity(n_components);
        for comp in 0..n_components {
            // NIPALS: start from the column with the largest variance.
            let mut p = vec![0.0; cols];
            let start_col = (0..cols)
                .max_by(|&a, &b| {
                    let va: f64 = x.iter().map(|r| r[a] * r[a]).sum();
                    let vb: f64 = x.iter().map(|r| r[b] * r[b]).sum();
                    va.total_cmp(&vb)
                })
                .unwrap_or(0);
            let mut t: Vec<f64> = x.iter().map(|r| r[start_col]).collect();
            if norm(&t) < 1e-12 {
                // Remaining variance is zero.
                explained.push(0.0);
                continue;
            }
            for _ in 0..500 {
                // p = Xᵀ t / (tᵀ t)
                let tt = dot(&t, &t).max(1e-300);
                for (j, pj) in p.iter_mut().enumerate() {
                    *pj = x.iter().zip(&t).map(|(r, &ti)| r[j] * ti).sum::<f64>() / tt;
                }
                let pn = norm(&p).max(1e-300);
                for pj in &mut p {
                    *pj /= pn;
                }
                // t = X p
                let t_new: Vec<f64> = x.iter().map(|r| dot(r, &p)).collect();
                let delta: f64 = t_new
                    .iter()
                    .zip(&t)
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum::<f64>()
                    .sqrt();
                let scale = norm(&t_new).max(1e-300);
                t = t_new;
                if delta / scale < 1e-12 {
                    break;
                }
            }
            // Deflate: X <- X - t pᵀ.
            for (row, &ti) in x.iter_mut().zip(&t) {
                for (v, &pj) in row.iter_mut().zip(&p) {
                    *v -= ti * pj;
                }
            }
            let var = dot(&t, &t) / rows as f64;
            explained.push(var);
            for (j, &pj) in p.iter().enumerate() {
                loadings.set(comp, j, pj);
            }
        }
        Ok(Self {
            mean,
            loadings,
            explained_variance: explained,
            total_variance,
        })
    }

    /// Number of fitted components.
    pub fn n_components(&self) -> usize {
        self.explained_variance.len()
    }

    /// The data mean used for centering.
    pub fn mean(&self) -> &[f64] {
        &self.mean
    }

    /// Loading vector of component `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.n_components()`.
    pub fn loading(&self, i: usize) -> &[f64] {
        self.loadings.row(i)
    }

    /// Variance captured by each component.
    pub fn explained_variance(&self) -> &[f64] {
        &self.explained_variance
    }

    /// Fraction of total variance captured by each component.
    pub fn explained_variance_ratio(&self) -> Vec<f64> {
        let t = self.total_variance.max(1e-300);
        self.explained_variance.iter().map(|v| v / t).collect()
    }

    /// Projects a sample onto the component scores.
    ///
    /// # Errors
    ///
    /// Returns [`ChemometricsError::InvalidInput`] on width mismatch.
    pub fn transform(&self, sample: &[f64]) -> Result<Vec<f64>, ChemometricsError> {
        if sample.len() != self.mean.len() {
            return Err(ChemometricsError::InvalidInput(format!(
                "sample width {} vs model width {}",
                sample.len(),
                self.mean.len()
            )));
        }
        let centered: Vec<f64> = sample.iter().zip(&self.mean).map(|(v, m)| v - m).collect();
        Ok((0..self.n_components())
            .map(|i| dot(&centered, self.loadings.row(i)))
            .collect())
    }

    /// Reconstructs a sample from its scores (inverse transform).
    ///
    /// # Errors
    ///
    /// Returns [`ChemometricsError::InvalidInput`] on width mismatch.
    pub fn inverse_transform(&self, scores: &[f64]) -> Result<Vec<f64>, ChemometricsError> {
        if scores.len() != self.n_components() {
            return Err(ChemometricsError::InvalidInput(format!(
                "scores width {} vs components {}",
                scores.len(),
                self.n_components()
            )));
        }
        let mut out = self.mean.clone();
        for (i, &s) in scores.iter().enumerate() {
            for (o, &l) in out.iter_mut().zip(self.loadings.row(i)) {
                *o += s * l;
            }
        }
        Ok(out)
    }
}

pub(crate) fn validate(data: &[Vec<f64>]) -> Result<(usize, usize), ChemometricsError> {
    if data.is_empty() {
        return Err(ChemometricsError::InvalidInput("no samples".into()));
    }
    let cols = data[0].len();
    if cols == 0 {
        return Err(ChemometricsError::InvalidInput("zero-width samples".into()));
    }
    for (i, row) in data.iter().enumerate() {
        if row.len() != cols {
            return Err(ChemometricsError::InvalidInput(format!(
                "row {i} has width {} (expected {cols})",
                row.len()
            )));
        }
    }
    Ok((data.len(), cols))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_data() -> Vec<Vec<f64>> {
        (0..50)
            .map(|i| {
                let t = i as f64 / 10.0;
                vec![t, 2.0 * t, -t]
            })
            .collect()
    }

    #[test]
    fn first_component_captures_a_line() {
        let pca = Pca::fit(&line_data(), 3).unwrap();
        let ratios = pca.explained_variance_ratio();
        assert!(ratios[0] > 0.999, "{ratios:?}");
    }

    #[test]
    fn loadings_are_unit_norm_and_orthogonal() {
        // Two independent directions + noise-free third.
        let data: Vec<Vec<f64>> = (0..60)
            .map(|i| {
                let a = (i % 6) as f64;
                let b = (i / 6) as f64;
                vec![a + b, a - b, 2.0 * a, b]
            })
            .collect();
        let pca = Pca::fit(&data, 2).unwrap();
        let p0 = pca.loading(0);
        let p1 = pca.loading(1);
        assert!((norm(p0) - 1.0).abs() < 1e-9);
        assert!((norm(p1) - 1.0).abs() < 1e-9);
        assert!(dot(p0, p1).abs() < 1e-6);
    }

    #[test]
    fn transform_inverse_roundtrip_on_full_rank() {
        let data = line_data();
        let pca = Pca::fit(&data, 3).unwrap();
        let sample = &data[7];
        let scores = pca.transform(sample).unwrap();
        let back = pca.inverse_transform(&scores).unwrap();
        for (a, b) in back.iter().zip(sample) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn validates_inputs() {
        assert!(Pca::fit(&[], 1).is_err());
        assert!(Pca::fit(&[vec![]], 1).is_err());
        assert!(Pca::fit(&[vec![1.0], vec![1.0, 2.0]], 1).is_err());
        assert!(Pca::fit(&line_data(), 0).is_err());
    }

    #[test]
    fn transform_checks_width() {
        let pca = Pca::fit(&line_data(), 2).unwrap();
        assert!(pca.transform(&[1.0]).is_err());
        assert!(pca.inverse_transform(&[1.0, 2.0, 3.0, 4.0]).is_err());
    }

    #[test]
    fn components_capped_by_rank() {
        let pca = Pca::fit(&line_data(), 10).unwrap();
        assert!(pca.n_components() <= 3);
    }

    #[test]
    fn mean_is_subtracted() {
        let data: Vec<Vec<f64>> = vec![vec![10.0, 20.0], vec![12.0, 24.0], vec![14.0, 28.0]];
        let pca = Pca::fit(&data, 1).unwrap();
        assert!((pca.mean()[0] - 12.0).abs() < 1e-12);
        assert!((pca.mean()[1] - 24.0).abs() < 1e-12);
        // Center point projects to ~0.
        let scores = pca.transform(&[12.0, 24.0]).unwrap();
        assert!(scores[0].abs() < 1e-9);
    }
}
