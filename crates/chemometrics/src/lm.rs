//! Generic Levenberg–Marquardt least-squares solver.
//!
//! Drives the IHM fit ("these pure components can be found in the total
//! spectrum of a mixture by fitting algorithms", paper §III.B.1) and is
//! reusable for any small nonlinear least-squares problem (e.g. the MS
//! characterization peak fits).

use spectrum::linalg::{solve, Matrix};

use crate::ChemometricsError;

/// Options for [`levenberg_marquardt`].
#[derive(Debug, Clone, PartialEq)]
pub struct LmOptions {
    /// Maximum number of outer iterations.
    pub max_iterations: usize,
    /// Stop when the relative cost improvement falls below this.
    pub cost_tolerance: f64,
    /// Initial damping factor λ.
    pub initial_lambda: f64,
    /// Finite-difference step for the numerical Jacobian.
    pub jacobian_step: f64,
    /// Lower parameter bounds (empty = unbounded).
    pub lower_bounds: Vec<f64>,
    /// Upper parameter bounds (empty = unbounded).
    pub upper_bounds: Vec<f64>,
}

impl Default for LmOptions {
    fn default() -> Self {
        Self {
            max_iterations: 50,
            cost_tolerance: 1e-10,
            initial_lambda: 1e-3,
            jacobian_step: 1e-6,
            lower_bounds: Vec::new(),
            upper_bounds: Vec::new(),
        }
    }
}

/// Result of a Levenberg–Marquardt run.
#[derive(Debug, Clone, PartialEq)]
pub struct LmResult {
    /// Optimized parameters.
    pub parameters: Vec<f64>,
    /// Final cost (half the squared residual norm).
    pub cost: f64,
    /// Iterations performed.
    pub iterations: usize,
    /// Whether the tolerance criterion was met (vs. iteration cap).
    pub converged: bool,
}

/// Minimizes `||residuals(p)||²` starting from `initial`.
///
/// The residual function returns one entry per data point; the Jacobian is
/// computed by central finite differences. Parameters are clamped to the
/// optional bounds after every accepted step.
///
/// # Errors
///
/// Returns [`ChemometricsError::InvalidInput`] if `initial` is empty, the
/// residual function returns an empty vector, or bounds have the wrong
/// length; singular normal equations are handled internally by raising
/// the damping, but a persistently singular system yields
/// [`ChemometricsError::NoConvergence`].
pub fn levenberg_marquardt<F>(
    mut residuals: F,
    initial: &[f64],
    options: &LmOptions,
) -> Result<LmResult, ChemometricsError>
where
    F: FnMut(&[f64]) -> Vec<f64>,
{
    if initial.is_empty() {
        return Err(ChemometricsError::InvalidInput(
            "no parameters to optimize".into(),
        ));
    }
    for bounds in [&options.lower_bounds, &options.upper_bounds] {
        if !bounds.is_empty() && bounds.len() != initial.len() {
            return Err(ChemometricsError::InvalidInput(format!(
                "bounds length {} does not match parameters {}",
                bounds.len(),
                initial.len()
            )));
        }
    }
    let clamp = |p: &mut [f64]| {
        if !options.lower_bounds.is_empty() {
            for (v, &lo) in p.iter_mut().zip(&options.lower_bounds) {
                if *v < lo {
                    *v = lo;
                }
            }
        }
        if !options.upper_bounds.is_empty() {
            for (v, &hi) in p.iter_mut().zip(&options.upper_bounds) {
                if *v > hi {
                    *v = hi;
                }
            }
        }
    };

    let n = initial.len();
    let mut params = initial.to_vec();
    clamp(&mut params);
    let mut r = residuals(&params);
    if r.is_empty() {
        return Err(ChemometricsError::InvalidInput(
            "residual function returned no residuals".into(),
        ));
    }
    let m = r.len();
    let mut cost = 0.5 * r.iter().map(|v| v * v).sum::<f64>();
    let mut lambda = options.initial_lambda;
    let mut converged = false;
    let mut iterations = 0;

    for iter in 0..options.max_iterations {
        iterations = iter + 1;
        // Numerical Jacobian (m × n) by central differences.
        let mut jac = Matrix::zeros(m, n);
        for j in 0..n {
            let h = options.jacobian_step * (1.0 + params[j].abs());
            let mut hi = params.clone();
            hi[j] += h;
            let mut lo = params.clone();
            lo[j] -= h;
            let r_hi = residuals(&hi);
            let r_lo = residuals(&lo);
            if r_hi.len() != m || r_lo.len() != m {
                return Err(ChemometricsError::InvalidInput(
                    "residual length changed between evaluations".into(),
                ));
            }
            for i in 0..m {
                jac.set(i, j, (r_hi[i] - r_lo[i]) / (2.0 * h));
            }
        }
        // Normal equations: (JᵀJ + λ diag(JᵀJ)) δ = -Jᵀ r.
        let jt = jac.transpose();
        let jtj = jt.matmul(&jac);
        let jtr = jt.matvec(&r);
        let mut improved = false;
        for _ in 0..12 {
            let mut damped = jtj.clone();
            for d in 0..n {
                let diag = jtj.get(d, d);
                damped.set(d, d, diag + lambda * diag.max(1e-12));
            }
            let neg_jtr: Vec<f64> = jtr.iter().map(|v| -v).collect();
            let delta = match solve(&damped, &neg_jtr) {
                Ok(d) => d,
                Err(_) => {
                    lambda *= 10.0;
                    continue;
                }
            };
            let mut trial: Vec<f64> = params.iter().zip(&delta).map(|(p, d)| p + d).collect();
            clamp(&mut trial);
            let r_trial = residuals(&trial);
            let cost_trial = 0.5 * r_trial.iter().map(|v| v * v).sum::<f64>();
            if cost_trial < cost {
                let relative = (cost - cost_trial) / cost.max(1e-300);
                params = trial;
                r = r_trial;
                cost = cost_trial;
                lambda = (lambda * 0.3).max(1e-12);
                improved = true;
                if relative < options.cost_tolerance {
                    converged = true;
                }
                break;
            }
            lambda *= 10.0;
            if lambda > 1e12 {
                break;
            }
        }
        if !improved {
            // Cannot improve further: treat as converged at a (local) optimum.
            converged = true;
        }
        if converged {
            break;
        }
    }

    Ok(LmResult {
        parameters: params,
        cost,
        iterations,
        converged,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fits_exponential_decay() {
        // Data from y = 2.0 * exp(-0.5 x); fit amplitude and rate.
        let xs: Vec<f64> = (0..40).map(|i| i as f64 * 0.25).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| 2.0 * (-0.5 * x).exp()).collect();
        let result = levenberg_marquardt(
            |p| {
                xs.iter()
                    .zip(&ys)
                    .map(|(&x, &y)| p[0] * (-p[1] * x).exp() - y)
                    .collect()
            },
            &[1.0, 0.1],
            &LmOptions::default(),
        )
        .unwrap();
        assert!((result.parameters[0] - 2.0).abs() < 1e-6, "{result:?}");
        assert!((result.parameters[1] - 0.5).abs() < 1e-6, "{result:?}");
        assert!(result.converged);
    }

    #[test]
    fn fits_gaussian_peak_parameters() {
        let xs: Vec<f64> = (0..100).map(|i| i as f64 * 0.1).collect();
        let truth = (3.0, 5.0, 0.8); // amplitude, center, sigma
        let ys: Vec<f64> = xs
            .iter()
            .map(|&x| truth.0 * (-((x - truth.1) / truth.2).powi(2) / 2.0).exp())
            .collect();
        let result = levenberg_marquardt(
            |p| {
                xs.iter()
                    .zip(&ys)
                    .map(|(&x, &y)| p[0] * (-((x - p[1]) / p[2]).powi(2) / 2.0).exp() - y)
                    .collect()
            },
            &[1.0, 4.0, 1.5],
            &LmOptions::default(),
        )
        .unwrap();
        assert!((result.parameters[0] - 3.0).abs() < 1e-4);
        assert!((result.parameters[1] - 5.0).abs() < 1e-4);
        assert!((result.parameters[2].abs() - 0.8).abs() < 1e-4);
    }

    #[test]
    fn respects_bounds() {
        // Optimum at p = 5 but upper bound at 2.
        let options = LmOptions {
            lower_bounds: vec![0.0],
            upper_bounds: vec![2.0],
            ..LmOptions::default()
        };
        let result =
            levenberg_marquardt(|p| vec![p[0] - 5.0], &[1.0], &options).unwrap();
        assert!(result.parameters[0] <= 2.0 + 1e-12);
        assert!((result.parameters[0] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn rejects_empty_parameters() {
        assert!(matches!(
            levenberg_marquardt(|_| vec![0.0], &[], &LmOptions::default()),
            Err(ChemometricsError::InvalidInput(_))
        ));
    }

    #[test]
    fn rejects_bad_bounds() {
        let options = LmOptions {
            lower_bounds: vec![0.0, 0.0],
            ..LmOptions::default()
        };
        assert!(matches!(
            levenberg_marquardt(|p| vec![p[0]], &[1.0], &options),
            Err(ChemometricsError::InvalidInput(_))
        ));
    }

    #[test]
    fn already_optimal_start_converges_immediately() {
        let result = levenberg_marquardt(
            |p| vec![p[0] - 1.0, p[0] - 1.0],
            &[1.0],
            &LmOptions::default(),
        )
        .unwrap();
        assert!(result.cost < 1e-20);
        assert!(result.converged);
        assert!(result.iterations <= 2);
    }

    #[test]
    fn handles_overparameterized_problems() {
        // Two parameters, but residual depends only on their sum: the
        // damped system stays solvable and reaches zero cost.
        let result = levenberg_marquardt(
            |p| vec![p[0] + p[1] - 3.0],
            &[0.0, 0.0],
            &LmOptions::default(),
        )
        .unwrap();
        assert!(result.cost < 1e-12, "{result:?}");
    }
}
