//! Property-based tests for the chemometric algorithms.

use chemometrics::lm::{levenberg_marquardt, LmOptions};
use chemometrics::pca::Pca;
use chemometrics::pls::Pls;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn lm_recovers_line_parameters(a in -3.0..3.0f64, b in -3.0..3.0f64) {
        let xs: Vec<f64> = (0..20).map(|i| i as f64 * 0.5).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| a * x + b).collect();
        let result = levenberg_marquardt(
            |p| xs.iter().zip(&ys).map(|(&x, &y)| p[0] * x + p[1] - y).collect(),
            &[0.0, 0.0],
            &LmOptions::default(),
        )
        .expect("lm runs");
        prop_assert!((result.parameters[0] - a).abs() < 1e-6);
        prop_assert!((result.parameters[1] - b).abs() < 1e-6);
    }

    #[test]
    fn lm_cost_never_exceeds_initial(scale in 0.1..5.0f64) {
        let xs: Vec<f64> = (0..15).map(|i| i as f64 * 0.3).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| (scale * x).sin()).collect();
        let initial = [0.5f64];
        let initial_cost: f64 = 0.5
            * xs.iter()
                .zip(&ys)
                .map(|(&x, &y)| ((initial[0] * x).sin() - y).powi(2))
                .sum::<f64>();
        let result = levenberg_marquardt(
            |p| xs.iter().zip(&ys).map(|(&x, &y)| (p[0] * x).sin() - y).collect(),
            &initial,
            &LmOptions::default(),
        )
        .expect("lm runs");
        prop_assert!(result.cost <= initial_cost + 1e-12);
    }

    #[test]
    fn pca_explained_ratios_sum_to_at_most_one(seed_rows in 3usize..20) {
        let data: Vec<Vec<f64>> = (0..seed_rows * 3)
            .map(|i| {
                vec![
                    (i % 7) as f64,
                    ((i * 3) % 5) as f64,
                    ((i * 5) % 11) as f64 * 0.5,
                ]
            })
            .collect();
        let pca = Pca::fit(&data, 3).expect("pca fits");
        let total: f64 = pca.explained_variance_ratio().iter().sum();
        prop_assert!(total <= 1.0 + 1e-9, "total {total}");
        // Ratios are non-increasing.
        let ratios = pca.explained_variance_ratio();
        for w in ratios.windows(2) {
            prop_assert!(w[0] + 1e-12 >= w[1]);
        }
    }

    #[test]
    fn pca_transform_of_mean_is_origin(shift in -10.0..10.0f64) {
        let data: Vec<Vec<f64>> = (0..30)
            .map(|i| vec![shift + (i % 5) as f64, shift - (i % 3) as f64])
            .collect();
        let pca = Pca::fit(&data, 2).expect("pca fits");
        let scores = pca.transform(pca.mean()).expect("widths match");
        for s in scores {
            prop_assert!(s.abs() < 1e-9);
        }
    }

    #[test]
    fn pls_is_exact_on_noiseless_linear_targets(w0 in -2.0..2.0f64, w1 in -2.0..2.0f64) {
        let x: Vec<Vec<f64>> = (0..30)
            .map(|i| vec![(i % 6) as f64, ((i / 6) % 5) as f64, 1.0])
            .collect();
        let y: Vec<Vec<f64>> = x.iter().map(|r| vec![w0 * r[0] + w1 * r[1]]).collect();
        let model = Pls::fit(&x, &y, 3).expect("pls fits");
        for (xi, yi) in x.iter().zip(&y) {
            let pred = model.predict(xi).expect("widths match");
            prop_assert!((pred[0] - yi[0]).abs() < 1e-6, "{} vs {}", pred[0], yi[0]);
        }
    }
}
