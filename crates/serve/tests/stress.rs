//! Concurrency stress tests for the serving engine: many producers
//! against a deliberately small queue, verifying conservation (no request
//! lost or double-completed), backpressure accounting that matches the
//! obs counters, and a clean shutdown drain.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use neural::plan::FrozenPlan;
use neural::spec::{LayerSpec, NetworkSpec};
use neural::Activation;
use serve::{Engine, ModelRegistry, Request, ServeConfig, SubmitError, Ticket};

const INPUT: usize = 4;
const OUTPUT: usize = 8;

/// A dense plan whose output is constantly `marker` — cheap to execute
/// and self-identifying.
fn marker_plan(marker: f32) -> Arc<FrozenPlan> {
    let spec = NetworkSpec::new(INPUT).layer(LayerSpec::Dense {
        units: OUTPUT,
        activation: Activation::Linear,
    });
    let weights = vec![vec![vec![0.0; INPUT * OUTPUT], vec![marker; OUTPUT]]];
    Arc::new(FrozenPlan::from_spec_weights("marker", &spec, &weights).expect("marker plan"))
}

fn registry() -> Arc<ModelRegistry> {
    let registry = Arc::new(ModelRegistry::new());
    registry.publish_plan("m", 1, marker_plan(1.5));
    registry
}

#[test]
fn producers_against_tiny_queue_lose_nothing() {
    // The obs collector is installed for the whole run so the engine's
    // backpressure counter can be cross-checked against ServeMetrics.
    let obs_guard = obs::install(obs::Collector::new());

    const PRODUCERS: usize = 8;
    const PER_PRODUCER: usize = 300;
    let engine = Arc::new(
        Engine::start(
            registry(),
            ServeConfig {
                workers: 2,
                queue_capacity: 4, // tiny on purpose: constant contention
                max_batch: 4,
                max_linger: Duration::from_micros(50),
                default_deadline: Duration::from_secs(60),
            },
        )
        .expect("start engine"),
    );

    let accepted = Arc::new(AtomicU64::new(0));
    let rejected = Arc::new(AtomicU64::new(0));
    let completed = Arc::new(AtomicU64::new(0));
    let mut producers = Vec::new();
    for p in 0..PRODUCERS {
        let engine = Arc::clone(&engine);
        let accepted = Arc::clone(&accepted);
        let rejected = Arc::clone(&rejected);
        let completed = Arc::clone(&completed);
        producers.push(std::thread::spawn(move || {
            let input = vec![p as f32; INPUT];
            let mut tickets: Vec<Ticket> = Vec::new();
            for _ in 0..PER_PRODUCER {
                match engine.submit(Request::new("m", input.clone())) {
                    Ok(ticket) => {
                        accepted.fetch_add(1, Ordering::SeqCst);
                        tickets.push(ticket);
                    }
                    Err(SubmitError::QueueFull { capacity }) => {
                        assert_eq!(capacity, 4);
                        rejected.fetch_add(1, Ordering::SeqCst);
                    }
                    Err(other) => panic!("unexpected submit error: {other:?}"),
                }
            }
            for ticket in tickets {
                let prediction = ticket.wait().expect("accepted request must complete");
                assert_eq!(prediction.output, vec![1.5f32; OUTPUT]);
                completed.fetch_add(1, Ordering::SeqCst);
            }
        }));
    }
    for producer in producers {
        producer.join().expect("producer thread");
    }

    let accepted = accepted.load(Ordering::SeqCst);
    let rejected = rejected.load(Ordering::SeqCst);
    let completed = completed.load(Ordering::SeqCst);

    // Conservation: every submission was either accepted or rejected, and
    // every accepted request completed exactly once (Ticket::wait
    // consumes the ticket, so a double completion would either panic a
    // producer or desynchronize these counts).
    assert_eq!(accepted + rejected, (PRODUCERS * PER_PRODUCER) as u64);
    assert_eq!(completed, accepted);
    assert!(accepted > 0, "some requests must get through");
    assert!(rejected > 0, "a 4-deep queue under 8 producers must bounce");

    // Engine metrics agree with the ground-truth counts...
    let report = engine.metrics().report();
    assert_eq!(report.requests_submitted, accepted);
    assert_eq!(report.requests_rejected, rejected);
    assert_eq!(report.requests_completed, completed);
    assert_eq!(report.requests_failed, 0);
    assert_eq!(report.requests_timed_out, 0);
    assert!(report.queue_depth_high_water <= 4);

    // ...and so does the global obs counter fed by the same events.
    assert_eq!(
        obs_guard
            .collector()
            .counter("serve.rejected")
            .get(),
        rejected,
        "obs backpressure counter must match QueueFull accounting"
    );

    if let Ok(engine) = Arc::try_unwrap(engine) {
        engine.shutdown();
    }
}

#[test]
fn shutdown_drains_without_losing_outstanding_tickets() {
    let engine = Engine::start(
        registry(),
        ServeConfig {
            workers: 2,
            queue_capacity: 1024,
            max_batch: 8,
            max_linger: Duration::from_micros(50),
            default_deadline: Duration::from_secs(60),
        },
    )
    .expect("start engine");

    let tickets: Vec<Ticket> = (0..200)
        .map(|_| {
            engine
                .submit(Request::new("m", vec![0.25; INPUT]))
                .expect("queue is large enough")
        })
        .collect();
    // Shut down with requests still in flight: workers drain the queue
    // before exiting, so every ticket must resolve — served normally or
    // (only if a worker never saw it) with a clean ShuttingDown.
    engine.shutdown();

    let mut served = 0usize;
    for ticket in tickets {
        match ticket.wait() {
            Ok(prediction) => {
                assert_eq!(prediction.output, vec![1.5f32; OUTPUT]);
                served += 1;
            }
            Err(serve::ServeError::ShuttingDown) => {}
            Err(other) => panic!("unexpected completion: {other:?}"),
        }
    }
    assert_eq!(served, 200, "a graceful shutdown drains the full queue");
}
