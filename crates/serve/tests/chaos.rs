//! Chaos tests for the sharded serving tier: deterministic faultsim
//! plans inject worker panics, batch stalls, and registry load errors,
//! and every test pins the conservation invariant — each admitted
//! request reaches exactly one terminal outcome (completed, failed,
//! timed out, or drained) no matter what fails in between.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use faultsim::FaultPlan;
use neural::plan::FrozenPlan;
use neural::spec::{LayerSpec, NetworkSpec};
use neural::Activation;
use serve::{
    HealthState, ModelRegistry, Request, Router, RouterConfig, ServeConfig, ServeError,
    SupervisorConfig, Ticket,
};

/// A dense plan whose output is constantly `marker` (zero weights,
/// `marker` bias): responses reveal exactly which version served them.
fn marker_plan(marker: f32) -> Arc<FrozenPlan> {
    let spec = NetworkSpec::new(4).layer(LayerSpec::Dense {
        units: 2,
        activation: Activation::Linear,
    });
    let weights = vec![vec![vec![0.0; 8], vec![marker; 2]]];
    Arc::new(FrozenPlan::from_spec_weights("marker", &spec, &weights).unwrap())
}

fn registry_with_versions(versions: &[(u32, f32)]) -> Arc<ModelRegistry> {
    let registry = Arc::new(ModelRegistry::new());
    for &(version, marker) in versions {
        registry.publish_plan("m", version, marker_plan(marker));
    }
    registry
}

/// Fast supervision so chaos tests converge in tens of milliseconds.
fn chaos_config(shards: usize) -> RouterConfig {
    RouterConfig {
        shards,
        engine: ServeConfig {
            workers: 1,
            max_batch: 4,
            max_linger: Duration::from_micros(200),
            default_deadline: Duration::from_secs(2),
            ..ServeConfig::default()
        },
        supervisor: SupervisorConfig {
            tick: Duration::from_millis(5),
            stall_deadline: Duration::from_millis(60),
            restart_backoff_base: Duration::from_millis(10),
            max_restart_backoff: Duration::from_millis(100),
            ..SupervisorConfig::default()
        },
        ..RouterConfig::default()
    }
}

/// Polls until every admitted request has a terminal outcome (the
/// conservation sum closes) or the timeout expires.
fn wait_quiesced(router: &Router, timeout: Duration) -> bool {
    let deadline = Instant::now() + timeout;
    loop {
        let total = router.report().total;
        let terminal = total.requests_completed
            + total.requests_failed
            + total.requests_timed_out
            + total.requests_drained;
        if terminal == total.requests_submitted {
            return true;
        }
        if Instant::now() >= deadline {
            return false;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
}

fn wait_for(timeout: Duration, mut condition: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + timeout;
    loop {
        if condition() {
            return true;
        }
        if Instant::now() >= deadline {
            return false;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// Asserts the cross-shard conservation invariant on the final report.
fn assert_conserved(router: &Router) {
    assert!(
        wait_quiesced(router, Duration::from_secs(5)),
        "tier never quiesced: {:?}",
        router.report()
    );
    let report = router.report();
    let terminal = report.total.requests_completed
        + report.total.requests_failed
        + report.total.requests_timed_out
        + report.total.requests_drained;
    assert_eq!(
        report.total.requests_submitted, terminal,
        "conservation violated: {report:?}"
    );
}

#[test]
fn worker_panic_conserves_every_request_and_shard_restarts() {
    // Shard 0's single worker panics on its first batch; shard 1 stays
    // healthy. The supervisor must fail shard 0 over (re-routing its
    // queue), restart it, and no ticket may hang or go missing.
    let registry = registry_with_versions(&[(1, 1.0)]);
    let faults = Arc::new(FaultPlan::new().with_worker_panic(0, 0));
    let router =
        Router::start_with_faults(registry, chaos_config(2), Some(faults)).unwrap();

    let tickets: Vec<Ticket> = (0..120)
        .map(|_| router.submit(Request::new("m", vec![0.0; 4])).unwrap())
        .collect();

    let mut completed = 0u64;
    let mut crashed = 0u64;
    let mut other = 0u64;
    for ticket in tickets {
        // The hard guarantee: wait() always returns.
        match ticket.wait() {
            Ok(prediction) => {
                assert_eq!(prediction.output, vec![1.0, 1.0]);
                completed += 1;
            }
            Err(ServeError::WorkerCrashed) => crashed += 1,
            Err(_) => other += 1,
        }
    }
    assert_eq!(completed + crashed + other, 120);
    // The panicked batch (≤ max_batch requests in the worker's hands)
    // crash-completes; everything queued behind it must be re-routed
    // and served, not lost.
    assert!(crashed <= 4, "at most one batch may crash, got {crashed}");
    assert!(completed >= 116, "re-routed requests must complete, got {completed}");

    assert_conserved(&router);
    let report = router.report();
    assert!(report.failovers >= 1, "supervisor never failed over: {report:?}");
    assert!(
        wait_for(Duration::from_secs(2), || router.report().restarts >= 1),
        "shard 0 was never restarted"
    );
    assert!(wait_for(Duration::from_secs(2), || {
        router.shard_health(0) == Some(HealthState::Healthy)
    }));

    // The recovered tier serves again — including on shard 0.
    for _ in 0..8 {
        let prediction = router
            .submit(Request::new("m", vec![0.0; 4]))
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(prediction.output, vec![1.0, 1.0]);
    }
    assert_conserved(&router);
    router.shutdown();
}

#[test]
fn stalled_shard_fails_over_and_conserves() {
    // Shard 0's first batch stalls for 400ms — far past the 60ms stall
    // deadline. The supervisor must detect the wedged worker via its
    // heartbeat, fail the shard over without joining the stuck thread,
    // and re-route the backlog. The detached worker finishes its batch
    // late; those requests complete rather than vanish.
    let registry = registry_with_versions(&[(1, 1.0)]);
    let faults = Arc::new(FaultPlan::new().with_stall_batch(0, 0, 400));
    let router =
        Router::start_with_faults(registry, chaos_config(2), Some(faults)).unwrap();

    let tickets: Vec<Ticket> = (0..80)
        .map(|_| router.submit(Request::new("m", vec![0.0; 4])).unwrap())
        .collect();
    for ticket in tickets {
        match ticket.wait() {
            Ok(prediction) => assert_eq!(prediction.output, vec![1.0, 1.0]),
            Err(err) => panic!("a stall must delay requests, not fail them: {err}"),
        }
    }

    assert_conserved(&router);
    let report = router.report();
    assert!(report.failovers >= 1, "stall was never detected: {report:?}");
    assert_eq!(report.total.requests_failed, 0, "{report:?}");
    router.shutdown();
}

#[test]
fn injected_registry_load_error_aborts_the_upgrade_cleanly() {
    let registry = registry_with_versions(&[(1, 1.0), (2, 2.0)]);
    // Load 0 is the initial pin-to-v1 swap; the injected error hits
    // load 1 — the upgrade attempt.
    let faults = Arc::new(FaultPlan::new().with_registry_load_error(1));
    let router =
        Router::start_with_faults(registry, chaos_config(2), Some(faults)).unwrap();
    router.rolling_swap("m", 1).unwrap();

    // First upgrade attempt hits the injected load error before any
    // shard is touched.
    assert!(matches!(router.rolling_swap("m", 2), Err(ServeError::Store(_))));
    // The fleet still serves v1 and no shard is stuck cordoned.
    let prediction = router
        .submit(Request::new("m", vec![0.0; 4]))
        .unwrap()
        .wait()
        .unwrap();
    assert_eq!(prediction.model_version, 1);

    // The retry (fault fires once) completes the upgrade.
    let swap = router.rolling_swap("m", 2).unwrap();
    assert_eq!(swap.shards_swapped, 2);
    let prediction = router
        .submit(Request::new("m", vec![0.0; 4]))
        .unwrap()
        .wait()
        .unwrap();
    assert_eq!(prediction.model_version, 2);
    assert_conserved(&router);
    router.shutdown();
}

#[test]
fn canary_crash_mid_upgrade_rolls_back_and_recovers() {
    // Shard 0's worker panics on its very first batch — which is the
    // canary request of the rolling upgrade. The swap must fail with a
    // canary error, roll the shard's pin back, and leave the tier
    // consistent; after the supervisor restarts the shard, the upgrade
    // succeeds.
    let registry = registry_with_versions(&[(1, 1.0), (2, 2.0)]);
    let faults = Arc::new(FaultPlan::new().with_worker_panic(0, 0));
    let router =
        Router::start_with_faults(registry, chaos_config(2), Some(faults)).unwrap();

    match router.rolling_swap("m", 2) {
        Err(ServeError::CanaryFailed { version: 2, .. }) => {}
        other => panic!("expected a canary failure, got {other:?}"),
    }
    // Conservation holds even for the crashed canary request itself.
    assert_conserved(&router);

    // Supervisor restarts the shard; the retried upgrade goes through.
    assert!(
        wait_for(Duration::from_secs(2), || {
            router.shard_health(0) == Some(HealthState::Healthy) && router.report().restarts >= 1
        }),
        "shard 0 never recovered: {:?}",
        router.report()
    );
    let swap = router.rolling_swap("m", 2).unwrap();
    assert_eq!(swap.shards_swapped, 2);
    let prediction = router
        .submit(Request::new("m", vec![0.0; 4]))
        .unwrap()
        .wait()
        .unwrap();
    assert_eq!(prediction.model_version, 2);
    assert_conserved(&router);
    router.shutdown();
}

#[test]
fn rolling_swap_drops_nothing_and_serves_no_stale_version() {
    // The zero-drop invariant under live traffic: a rolling upgrade
    // from v1 to v2 while submitters hammer the tier must lose no
    // in-flight request (no crash/drain/timeout terminals), and every
    // request submitted after the swap completes must be served by v2.
    let registry = registry_with_versions(&[(1, 1.0), (2, 2.0)]);
    let mut config = chaos_config(2);
    config.engine.workers = 2;
    let router = Arc::new(Router::start(registry, config).unwrap());
    router.rolling_swap("m", 1).unwrap();

    let stop = Arc::new(AtomicBool::new(false));
    let submitter = {
        let router = Arc::clone(&router);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut outcomes: Vec<(Ticket, Instant)> = Vec::new();
            while !stop.load(Ordering::Relaxed) {
                if let Ok(ticket) = router.submit(Request::new("m", vec![0.0; 4])) {
                    outcomes.push((ticket, Instant::now()));
                }
                std::thread::sleep(Duration::from_micros(300));
            }
            outcomes
        })
    };

    std::thread::sleep(Duration::from_millis(20));
    let swap = router.rolling_swap("m", 2).unwrap();
    let swap_done = Instant::now();
    assert_eq!(swap.shards_swapped, 2);
    std::thread::sleep(Duration::from_millis(30));
    stop.store(true, Ordering::Relaxed);
    let outcomes = submitter.join().unwrap();
    assert!(outcomes.len() > 20, "submitter barely ran: {}", outcomes.len());

    for (ticket, submitted_at) in outcomes {
        let prediction = ticket
            .wait()
            .expect("a rolling swap must not fail any in-flight request");
        let marker = prediction.model_version as f32;
        assert_eq!(
            prediction.output,
            vec![marker, marker],
            "torn or mismatched response"
        );
        if submitted_at >= swap_done {
            assert_eq!(
                prediction.model_version, 2,
                "stale version served after the swap completed"
            );
        }
    }

    assert_conserved(&router);
    let report = router.report();
    assert_eq!(report.total.requests_failed, 0, "dropped requests: {report:?}");
    assert_eq!(report.total.requests_drained, 0, "drained mid-swap: {report:?}");
    assert_eq!(report.total.requests_timed_out, 0, "timed out mid-swap: {report:?}");
    if let Ok(router) = Arc::try_unwrap(router) {
        router.shutdown();
    }
}
