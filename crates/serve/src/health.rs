//! Per-shard health: worker heartbeats for stall detection, and the
//! supervisor-driven health state machine with a circuit breaker.
//!
//! Health is advisory routing state, not a lock: the router reads it
//! with relaxed atomics on every submission, and the supervisor writes
//! it from its tick loop. A shard that looks Healthy but fails between
//! the check and the push still resolves every ticket through the
//! engine's terminal-completion guarantees.

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicU8, Ordering};
use std::time::{Duration, Instant};

/// Routing-facing state of one shard, driven by the supervisor from
/// heartbeats and error-rate tracking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthState {
    /// Accepting traffic normally.
    Healthy,
    /// Accepting traffic, but the circuit breaker recently opened or the
    /// error rate is elevated — the router prefers siblings.
    Degraded,
    /// Dead or stalled; the supervisor is failing it over / restarting
    /// it. The router never picks a Down shard.
    Down,
}

impl std::fmt::Display for HealthState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HealthState::Healthy => write!(f, "healthy"),
            HealthState::Degraded => write!(f, "degraded"),
            HealthState::Down => write!(f, "down"),
        }
    }
}

const STATE_HEALTHY: u8 = 0;
const STATE_DEGRADED: u8 = 1;
const STATE_DOWN: u8 = 2;

/// Per-worker busy markers, read by the supervisor's stall detector.
///
/// A worker marks itself busy when it pops a batch and idle when the
/// batch completes; a worker that stays busy past the stall deadline
/// (wedged predict, injected stall) flags the shard for failover.
#[derive(Debug)]
pub(crate) struct Heartbeat {
    epoch: Instant,
    /// Per-worker busy-since timestamp in ns-since-epoch, offset by +1
    /// so that 0 means idle.
    busy_since: Vec<AtomicU64>,
}

impl Heartbeat {
    pub(crate) fn new(workers: usize) -> Self {
        Self {
            epoch: Instant::now(),
            busy_since: (0..workers).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    fn now_ns(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    pub(crate) fn mark_busy(&self, worker: usize) {
        if let Some(slot) = self.busy_since.get(worker) {
            slot.store(self.now_ns().saturating_add(1), Ordering::Relaxed);
        }
    }

    pub(crate) fn mark_idle(&self, worker: usize) {
        if let Some(slot) = self.busy_since.get(worker) {
            slot.store(0, Ordering::Relaxed);
        }
    }

    /// Longest time any worker has been busy on its current batch
    /// (zero when all idle).
    pub(crate) fn longest_busy(&self) -> Duration {
        let now = self.now_ns();
        let longest = self
            .busy_since
            .iter()
            .map(|slot| match slot.load(Ordering::Relaxed) {
                0 => 0,
                since => now.saturating_sub(since - 1),
            })
            .max()
            .unwrap_or(0);
        Duration::from_nanos(longest)
    }
}

/// Atomic health record for one shard: state machine, cordon flag for
/// rolling upgrades, and a consecutive-failure circuit breaker.
#[derive(Debug)]
pub(crate) struct ShardHealth {
    state: AtomicU8,
    cordoned: AtomicBool,
    consecutive_failures: AtomicU32,
    /// ns-since-epoch until which the circuit stays open (0 = closed).
    circuit_open_until: AtomicU64,
    epoch: Instant,
}

impl ShardHealth {
    pub(crate) fn new() -> Self {
        Self {
            state: AtomicU8::new(STATE_HEALTHY),
            cordoned: AtomicBool::new(false),
            consecutive_failures: AtomicU32::new(0),
            circuit_open_until: AtomicU64::new(0),
            epoch: Instant::now(),
        }
    }

    fn now_ns(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    pub(crate) fn state(&self) -> HealthState {
        match self.state.load(Ordering::Relaxed) {
            STATE_HEALTHY => HealthState::Healthy,
            STATE_DEGRADED => HealthState::Degraded,
            _ => HealthState::Down,
        }
    }

    pub(crate) fn set_state(&self, state: HealthState) {
        let raw = match state {
            HealthState::Healthy => STATE_HEALTHY,
            HealthState::Degraded => STATE_DEGRADED,
            HealthState::Down => STATE_DOWN,
        };
        self.state.store(raw, Ordering::Relaxed);
    }

    pub(crate) fn cordon(&self) {
        self.cordoned.store(true, Ordering::Relaxed);
    }

    pub(crate) fn uncordon(&self) {
        self.cordoned.store(false, Ordering::Relaxed);
    }

    pub(crate) fn is_cordoned(&self) -> bool {
        self.cordoned.load(Ordering::Relaxed)
    }

    /// Supervisor hook: `failures` new request failures observed this
    /// tick. Crossing `threshold` consecutive failed ticks opens the
    /// circuit for `cooldown` and degrades the shard.
    pub(crate) fn record_failures(&self, failures: u64, threshold: u32, cooldown: Duration) -> bool {
        if failures == 0 {
            self.consecutive_failures.store(0, Ordering::Relaxed);
            return false;
        }
        let streak = self.consecutive_failures.fetch_add(1, Ordering::Relaxed) + 1;
        if streak >= threshold {
            let until = self
                .now_ns()
                .saturating_add(u64::try_from(cooldown.as_nanos()).unwrap_or(u64::MAX));
            self.circuit_open_until.store(until, Ordering::Relaxed);
            if self.state() == HealthState::Healthy {
                self.set_state(HealthState::Degraded);
            }
            return true;
        }
        false
    }

    /// `true` while the circuit breaker holds traffic away from this
    /// shard. Expiry closes the circuit on the next read.
    pub(crate) fn circuit_open(&self) -> bool {
        let until = self.circuit_open_until.load(Ordering::Relaxed);
        if until == 0 {
            return false;
        }
        if self.now_ns() >= until {
            self.circuit_open_until.store(0, Ordering::Relaxed);
            self.consecutive_failures.store(0, Ordering::Relaxed);
            if self.state() == HealthState::Degraded {
                self.set_state(HealthState::Healthy);
            }
            return false;
        }
        true
    }

    /// Whether the router may send new traffic here: not cordoned, not
    /// Down, circuit closed.
    pub(crate) fn accepts_traffic(&self) -> bool {
        !self.is_cordoned() && self.state() != HealthState::Down && !self.circuit_open()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heartbeat_tracks_longest_busy_worker() {
        let hb = Heartbeat::new(2);
        assert_eq!(hb.longest_busy(), Duration::ZERO);
        hb.mark_busy(0);
        std::thread::sleep(Duration::from_millis(5));
        assert!(hb.longest_busy() >= Duration::from_millis(5));
        hb.mark_idle(0);
        assert_eq!(hb.longest_busy(), Duration::ZERO);
        // Out-of-range workers are ignored, not a panic.
        hb.mark_busy(9);
        hb.mark_idle(9);
    }

    #[test]
    fn circuit_breaker_opens_after_threshold_and_recloses() {
        let health = ShardHealth::new();
        assert!(health.accepts_traffic());
        assert!(!health.record_failures(3, 2, Duration::from_millis(20)));
        assert!(health.record_failures(1, 2, Duration::from_millis(20)));
        assert!(health.circuit_open());
        assert_eq!(health.state(), HealthState::Degraded);
        assert!(!health.accepts_traffic());
        std::thread::sleep(Duration::from_millis(25));
        assert!(!health.circuit_open(), "cooldown must expire");
        assert_eq!(health.state(), HealthState::Healthy);
        assert!(health.accepts_traffic());
    }

    #[test]
    fn clean_ticks_reset_the_failure_streak() {
        let health = ShardHealth::new();
        assert!(!health.record_failures(1, 3, Duration::from_secs(1)));
        assert!(!health.record_failures(0, 3, Duration::from_secs(1)));
        assert!(!health.record_failures(1, 3, Duration::from_secs(1)));
        assert!(!health.record_failures(1, 3, Duration::from_secs(1)));
        assert!(health.record_failures(1, 3, Duration::from_secs(1)));
    }

    #[test]
    fn cordon_and_down_block_traffic() {
        let health = ShardHealth::new();
        health.cordon();
        assert!(!health.accepts_traffic());
        health.uncordon();
        assert!(health.accepts_traffic());
        health.set_state(HealthState::Down);
        assert!(!health.accepts_traffic());
        health.set_state(HealthState::Healthy);
        assert!(health.accepts_traffic());
    }
}
