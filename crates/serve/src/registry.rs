//! Model registry: named, versioned frozen plans with atomic hot-swap.

use std::collections::BTreeMap;
use std::sync::Arc;

use datastore::Store;
use neural::export::ExportedNetwork;
use neural::plan::FrozenPlan;
use parking_lot::RwLock;

use crate::ServeError;

/// Metadata parameter naming the model on deployed documents
/// (`spectroai::pipeline::deploy` writes it; [`ModelRegistry::load_from_store`]
/// reads it).
pub const MODEL_PARAM: &str = "model";
/// Metadata parameter carrying the model version on deployed documents.
pub const VERSION_PARAM: &str = "model_version";

/// Frozen plans keyed by model name and version.
///
/// Publishing compiles and validates the artifact *outside* the lock,
/// then swaps one `Arc` pointer under a write lock — requests that
/// already resolved a plan keep executing on it, so a hot-swap never
/// tears a model mid-request.
#[derive(Debug, Default)]
pub struct ModelRegistry {
    models: RwLock<BTreeMap<String, BTreeMap<u32, Arc<FrozenPlan>>>>,
}

impl ModelRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Compiles `exported` and publishes it as `name`/`version`,
    /// replacing any plan previously at that slot. Returns the installed
    /// plan.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Neural`] if the artifact fails validation or
    /// compilation.
    pub fn publish(
        &self,
        name: &str,
        version: u32,
        exported: &ExportedNetwork,
    ) -> Result<Arc<FrozenPlan>, ServeError> {
        let plan = Arc::new(FrozenPlan::compile(exported)?);
        self.publish_plan(name, version, Arc::clone(&plan));
        Ok(plan)
    }

    /// Publishes an already-compiled plan as `name`/`version`.
    pub fn publish_plan(&self, name: &str, version: u32, plan: Arc<FrozenPlan>) {
        self.models
            .write()
            .entry(name.to_string())
            .or_default()
            .insert(version, plan);
    }

    /// Compiles `exported` and runs `gate` over the candidate plan
    /// *before* it becomes visible; only a gate pass inserts it.
    ///
    /// This closes the publication race the plain
    /// [`ModelRegistry::publish`] + check-after-insert pattern had: a
    /// concurrent reader calling [`ModelRegistry::latest`] /
    /// [`ModelRegistry::resolve`] with `version: None` between the insert
    /// and the gate verdict would observe (and start serving) a version
    /// the guard had not yet cleared. With `publish_gated` the candidate
    /// lives only on this call's stack until the gate approves, so an
    /// un-gated version is unobservable by construction.
    ///
    /// # Errors
    ///
    /// [`ServeError::Neural`] if compilation/validation fails,
    /// [`ServeError::GateRejected`] (carrying the gate's reason) if the
    /// gate vetoes the candidate. Either way the registry is unchanged.
    pub fn publish_gated(
        &self,
        name: &str,
        version: u32,
        exported: &ExportedNetwork,
        gate: impl FnOnce(&FrozenPlan) -> Result<(), String>,
    ) -> Result<Arc<FrozenPlan>, ServeError> {
        let plan = Arc::new(FrozenPlan::compile(exported)?);
        gate(&plan).map_err(|reason| ServeError::GateRejected {
            model: name.to_string(),
            version,
            reason,
        })?;
        self.publish_plan(name, version, Arc::clone(&plan));
        Ok(plan)
    }

    /// The newest published version of `name`, if any. Because every
    /// publication path inserts only fully validated (and, via
    /// [`ModelRegistry::publish_gated`], gated) plans, a version returned
    /// here is always safe to serve.
    pub fn latest(&self, name: &str) -> Option<u32> {
        self.models
            .read()
            .get(name)
            .and_then(|versions| versions.keys().next_back().copied())
    }

    /// Removes one version (or the whole model, if no versions remain).
    /// Returns `true` if something was removed. In-flight requests on the
    /// retired plan still finish.
    pub fn retire(&self, name: &str, version: u32) -> bool {
        let mut models = self.models.write();
        let Some(versions) = models.get_mut(name) else {
            return false;
        };
        let removed = versions.remove(&version).is_some();
        if versions.is_empty() {
            models.remove(name);
        }
        removed
    }

    /// Resolves a model: a specific version, or the newest one when
    /// `version` is `None`. Returns the resolved version with the plan.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::UnknownModel`] if nothing matches.
    pub fn resolve(
        &self,
        name: &str,
        version: Option<u32>,
    ) -> Result<(u32, Arc<FrozenPlan>), ServeError> {
        let models = self.models.read();
        let unknown = || ServeError::UnknownModel {
            name: name.to_string(),
            version,
        };
        let versions = models.get(name).ok_or_else(unknown)?;
        match version {
            Some(v) => versions
                .get(&v)
                .map(|plan| (v, Arc::clone(plan)))
                .ok_or_else(unknown),
            None => versions
                .iter()
                .next_back()
                .map(|(&v, plan)| (v, Arc::clone(plan)))
                .ok_or_else(unknown),
        }
    }

    /// Published model names, sorted.
    pub fn names(&self) -> Vec<String> {
        self.models.read().keys().cloned().collect()
    }

    /// Published versions of one model, ascending (empty if unknown).
    pub fn versions(&self, name: &str) -> Vec<u32> {
        self.models
            .read()
            .get(name)
            .map(|v| v.keys().copied().collect())
            .unwrap_or_default()
    }

    /// Loads every deployed artifact from a [`Store`] collection.
    ///
    /// Documents are expected in the layout written by the core
    /// pipeline's deploy stage: an [`ExportedNetwork`] payload with
    /// [`MODEL_PARAM`] / [`VERSION_PARAM`] metadata. Documents without a
    /// version parameter fall back to their logical sequence number, so
    /// re-deployments naturally become newer versions. Returns the number
    /// of plans published.
    ///
    /// The load is all-or-nothing: every document is deserialized,
    /// compiled and validated into a staging set first, and only a fully
    /// successful staging pass is committed (under one write lock). A
    /// reader racing the load therefore sees either none of the
    /// collection's plans or all of them — never a half-loaded registry
    /// whose `latest()` points at an artifact that a later document would
    /// have invalidated the load with.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Store`] if a payload does not deserialize,
    /// or [`ServeError::Neural`] if an artifact fails validation. On
    /// error the registry is untouched.
    pub fn load_from_store(&self, store: &Store, collection: &str) -> Result<usize, ServeError> {
        let mut staged: Vec<(String, u32, Arc<FrozenPlan>)> = Vec::new();
        for doc in store.collection(collection) {
            let exported: ExportedNetwork = serde_json::from_value(doc.payload)
                .map_err(|e| ServeError::Store(format!("document {}: {e}", doc.id)))?;
            let name = doc
                .metadata
                .params
                .get(MODEL_PARAM)
                .cloned()
                .unwrap_or_else(|| exported.name.clone());
            let version = doc
                .metadata
                .params
                .get(VERSION_PARAM)
                .and_then(|v| v.parse::<u32>().ok())
                .unwrap_or(doc.metadata.sequence as u32);
            staged.push((name, version, Arc::new(FrozenPlan::compile(&exported)?)));
        }
        let loaded = staged.len();
        let mut models = self.models.write();
        for (name, version, plan) in staged {
            models.entry(name).or_default().insert(version, plan);
        }
        Ok(loaded)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datastore::Metadata;
    use neural::spec::{LayerSpec, NetworkSpec};
    use neural::Activation;

    fn exported(seed: u64) -> ExportedNetwork {
        let spec = NetworkSpec::new(3).layer(LayerSpec::Dense {
            units: 2,
            activation: Activation::Linear,
        });
        let net = spec.build(seed).unwrap();
        ExportedNetwork::from_network(spec, &net, "ms")
    }

    #[test]
    fn resolve_prefers_latest_version() {
        let registry = ModelRegistry::new();
        registry.publish("ms", 1, &exported(1)).unwrap();
        registry.publish("ms", 3, &exported(3)).unwrap();
        registry.publish("ms", 2, &exported(2)).unwrap();
        let (version, _) = registry.resolve("ms", None).unwrap();
        assert_eq!(version, 3);
        let (version, _) = registry.resolve("ms", Some(2)).unwrap();
        assert_eq!(version, 2);
        assert_eq!(registry.versions("ms"), vec![1, 2, 3]);
        assert_eq!(registry.names(), vec!["ms".to_string()]);
    }

    #[test]
    fn unknown_models_are_structured_errors() {
        let registry = ModelRegistry::new();
        registry.publish("ms", 1, &exported(1)).unwrap();
        assert!(matches!(
            registry.resolve("nope", None),
            Err(ServeError::UnknownModel { .. })
        ));
        assert!(matches!(
            registry.resolve("ms", Some(9)),
            Err(ServeError::UnknownModel {
                version: Some(9),
                ..
            })
        ));
    }

    #[test]
    fn publish_hot_swaps_atomically() {
        let registry = ModelRegistry::new();
        let old = registry.publish("ms", 1, &exported(1)).unwrap();
        let (_, resolved) = registry.resolve("ms", Some(1)).unwrap();
        assert!(Arc::ptr_eq(&old, &resolved));
        let new = registry.publish("ms", 1, &exported(2)).unwrap();
        let (_, resolved) = registry.resolve("ms", Some(1)).unwrap();
        assert!(Arc::ptr_eq(&new, &resolved));
        // The old Arc is still intact for in-flight work.
        assert_eq!(old.input_len(), 3);
    }

    #[test]
    fn retire_removes_versions_then_model() {
        let registry = ModelRegistry::new();
        registry.publish("ms", 1, &exported(1)).unwrap();
        registry.publish("ms", 2, &exported(2)).unwrap();
        assert!(registry.retire("ms", 1));
        assert!(!registry.retire("ms", 1));
        assert!(registry.retire("ms", 2));
        assert!(registry.names().is_empty());
    }

    #[test]
    fn rejects_invalid_artifacts() {
        let registry = ModelRegistry::new();
        let mut bad = exported(1);
        bad.weights[0][1].pop();
        assert!(matches!(
            registry.publish("ms", 1, &bad),
            Err(ServeError::Neural(_))
        ));
    }

    #[test]
    fn load_from_store_publishes_deployed_models() {
        let store = Store::in_memory();
        store
            .insert(
                "deployed_models",
                Metadata::created_by("deploy")
                    .with_param(MODEL_PARAM, "ms")
                    .with_param(VERSION_PARAM, "7"),
                &exported(1),
            )
            .unwrap();
        // No version param: falls back to the document sequence.
        store
            .insert(
                "deployed_models",
                Metadata::created_by("deploy").with_param(MODEL_PARAM, "nmr"),
                &exported(2),
            )
            .unwrap();
        let registry = ModelRegistry::new();
        let loaded = registry.load_from_store(&store, "deployed_models").unwrap();
        assert_eq!(loaded, 2);
        assert_eq!(registry.resolve("ms", None).unwrap().0, 7);
        assert!(registry.resolve("nmr", None).unwrap().0 >= 1);
    }

    #[test]
    fn latest_tracks_newest_version() {
        let registry = ModelRegistry::new();
        assert_eq!(registry.latest("ms"), None);
        registry.publish("ms", 2, &exported(1)).unwrap();
        registry.publish("ms", 5, &exported(2)).unwrap();
        assert_eq!(registry.latest("ms"), Some(5));
        registry.retire("ms", 5);
        assert_eq!(registry.latest("ms"), Some(2));
    }

    #[test]
    fn gate_rejection_leaves_registry_untouched() {
        let registry = ModelRegistry::new();
        registry.publish("ms", 1, &exported(1)).unwrap();
        let err = registry
            .publish_gated("ms", 2, &exported(2), |_| Err("loss diverged".into()))
            .unwrap_err();
        assert!(matches!(
            err,
            ServeError::GateRejected { version: 2, .. }
        ));
        assert_eq!(registry.latest("ms"), Some(1));
        assert_eq!(registry.versions("ms"), vec![1]);
        // A passing gate publishes normally.
        registry
            .publish_gated("ms", 2, &exported(2), |plan| {
                if plan.input_len() == 3 {
                    Ok(())
                } else {
                    Err("wrong input width".into())
                }
            })
            .unwrap();
        assert_eq!(registry.latest("ms"), Some(2));
    }

    /// Regression test for the publication race: while a deploy is
    /// mid-flight (compiling, gating, even failing its gate), concurrent
    /// `latest()` / `resolve(None)` readers must never observe the
    /// candidate version. With the old insert-then-check pattern a reader
    /// could resolve the un-gated version in the window before the gate
    /// verdict; `publish_gated` keeps the candidate off the registry
    /// until the gate passes.
    #[test]
    fn readers_never_observe_ungated_versions() {
        use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

        let registry = Arc::new(ModelRegistry::new());
        registry.publish("ms", 1, &exported(1)).unwrap();
        let stop = Arc::new(AtomicBool::new(false));
        let observations = Arc::new(AtomicU64::new(0));

        let reader = {
            let registry = Arc::clone(&registry);
            let stop = Arc::clone(&stop);
            let observations = Arc::clone(&observations);
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    if let Some(latest) = registry.latest("ms") {
                        // Version 2's gate always rejects below, so 2 must
                        // never become the newest visible version; version
                        // 3 only becomes visible *after* its gate passed.
                        assert!(latest == 1 || latest == 3, "observed un-gated v{latest}");
                        let (resolved, _) = registry.resolve("ms", None).unwrap();
                        assert!(resolved == 1 || resolved == 3);
                        observations.fetch_add(1, Ordering::Relaxed);
                    }
                }
            })
        };

        // Keep hammering rejected publications until the reader has
        // demonstrably raced a healthy number of them.
        let mut rounds = 0u64;
        while observations.load(Ordering::Relaxed) < 200 && rounds < 200_000 {
            let err = registry
                .publish_gated("ms", 2, &exported(2), |_| Err("divergence guard".into()))
                .unwrap_err();
            assert!(matches!(err, ServeError::GateRejected { .. }));
            rounds += 1;
        }
        registry
            .publish_gated("ms", 3, &exported(3), |_| Ok(()))
            .unwrap();
        stop.store(true, Ordering::Relaxed);
        reader.join().unwrap();
        assert!(
            observations.load(Ordering::Relaxed) > 0,
            "reader never ran concurrently"
        );
        assert_eq!(registry.versions("ms"), vec![1, 3]);
    }

    #[test]
    fn load_from_store_is_all_or_nothing() {
        let store = Store::in_memory();
        store
            .insert(
                "deployed_models",
                Metadata::created_by("deploy")
                    .with_param(MODEL_PARAM, "ms")
                    .with_param(VERSION_PARAM, "4"),
                &exported(1),
            )
            .unwrap();
        let mut bad = exported(2);
        bad.weights[0][1].pop();
        store
            .insert(
                "deployed_models",
                Metadata::created_by("deploy")
                    .with_param(MODEL_PARAM, "ms")
                    .with_param(VERSION_PARAM, "5"),
                &bad,
            )
            .unwrap();
        let registry = ModelRegistry::new();
        assert!(registry.load_from_store(&store, "deployed_models").is_err());
        // The valid v4 document must not have been committed either.
        assert_eq!(registry.latest("ms"), None);
        assert!(registry.names().is_empty());
    }

    #[test]
    fn load_from_store_rejects_foreign_payloads() {
        let store = Store::in_memory();
        store
            .insert(
                "deployed_models",
                Metadata::created_by("deploy"),
                &serde_json::json!({"not": "a network"}),
            )
            .unwrap();
        let registry = ModelRegistry::new();
        assert!(matches!(
            registry.load_from_store(&store, "deployed_models"),
            Err(ServeError::Store(_))
        ));
    }
}
