//! Batched, multi-threaded inference serving.
//!
//! The paper's Tool 4 exports trained ANNs for deployment; this crate is
//! the deployment side (DESIGN.md §8): it loads
//! [`neural::export::ExportedNetwork`] artifacts into immutable
//! [`neural::plan::FrozenPlan`]s and serves predictions through a bounded
//! submission queue drained by a pool of worker threads.
//!
//! * [`ModelRegistry`] — models keyed by name + version, loadable from a
//!   [`datastore::Store`] collection, hot-swappable: publishing a new
//!   version atomically replaces the plan while requests already in
//!   flight finish on the plan they resolved at submit time (no request
//!   ever observes a torn model).
//! * [`Engine`] — bounded queue + workers. The queue applies explicit
//!   backpressure: when full, [`Engine::submit`] returns
//!   [`SubmitError::QueueFull`] immediately instead of blocking, and
//!   [`Engine::submit_with_retry`] layers the same bounded
//!   exponential-backoff idiom as `spectroai::recovery` on top.
//! * micro-batching — each worker coalesces queued requests that resolved
//!   to the same plan into one contiguous input block (bounded by
//!   `max_batch` and a `max_linger` wait), so the dense/conv kernels run
//!   back to back over one allocation. Per-sample arithmetic is
//!   unchanged, so batched outputs are bit-identical to sequential
//!   [`neural::Network::predict`].
//! * [`ServeMetrics`] — atomic counters plus `obs` power-of-two
//!   histograms for latency (p50/p95/p99) and batch sizes, snapshotted
//!   into a serializable [`MetricsReport`]. The engine also emits
//!   `serve.batch`/`serve.request` spans and a `serve.queue_depth` gauge
//!   whenever an `obs::Collector` is installed (see the workspace `obs`
//!   crate and `serve_load --trace`).
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use neural::export::ExportedNetwork;
//! use neural::spec::{LayerSpec, NetworkSpec};
//! use neural::Activation;
//! use serve::{Engine, ModelRegistry, Request, ServeConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let spec = NetworkSpec::new(4).layer(LayerSpec::Dense {
//!     units: 2,
//!     activation: Activation::Softmax,
//! });
//! let mut net = spec.build(3)?;
//! let exported = ExportedNetwork::from_network(spec, &net, "demo");
//!
//! let registry = Arc::new(ModelRegistry::new());
//! registry.publish("demo", 1, &exported)?;
//! let engine = Engine::start(registry, ServeConfig::default())?;
//!
//! let ticket = engine.submit(Request::new("demo", vec![0.1, 0.2, 0.3, 0.4]))?;
//! let prediction = ticket.wait()?;
//! assert_eq!(prediction.output, net.predict(&[0.1, 0.2, 0.3, 0.4]));
//! engine.shutdown();
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod health;
mod metrics;
mod queue;
mod registry;
mod router;
mod shard;

pub use engine::{Engine, Prediction, Request, RetryPolicy, ServeConfig, Ticket};
pub use health::HealthState;
pub use metrics::{MetricsReport, ServeMetrics};
pub use registry::ModelRegistry;
pub use router::{
    AdmissionConfig, Router, RouterConfig, RouterReport, ShardReport, SupervisorConfig, SwapReport,
};

use std::fmt;

use neural::NeuralError;

/// Why a submission was not accepted. Submission errors are immediate —
/// [`Engine::submit`] never blocks the caller.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SubmitError {
    /// The bounded queue is at capacity — explicit backpressure. Retry
    /// later (or use [`Engine::submit_with_retry`]).
    QueueFull {
        /// The queue's configured capacity.
        capacity: usize,
    },
    /// The engine is shutting down and accepts no new work.
    ShuttingDown,
    /// No model with this name (and version, if one was requested) is
    /// published.
    UnknownModel {
        /// The requested model name.
        name: String,
        /// The requested version, if any.
        version: Option<u32>,
    },
    /// The request input does not match the resolved model's input shape.
    ShapeMismatch {
        /// Input length the model expects.
        expected: usize,
        /// Input length the request carried.
        actual: usize,
    },
    /// Admission control predicts the request would sit in queue past its
    /// deadline — rejected up front instead of timing out after the wait.
    WouldMissDeadline {
        /// Estimated queue-plus-execution time (µs).
        estimated_us: u64,
        /// The request's deadline budget (µs).
        deadline_us: u64,
    },
    /// The router's in-flight cap (global or per-shard on every shard)
    /// is reached — load-shedding backpressure.
    Overloaded {
        /// Requests currently in flight.
        in_flight: u64,
        /// The cap that was hit.
        limit: u64,
    },
    /// Every shard is Down, cordoned, or circuit-broken.
    NoHealthyShard,
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::QueueFull { capacity } => {
                write!(f, "submission queue full (capacity {capacity})")
            }
            SubmitError::ShuttingDown => write!(f, "engine is shutting down"),
            SubmitError::UnknownModel { name, version } => match version {
                Some(v) => write!(f, "unknown model {name} v{v}"),
                None => write!(f, "unknown model {name}"),
            },
            SubmitError::ShapeMismatch { expected, actual } => {
                write!(f, "input shape mismatch: model expects {expected}, got {actual}")
            }
            SubmitError::WouldMissDeadline {
                estimated_us,
                deadline_us,
            } => write!(
                f,
                "admission control: estimated {estimated_us}µs exceeds deadline {deadline_us}µs"
            ),
            SubmitError::Overloaded { in_flight, limit } => {
                write!(f, "overloaded: {in_flight} requests in flight (limit {limit})")
            }
            SubmitError::NoHealthyShard => write!(f, "no healthy shard available"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Error type for serving: registry operations and request completion.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ServeError {
    /// No such model/version in the registry.
    UnknownModel {
        /// The requested model name.
        name: String,
        /// The requested version, if any.
        version: Option<u32>,
    },
    /// The request sat past its deadline before a worker reached it.
    DeadlineExceeded,
    /// The engine shut down before the request was executed.
    ShuttingDown,
    /// Compiling or executing the model failed.
    Neural(NeuralError),
    /// Loading from a datastore failed.
    Store(String),
    /// The OS refused to spawn a worker thread at engine start.
    WorkerSpawn(String),
    /// The worker serving this request died before completing it; the
    /// request was resolved by the crash-completion path.
    WorkerCrashed,
    /// A rolling upgrade aborted: the canary request on the upgraded
    /// shard did not come back healthy on the new version.
    CanaryFailed {
        /// The model being upgraded.
        model: String,
        /// The target version the canary was checking.
        version: u32,
        /// What went wrong with the canary.
        reason: String,
    },
    /// A gated publication was rejected: the guard gate vetoed the
    /// candidate before it became visible, so no reader ever resolved it.
    GateRejected {
        /// The model being published.
        model: String,
        /// The candidate version the gate vetoed.
        version: u32,
        /// Why the gate said no.
        reason: String,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::UnknownModel { name, version } => match version {
                Some(v) => write!(f, "unknown model {name} v{v}"),
                None => write!(f, "unknown model {name}"),
            },
            ServeError::DeadlineExceeded => write!(f, "request deadline exceeded"),
            ServeError::ShuttingDown => write!(f, "engine shut down before execution"),
            ServeError::Neural(err) => write!(f, "model error: {err}"),
            ServeError::Store(msg) => write!(f, "store error: {msg}"),
            ServeError::WorkerSpawn(msg) => write!(f, "failed to spawn worker: {msg}"),
            ServeError::WorkerCrashed => write!(f, "worker crashed before completing the request"),
            ServeError::CanaryFailed {
                model,
                version,
                reason,
            } => write!(f, "canary failed for {model} v{version}: {reason}"),
            ServeError::GateRejected {
                model,
                version,
                reason,
            } => write!(f, "gate rejected {model} v{version}: {reason}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Neural(err) => Some(err),
            _ => None,
        }
    }
}

impl From<NeuralError> for ServeError {
    fn from(err: NeuralError) -> Self {
        ServeError::Neural(err)
    }
}
