//! The inference engine: bounded queue, worker pool, micro-batcher.
//!
//! In the sharded tier (see `router`), each shard runs one engine. The
//! engine carries the shard-facing plumbing: a per-worker [`Heartbeat`]
//! the supervisor's stall detector reads, an optional
//! [`faultsim::FaultPlan`] hook consulted once per batch (test-only
//! chaos injection), and a [`Engine::decommission`] path that hands the
//! still-queued requests to the supervisor *without* joining workers —
//! a stalled or dead worker must never wedge its own failover.

use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use faultsim::{FaultPlan, ServeFault};
use neural::plan::FrozenPlan;
use parking_lot::{Condvar, Mutex};

use crate::health::Heartbeat;
use crate::metrics::ServeMetrics;
use crate::queue::{BoundedQueue, PendingRequest};
use crate::registry::ModelRegistry;
use crate::{ServeError, SubmitError};

/// Engine tuning knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// Worker threads draining the queue. Zero is allowed (nothing
    /// drains — useful for backpressure tests).
    pub workers: usize,
    /// Submission queue capacity; beyond it, submissions are rejected
    /// with [`SubmitError::QueueFull`].
    pub queue_capacity: usize,
    /// Most samples a worker folds into one micro-batch.
    pub max_batch: usize,
    /// Longest a worker waits for stragglers to join a short batch.
    pub max_linger: Duration,
    /// Deadline applied to requests that do not carry their own.
    pub default_deadline: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            workers: 4,
            queue_capacity: 1024,
            max_batch: 32,
            max_linger: Duration::from_micros(200),
            default_deadline: Duration::from_secs(1),
        }
    }
}

/// Bounded-retry policy for submissions bounced by backpressure — the
/// same shape as `spectroai::recovery::RetryPolicy`, applied to
/// [`SubmitError::QueueFull`] instead of stage failures.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Attempts including the first (≥ 1).
    pub max_attempts: usize,
    /// Delay before the first retry, in milliseconds.
    pub base_delay_ms: u64,
    /// Multiplier applied to the delay after each bounced attempt.
    pub backoff: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 3,
            base_delay_ms: 1,
            backoff: 2.0,
        }
    }
}

impl RetryPolicy {
    /// Delay before retry number `retry` (1-based).
    fn delay(&self, retry: usize) -> Duration {
        let ms = self.base_delay_ms as f64 * self.backoff.powi(retry as i32 - 1);
        Duration::from_millis(ms as u64)
    }
}

/// One prediction request.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Model name to resolve in the registry.
    pub model: String,
    /// Specific version, or `None` for the newest.
    pub version: Option<u32>,
    /// Input spectrum (length must match the model's input).
    pub input: Vec<f32>,
    /// Per-request deadline override.
    pub deadline: Option<Duration>,
}

impl Request {
    /// A request for the newest version of `model`.
    pub fn new(model: impl Into<String>, input: Vec<f32>) -> Self {
        Self {
            model: model.into(),
            version: None,
            input,
            deadline: None,
        }
    }

    /// Pins a model version (builder style).
    #[must_use]
    pub fn with_version(mut self, version: u32) -> Self {
        self.version = Some(version);
        self
    }

    /// Sets a per-request deadline (builder style).
    #[must_use]
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }
}

/// A completed prediction.
#[derive(Debug, Clone, PartialEq)]
pub struct Prediction {
    /// The model output, bit-identical to `Network::predict` on the same
    /// weights.
    pub output: Vec<f32>,
    /// Version the request actually executed on.
    pub model_version: u32,
    /// Samples in the micro-batch this request rode in.
    pub batch_size: usize,
    /// Submit-to-completion latency.
    pub latency: Duration,
}

/// Slot lifecycle: completion is sticky. A slot whose result was
/// already taken by the ticket must *not* look pending again, or the
/// crash-completion in [`PendingRequest`]'s drop would re-complete (and
/// re-count) requests that were served normally.
#[derive(Debug, Default)]
enum SlotState {
    #[default]
    Pending,
    Ready(Result<Prediction, ServeError>),
    Taken,
}

/// Rendezvous cell a worker fills and a [`Ticket`] waits on.
#[derive(Debug, Default)]
pub(crate) struct ResponseSlot {
    result: Mutex<SlotState>,
    done: Condvar,
}

impl ResponseSlot {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Fills the slot if it is still pending. Returns `true` if this
    /// call won the completion (at most one caller ever does, even
    /// after the result has been taken).
    pub(crate) fn complete(&self, result: Result<Prediction, ServeError>) -> bool {
        let mut slot = self.result.lock();
        if matches!(*slot, SlotState::Pending) {
            *slot = SlotState::Ready(result);
            self.done.notify_all();
            true
        } else {
            false
        }
    }

    fn take(&self, slot: &mut SlotState) -> Option<Result<Prediction, ServeError>> {
        if matches!(slot, SlotState::Ready(_)) {
            match std::mem::replace(slot, SlotState::Taken) {
                SlotState::Ready(result) => Some(result),
                _ => None,
            }
        } else {
            None
        }
    }

    #[cfg(test)]
    pub(crate) fn take_result(&self) -> Option<Result<Prediction, ServeError>> {
        let mut slot = self.result.lock();
        self.take(&mut slot)
    }
}

/// Handle to one in-flight request.
#[derive(Debug)]
pub struct Ticket {
    slot: Arc<ResponseSlot>,
}

impl Ticket {
    /// Blocks until the request completes.
    ///
    /// # Errors
    ///
    /// Returns the per-request [`ServeError`] (deadline exceeded, model
    /// failure, or engine shutdown before execution).
    pub fn wait(self) -> Result<Prediction, ServeError> {
        let mut slot = self.slot.result.lock();
        loop {
            if let Some(result) = self.slot.take(&mut slot) {
                return result;
            }
            slot = self.slot.done.wait(slot);
        }
    }

    /// Non-blocking poll: the result if the request already completed.
    pub fn try_take(&self) -> Option<Result<Prediction, ServeError>> {
        let mut slot = self.slot.result.lock();
        self.slot.take(&mut slot)
    }
}

/// Shard-facing context a worker thread carries: which shard it serves,
/// the heartbeat slot the supervisor's stall detector reads, and the
/// optional chaos-injection plan consulted once per batch.
struct WorkerCtx {
    queue: Arc<BoundedQueue>,
    metrics: Arc<ServeMetrics>,
    max_batch: usize,
    linger: Duration,
    shard: usize,
    index: usize,
    heartbeat: Arc<Heartbeat>,
    fault_plan: Option<Arc<FaultPlan>>,
}

/// The serving engine. Submissions go through a bounded queue; a pool of
/// worker threads forms micro-batches and executes them on frozen plans
/// resolved from the [`ModelRegistry`] at submit time.
pub struct Engine {
    registry: Arc<ModelRegistry>,
    queue: Arc<BoundedQueue>,
    metrics: Arc<ServeMetrics>,
    heartbeat: Arc<Heartbeat>,
    workers: Vec<JoinHandle<()>>,
    config: ServeConfig,
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("config", &self.config)
            .field("workers", &self.workers.len())
            .finish_non_exhaustive()
    }
}

impl Engine {
    /// Starts the worker pool over `registry`.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::WorkerSpawn`] if the OS refuses a worker
    /// thread; workers already started are joined before returning, so a
    /// failed start leaks nothing.
    pub fn start(registry: Arc<ModelRegistry>, config: ServeConfig) -> Result<Self, ServeError> {
        Self::start_sharded(registry, config, 0, None, Arc::new(ServeMetrics::new()))
    }

    /// Starts the worker pool as shard `shard` of a sharded tier, with a
    /// shared [`ServeMetrics`] that survives restarts and an optional
    /// fault-injection plan (chaos testing only — every batch consults
    /// [`FaultPlan::batch_fault`]).
    ///
    /// # Errors
    ///
    /// Same as [`Engine::start`].
    pub(crate) fn start_sharded(
        registry: Arc<ModelRegistry>,
        config: ServeConfig,
        shard: usize,
        fault_plan: Option<Arc<FaultPlan>>,
        metrics: Arc<ServeMetrics>,
    ) -> Result<Self, ServeError> {
        let queue = Arc::new(BoundedQueue::new(config.queue_capacity.max(1)));
        let heartbeat = Arc::new(Heartbeat::new(config.workers));
        let mut workers = Vec::with_capacity(config.workers);
        for i in 0..config.workers {
            let ctx = WorkerCtx {
                queue: Arc::clone(&queue),
                metrics: Arc::clone(&metrics),
                max_batch: config.max_batch.max(1),
                linger: config.max_linger,
                shard,
                index: i,
                heartbeat: Arc::clone(&heartbeat),
                fault_plan: fault_plan.clone(),
            };
            let spawned = std::thread::Builder::new()
                .name(format!("serve-{shard}-worker-{i}"))
                .spawn(move || worker_loop(ctx));
            match spawned {
                Ok(handle) => workers.push(handle),
                Err(err) => {
                    queue.close();
                    for worker in workers {
                        let _ = worker.join();
                    }
                    return Err(ServeError::WorkerSpawn(format!(
                        "serve-{shard}-worker-{i}: {err}"
                    )));
                }
            }
        }
        Ok(Self {
            registry,
            queue,
            metrics,
            heartbeat,
            workers,
            config,
        })
    }

    /// The registry this engine resolves models from.
    pub fn registry(&self) -> &Arc<ModelRegistry> {
        &self.registry
    }

    /// The engine's configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Live metrics (snapshot with [`ServeMetrics::report`]).
    pub fn metrics(&self) -> &ServeMetrics {
        &self.metrics
    }

    /// Submits a request. Never blocks: the model is resolved and the
    /// input shape checked up front, then the request either enters the
    /// bounded queue or bounces with explicit backpressure.
    ///
    /// # Errors
    ///
    /// [`SubmitError::UnknownModel`], [`SubmitError::ShapeMismatch`],
    /// [`SubmitError::QueueFull`], or [`SubmitError::ShuttingDown`].
    pub fn submit(&self, request: Request) -> Result<Ticket, SubmitError> {
        let (version, plan) = self
            .registry
            .resolve(&request.model, request.version)
            .map_err(|_| SubmitError::UnknownModel {
                name: request.model.clone(),
                version: request.version,
            })?;
        if request.input.len() != plan.input_len() {
            return Err(SubmitError::ShapeMismatch {
                expected: plan.input_len(),
                actual: request.input.len(),
            });
        }
        let now = Instant::now();
        let slot = Arc::new(ResponseSlot::new());
        let pending = PendingRequest {
            plan,
            version,
            input: request.input,
            enqueued: now,
            deadline: now + request.deadline.unwrap_or(self.config.default_deadline),
            slot: Arc::clone(&slot),
            metrics: Arc::clone(&self.metrics),
        };
        match self.queue.try_push(pending) {
            Ok(depth) => {
                self.metrics.record_submitted();
                self.metrics.record_queue_depth(depth);
                Ok(Ticket { slot })
            }
            Err((err, bounced)) => {
                bounced.reject();
                self.metrics.record_rejected();
                Err(err)
            }
        }
    }

    /// [`Engine::submit`] with bounded exponential backoff on
    /// [`SubmitError::QueueFull`] — the `spectroai::recovery` retry idiom
    /// applied to backpressure. Non-retryable errors return immediately.
    ///
    /// # Errors
    ///
    /// The last [`SubmitError`] once the attempt budget is exhausted.
    pub fn submit_with_retry(
        &self,
        request: Request,
        policy: RetryPolicy,
    ) -> Result<Ticket, SubmitError> {
        let attempts = policy.max_attempts.max(1);
        let mut attempt = 1;
        loop {
            match self.submit(request.clone()) {
                Ok(ticket) => return Ok(ticket),
                Err(SubmitError::QueueFull { capacity }) => {
                    if attempt >= attempts {
                        return Err(SubmitError::QueueFull { capacity });
                    }
                    let delay = policy.delay(attempt);
                    if !delay.is_zero() {
                        std::thread::sleep(delay);
                    }
                    attempt += 1;
                }
                Err(other) => return Err(other),
            }
        }
    }

    /// Current queue-depth high-water mark.
    pub fn queue_high_water(&self) -> usize {
        self.queue.high_water()
    }

    /// Current queue depth (admission-control estimate, not hot path).
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Worker threads that have exited (panicked, or returned after the
    /// queue closed). Non-zero on a live engine means a worker died.
    pub(crate) fn dead_workers(&self) -> usize {
        self.workers.iter().filter(|w| w.is_finished()).count()
    }

    /// `true` if any worker has been busy on one batch longer than
    /// `stall_deadline` (the supervisor's stall detector).
    pub(crate) fn stalled(&self, stall_deadline: Duration) -> bool {
        self.heartbeat.longest_busy() > stall_deadline
    }

    /// Takes this engine out of service *without joining workers*: the
    /// queue closes, still-queued requests are handed back for
    /// re-routing, and worker handles are detached — a stalled or
    /// panicked worker must never block its own failover. Detached
    /// live workers finish their in-flight batch (completing those
    /// requests late) and exit on the closed queue.
    pub(crate) fn decommission(mut self) -> Vec<PendingRequest> {
        self.queue.close();
        let pending = self.queue.drain();
        // Detach: dropping a JoinHandle never blocks.
        self.workers.clear();
        pending
    }

    /// Pushes a request displaced from a failed sibling shard straight
    /// into this engine's queue (terminal accounting stays on the
    /// origin shard's metrics). Returns the request on backpressure so
    /// the supervisor can try the next shard.
    pub(crate) fn push_displaced(
        &self,
        request: PendingRequest,
    ) -> Result<(), PendingRequest> {
        // No metrics.record_submitted here: the origin shard already
        // counted the admission.
        self.queue.try_push(request).map(|_| ()).map_err(|(_, r)| r)
    }

    /// Graceful shutdown: stop accepting work, let workers drain the
    /// queue, join them. Anything still queued after the workers exit
    /// (possible only with zero workers) completes with
    /// [`ServeError::ShuttingDown`].
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        self.queue.close();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        for request in self.queue.drain() {
            // Terminal accounting *before* completion: `in_flight`
            // (submitted minus terminals) must never under-count.
            request.metrics.record_drained();
            request.slot.complete(Err(ServeError::ShuttingDown));
        }
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// Worker body: pop a same-plan batch, apply any injected fault, drop
/// requests past their deadline, run the rest as one contiguous block,
/// fan results back out.
///
/// An injected [`ServeFault::Panic`] unwinds this thread between the pop
/// and the batch execution: every popped request completes through
/// [`PendingRequest`]'s drop-completion (a terminal
/// [`ServeError::WorkerCrashed`]), and the supervisor sees the finished
/// thread handle and fails the shard over. Terminal request outcomes are
/// recorded on each request's *origin-shard* metrics, so conservation
/// holds even for requests re-routed here from a failed sibling.
fn worker_loop(ctx: WorkerCtx) {
    loop {
        ctx.heartbeat.mark_idle(ctx.index);
        let Some(batch) = ctx.queue.pop_batch(ctx.max_batch, ctx.linger) else {
            break;
        };
        ctx.heartbeat.mark_busy(ctx.index);
        let fault = ctx
            .fault_plan
            .as_ref()
            .and_then(|plan| plan.batch_fault(ctx.shard));
        if let Some(fault) = &fault {
            // Panic unwinds here; Stall sleeps here, inside the busy
            // window the supervisor's stall detector watches.
            fault.apply_pre();
        }
        run_batch(&ctx, batch, fault.as_ref().and_then(ServeFault::slow_factor));
    }
    ctx.heartbeat.mark_idle(ctx.index);
}

fn run_batch(ctx: &WorkerCtx, batch: Vec<PendingRequest>, slow_factor: Option<f64>) {
    let _batch_span = obs::span("serve.batch");
    let now = Instant::now();
    let mut live: Vec<PendingRequest> = Vec::with_capacity(batch.len());
    for request in batch {
        if request.deadline <= now {
            request.metrics.record_timed_out();
            request.slot.complete(Err(ServeError::DeadlineExceeded));
        } else {
            live.push(request);
        }
    }
    if live.is_empty() {
        return;
    }
    let plan: Arc<FrozenPlan> = Arc::clone(&live[0].plan);
    let batch_size = live.len();
    let mut block = Vec::with_capacity(batch_size * plan.input_len());
    for request in &live {
        block.extend_from_slice(&request.input);
    }
    let mut outputs = Vec::new();
    let started = Instant::now();
    let result = plan.predict_batch(&block, &mut outputs);
    if let Some(factor) = slow_factor {
        // Injected slow shard: inflate the measured compute time so the
        // slowdown shows up in latency percentiles and the EWMA the
        // admission controller reads.
        let extra = started.elapsed().mul_f64((factor - 1.0).max(0.0));
        std::thread::sleep(extra.max(Duration::from_micros(50)));
    }
    match result {
        Ok(_) => {
            ctx.metrics.record_batch(batch_size, started.elapsed());
            let out_len = plan.output_len();
            for (i, request) in live.into_iter().enumerate() {
                let _req_span = obs::span("serve.request");
                let latency = request.enqueued.elapsed();
                request.metrics.record_completed(latency);
                request.slot.complete(Ok(Prediction {
                    output: outputs[i * out_len..(i + 1) * out_len].to_vec(),
                    model_version: request.version,
                    batch_size,
                    latency,
                }));
            }
        }
        Err(err) => {
            // Unreachable in practice: shapes are validated at submit
            // time. Fail every rider rather than panicking a worker.
            for request in live {
                request.metrics.record_failed();
                request.slot.complete(Err(ServeError::Neural(err.clone())));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neural::export::ExportedNetwork;
    use neural::spec::{LayerSpec, NetworkSpec};
    use neural::{Activation, Network};

    fn table1_like() -> (NetworkSpec, Network) {
        let spec = NetworkSpec::new(64)
            .layer(LayerSpec::Reshape { channels: 1 })
            .layer(LayerSpec::Conv1d {
                filters: 6,
                kernel: 8,
                stride: 2,
                activation: Activation::Selu,
            })
            .layer(LayerSpec::Flatten)
            .layer(LayerSpec::Dense {
                units: 8,
                activation: Activation::Softmax,
            });
        let net = spec.build(42).unwrap();
        (spec, net)
    }

    fn registry_with(name: &str, version: u32) -> (Arc<ModelRegistry>, Network) {
        let (spec, net) = table1_like();
        let exported = ExportedNetwork::from_network(spec, &net, name);
        let registry = Arc::new(ModelRegistry::new());
        registry.publish(name, version, &exported).unwrap();
        (registry, net)
    }

    /// A dense plan whose output is constantly `marker` — weights zero,
    /// bias all `marker` — so a response reveals exactly which version
    /// served it.
    fn marker_plan(marker: f32) -> Arc<FrozenPlan> {
        let spec = NetworkSpec::new(4).layer(LayerSpec::Dense {
            units: 8,
            activation: Activation::Linear,
        });
        let weights = vec![vec![vec![0.0; 32], vec![marker; 8]]];
        Arc::new(FrozenPlan::from_spec_weights("marker", &spec, &weights).unwrap())
    }

    #[test]
    fn engine_outputs_are_bit_identical_to_sequential_predict() {
        let (registry, mut net) = registry_with("ms", 1);
        let engine = Engine::start(
            registry,
            ServeConfig {
                workers: 3,
                max_batch: 8,
                max_linger: Duration::from_millis(2),
                ..ServeConfig::default()
            },
        )
        .unwrap();
        let inputs: Vec<Vec<f32>> = (0..40)
            .map(|s| (0..64).map(|i| (((s * 64 + i) as f32) * 0.13).sin()).collect())
            .collect();
        let tickets: Vec<Ticket> = inputs
            .iter()
            .map(|x| engine.submit(Request::new("ms", x.clone())).unwrap())
            .collect();
        for (ticket, x) in tickets.into_iter().zip(&inputs) {
            let prediction = ticket.wait().unwrap();
            assert_eq!(prediction.output, net.predict(x), "serving must be bit-identical");
            assert_eq!(prediction.model_version, 1);
            assert!(prediction.batch_size >= 1);
        }
        let report = engine.metrics().report();
        assert_eq!(report.requests_completed, 40);
        assert_eq!(report.requests_rejected, 0);
        assert!(report.batches <= 40);
        assert!(report.mean_batch_size >= 1.0);
        engine.shutdown();
    }

    #[test]
    fn queue_full_backpressure_is_immediate() {
        let (registry, _) = registry_with("ms", 1);
        // No workers: nothing drains the queue, so capacity is reached
        // deterministically.
        let engine = Engine::start(
            registry,
            ServeConfig {
                workers: 0,
                queue_capacity: 3,
                ..ServeConfig::default()
            },
        )
        .unwrap();
        let x = vec![0.5f32; 64];
        for _ in 0..3 {
            engine.submit(Request::new("ms", x.clone())).unwrap();
        }
        let started = Instant::now();
        let err = engine.submit(Request::new("ms", x.clone())).unwrap_err();
        let elapsed = started.elapsed();
        assert_eq!(err, SubmitError::QueueFull { capacity: 3 });
        assert!(
            elapsed < Duration::from_millis(100),
            "queue-full must return promptly, took {elapsed:?}"
        );
        let report = engine.metrics().report();
        assert_eq!(report.requests_submitted, 3);
        assert_eq!(report.requests_rejected, 1);
        assert_eq!(report.queue_depth_high_water, 3);
        engine.shutdown();
    }

    #[test]
    fn submit_with_retry_exhausts_budget_on_persistent_backpressure() {
        let (registry, _) = registry_with("ms", 1);
        let engine = Engine::start(
            registry,
            ServeConfig {
                workers: 0,
                queue_capacity: 1,
                ..ServeConfig::default()
            },
        )
        .unwrap();
        let x = vec![0.0f32; 64];
        engine.submit(Request::new("ms", x.clone())).unwrap();
        let started = Instant::now();
        let err = engine
            .submit_with_retry(
                Request::new("ms", x),
                RetryPolicy {
                    max_attempts: 3,
                    base_delay_ms: 2,
                    backoff: 2.0,
                },
            )
            .unwrap_err();
        assert!(matches!(err, SubmitError::QueueFull { .. }));
        // Two backoff sleeps: 2ms + 4ms.
        assert!(started.elapsed() >= Duration::from_millis(6));
        engine.shutdown();
    }

    #[test]
    fn unknown_model_and_bad_shape_fail_fast() {
        let (registry, _) = registry_with("ms", 1);
        let engine = Engine::start(registry, ServeConfig::default()).unwrap();
        assert!(matches!(
            engine.submit(Request::new("nope", vec![0.0; 64])),
            Err(SubmitError::UnknownModel { .. })
        ));
        assert!(matches!(
            engine.submit(Request::new("ms", vec![0.0; 3])),
            Err(SubmitError::ShapeMismatch {
                expected: 64,
                actual: 3
            })
        ));
        engine.shutdown();
    }

    #[test]
    fn expired_deadlines_complete_with_timeout_error() {
        let (registry, _) = registry_with("ms", 1);
        // Workers start after a backlog is queued with an already-tiny
        // deadline; by the time one runs, the deadline has passed.
        let engine = Engine::start(
            registry.clone(),
            ServeConfig {
                workers: 0,
                ..ServeConfig::default()
            },
        )
        .unwrap();
        let ticket = engine
            .submit(Request::new("ms", vec![0.0; 64]).with_deadline(Duration::from_millis(1)))
            .unwrap();
        std::thread::sleep(Duration::from_millis(10));
        // Spin up a drain by shutting down: queued request completes as
        // ShuttingDown (no workers), so instead run a one-worker engine
        // path: push through the worker loop directly.
        drop(engine);
        assert!(matches!(
            ticket.wait(),
            Err(ServeError::ShuttingDown | ServeError::DeadlineExceeded)
        ));

        // Now the live-worker variant: a worker that lingers long enough
        // for the deadline to expire before the batch dispatches.
        let engine = Engine::start(
            registry,
            ServeConfig {
                workers: 1,
                max_batch: 64,
                max_linger: Duration::from_millis(40),
                ..ServeConfig::default()
            },
        )
        .unwrap();
        // First request opens a lingering batch window longer than the
        // second's deadline; the second expires inside it.
        let _warm = engine.submit(Request::new("ms", vec![0.0; 64])).unwrap();
        let doomed = engine
            .submit(Request::new("ms", vec![0.0; 64]).with_deadline(Duration::from_millis(1)))
            .unwrap();
        match doomed.wait() {
            Err(ServeError::DeadlineExceeded) => {
                assert!(engine.metrics().report().requests_timed_out >= 1);
            }
            // Scheduling may still beat the deadline — then it must have
            // served normally.
            Ok(prediction) => assert_eq!(prediction.output.len(), 8),
            Err(other) => panic!("unexpected error: {other:?}"),
        }
        engine.shutdown();
    }

    #[test]
    fn hot_swap_never_tears_a_model() {
        let registry = Arc::new(ModelRegistry::new());
        registry.publish_plan("m", 1, marker_plan(1.0));
        let engine = Arc::new(Engine::start(
            Arc::clone(&registry),
            ServeConfig {
                workers: 4,
                max_batch: 16,
                max_linger: Duration::from_micros(100),
                queue_capacity: 4096,
                ..ServeConfig::default()
            },
        )
        .unwrap());
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let swapper = {
            let registry = Arc::clone(&registry);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut marker = 2.0f32;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    registry.publish_plan("m", 1, marker_plan(marker));
                    marker += 1.0;
                    std::thread::sleep(Duration::from_micros(200));
                }
            })
        };
        let mut checked = 0;
        for _ in 0..500 {
            let Ok(ticket) = engine.submit(Request::new("m", vec![0.1; 4])) else {
                continue;
            };
            let prediction = ticket.wait().unwrap();
            let first = prediction.output[0];
            assert!(
                prediction.output.iter().all(|&v| v == first),
                "torn model observed: {:?}",
                prediction.output
            );
            checked += 1;
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        swapper.join().unwrap();
        assert!(checked > 0);
        if let Ok(engine) = Arc::try_unwrap(engine) {
            engine.shutdown();
        }
    }

    #[test]
    fn shutdown_completes_stranded_requests() {
        let (registry, _) = registry_with("ms", 1);
        let engine = Engine::start(
            registry,
            ServeConfig {
                workers: 0,
                ..ServeConfig::default()
            },
        )
        .unwrap();
        let ticket = engine.submit(Request::new("ms", vec![0.0; 64])).unwrap();
        engine.shutdown();
        assert_eq!(ticket.wait(), Err(ServeError::ShuttingDown));
    }

    #[test]
    fn waiters_blocked_on_tickets_resolve_at_shutdown() {
        // Regression: `Ticket::wait` must never block forever. Waiters
        // park on tickets *before* shutdown; the shutdown drain has to
        // resolve every one of them with a terminal error.
        let (registry, _) = registry_with("ms", 1);
        let engine = Engine::start(
            registry,
            ServeConfig {
                workers: 0,
                ..ServeConfig::default()
            },
        )
        .unwrap();
        let waiters: Vec<_> = (0..4)
            .map(|_| {
                let ticket = engine.submit(Request::new("ms", vec![0.0; 64])).unwrap();
                std::thread::spawn(move || ticket.wait())
            })
            .collect();
        // Let the waiters actually park on their condvars.
        std::thread::sleep(Duration::from_millis(20));
        let drained_before = engine.metrics().report().requests_drained;
        assert_eq!(drained_before, 0);
        engine.shutdown();
        for waiter in waiters {
            assert_eq!(waiter.join().unwrap(), Err(ServeError::ShuttingDown));
        }
    }
}
