//! Sharded serving tier: routing, admission control, shard supervision,
//! and zero-drop rolling upgrades (DESIGN.md §12).
//!
//! A [`Router`] runs N independent [`crate::Engine`] shards over one
//! shared [`ModelRegistry`]. Submissions hash by model name (plus a
//! rotation counter for spread) onto healthy shards; a supervisor
//! thread watches each shard for dead workers (panics) and stalled
//! batches, fails the shard over — re-routing its queued requests to
//! healthy siblings — and restarts it with exponential backoff.
//!
//! The conservation invariant the chaos tests pin down: every admitted
//! request reaches exactly one terminal outcome (completed, failed,
//! timed out, or drained) on the metrics of the shard that admitted it,
//! no matter how many panics, stalls, re-routes, or restarts happen in
//! between.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use faultsim::FaultPlan;
use obs::Histogram;
use parking_lot::{Mutex, RwLock};
use serde::{Deserialize, Serialize};

use crate::engine::{Request, RetryPolicy, ServeConfig, Ticket};
use crate::health::HealthState;
use crate::metrics::MetricsReport;
use crate::registry::ModelRegistry;
use crate::shard::Shard;
use crate::{ServeError, SubmitError};

/// Admission-control limits applied before a request reaches any queue.
#[derive(Debug, Clone, PartialEq)]
pub struct AdmissionConfig {
    /// Cap on requests in flight across all shards; beyond it
    /// submissions shed with [`SubmitError::Overloaded`].
    pub max_in_flight: u64,
    /// Per-shard in-flight cap; a shard at its cap is skipped in favour
    /// of siblings.
    pub max_shard_in_flight: u64,
    /// Reject requests whose estimated queue-plus-execution time
    /// already exceeds their deadline
    /// ([`SubmitError::WouldMissDeadline`]) instead of letting them
    /// time out in queue.
    pub deadline_aware: bool,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        Self {
            max_in_flight: 100_000,
            max_shard_in_flight: 50_000,
            deadline_aware: true,
        }
    }
}

/// Supervisor tuning: detection cadence, stall threshold, restart
/// backoff, and the per-shard circuit breaker.
#[derive(Debug, Clone, PartialEq)]
pub struct SupervisorConfig {
    /// Supervision loop cadence.
    pub tick: Duration,
    /// A worker busy on a single batch longer than this is stalled; the
    /// shard fails over.
    pub stall_deadline: Duration,
    /// Delay before the first restart attempt of a failed shard.
    pub restart_backoff_base: Duration,
    /// Ceiling for the exponential restart backoff.
    pub max_restart_backoff: Duration,
    /// Consecutive failure-carrying ticks before the circuit breaker
    /// opens and the shard sheds traffic to siblings.
    pub circuit_threshold: u32,
    /// How long an opened circuit holds traffic away from the shard.
    pub circuit_cooldown: Duration,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        Self {
            tick: Duration::from_millis(20),
            stall_deadline: Duration::from_millis(500),
            restart_backoff_base: Duration::from_millis(50),
            max_restart_backoff: Duration::from_secs(2),
            circuit_threshold: 3,
            circuit_cooldown: Duration::from_millis(250),
        }
    }
}

/// Configuration for a [`Router`].
#[derive(Debug, Clone, PartialEq)]
pub struct RouterConfig {
    /// Number of independent engine shards (≥ 1).
    pub shards: usize,
    /// Per-shard engine configuration.
    pub engine: ServeConfig,
    /// Admission-control limits.
    pub admission: AdmissionConfig,
    /// Supervision and failover tuning.
    pub supervisor: SupervisorConfig,
    /// Longest a rolling swap waits for one shard's in-flight requests
    /// to drain before aborting the upgrade.
    pub swap_drain_timeout: Duration,
}

impl Default for RouterConfig {
    fn default() -> Self {
        Self {
            shards: 2,
            engine: ServeConfig::default(),
            admission: AdmissionConfig::default(),
            supervisor: SupervisorConfig::default(),
            swap_drain_timeout: Duration::from_secs(5),
        }
    }
}

/// Per-shard slice of a [`RouterReport`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardReport {
    /// Shard index.
    pub shard: usize,
    /// Health state at snapshot time (`healthy`/`degraded`/`down`).
    pub health: String,
    /// Times the supervisor restarted this shard.
    pub restarts: u64,
    /// The shard's own counters (terminal outcomes land on the shard
    /// that admitted the request).
    pub metrics: MetricsReport,
}

/// A point-in-time snapshot of the whole sharded tier.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RouterReport {
    /// One entry per shard.
    pub shards: Vec<ShardReport>,
    /// Shards failed over (dead worker or stall detected).
    pub failovers: u64,
    /// Successful supervisor restarts across all shards.
    pub restarts: u64,
    /// Queued requests re-routed from a failed shard to a sibling.
    pub rerouted: u64,
    /// Submissions shed by admission control (overload or predicted
    /// deadline miss).
    pub shed: u64,
    /// Cross-shard aggregate: counters summed, latency percentiles
    /// computed over the merged histogram.
    pub total: MetricsReport,
}

/// Outcome of a completed [`Router::rolling_swap`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SwapReport {
    /// The upgraded model.
    pub model: String,
    /// The version every shard now pins.
    pub version: u32,
    /// Shards cordoned, drained, swapped, canaried, and uncordoned.
    pub shards_swapped: usize,
}

struct RouterInner {
    shards: Vec<Arc<Shard>>,
    registry: Arc<ModelRegistry>,
    config: RouterConfig,
    fault_plan: Option<Arc<FaultPlan>>,
    /// Per-shard model-version pins driving rolling upgrades: a pinned
    /// shard serves `pins[model][shard]` for requests that do not carry
    /// their own version. Lock order: `pins` before `engine` (taken
    /// inside shard submission).
    pins: RwLock<BTreeMap<String, Vec<Option<u32>>>>,
    /// Serializes rolling swaps. Lock order: `swap_gate` before `pins`.
    swap_gate: Mutex<()>,
    rotation: AtomicUsize,
    stop: AtomicBool,
    failovers: AtomicU64,
    restarts: AtomicU64,
    rerouted: AtomicU64,
    shed: AtomicU64,
}

/// Sharded serving front-end: per-model hash routing over supervised
/// [`crate::Engine`] shards, with admission control and rolling
/// upgrades.
pub struct Router {
    inner: Arc<RouterInner>,
    supervisor: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for Router {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Router")
            .field("shards", &self.inner.shards.len())
            .field("config", &self.inner.config)
            .finish_non_exhaustive()
    }
}

impl Router {
    /// Starts `config.shards` engine shards plus the supervisor thread.
    ///
    /// # Errors
    ///
    /// [`ServeError::WorkerSpawn`] if any shard's workers (or the
    /// supervisor thread) cannot be spawned; shards already started are
    /// shut down before returning.
    pub fn start(registry: Arc<ModelRegistry>, config: RouterConfig) -> Result<Self, ServeError> {
        Self::start_with_faults(registry, config, None)
    }

    /// [`Router::start`] with a chaos-injection plan threaded into every
    /// shard (tests and `serve_load --chaos` only): each worker consults
    /// [`FaultPlan::batch_fault`] once per batch.
    ///
    /// # Errors
    ///
    /// Same as [`Router::start`].
    pub fn start_with_faults(
        registry: Arc<ModelRegistry>,
        config: RouterConfig,
        fault_plan: Option<Arc<FaultPlan>>,
    ) -> Result<Self, ServeError> {
        let shard_count = config.shards.max(1);
        let mut shards = Vec::with_capacity(shard_count);
        for id in 0..shard_count {
            match Shard::start(
                id,
                Arc::clone(&registry),
                config.engine.clone(),
                fault_plan.clone(),
            ) {
                Ok(shard) => shards.push(Arc::new(shard)),
                Err(err) => {
                    for shard in &shards {
                        shard.shutdown();
                    }
                    return Err(err);
                }
            }
        }
        let inner = Arc::new(RouterInner {
            shards,
            registry,
            config,
            fault_plan,
            pins: RwLock::new(BTreeMap::new()),
            swap_gate: Mutex::new(()),
            rotation: AtomicUsize::new(0),
            stop: AtomicBool::new(false),
            failovers: AtomicU64::new(0),
            restarts: AtomicU64::new(0),
            rerouted: AtomicU64::new(0),
            shed: AtomicU64::new(0),
        });
        let supervisor = {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("serve-supervisor".to_string())
                .spawn(move || supervisor_loop(&inner))
        };
        match supervisor {
            Ok(handle) => Ok(Self {
                inner,
                supervisor: Some(handle),
            }),
            Err(err) => {
                for shard in &inner.shards {
                    shard.shutdown();
                }
                Err(ServeError::WorkerSpawn(format!("serve-supervisor: {err}")))
            }
        }
    }

    /// The shared registry all shards resolve models from.
    pub fn registry(&self) -> &Arc<ModelRegistry> {
        &self.inner.registry
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.inner.shards.len()
    }

    /// Health of shard `shard`, if it exists.
    pub fn shard_health(&self, shard: usize) -> Option<HealthState> {
        self.inner.shards.get(shard).map(|s| s.health.state())
    }

    /// Routes a request onto a healthy shard. Never blocks.
    ///
    /// Admission control runs first: the global in-flight cap
    /// ([`SubmitError::Overloaded`]), then per-shard caps and — when
    /// [`AdmissionConfig::deadline_aware`] is set — a queue-delay
    /// estimate against the request deadline
    /// ([`SubmitError::WouldMissDeadline`]). Shard choice starts from a
    /// hash of the model name and rotates; shards that are Down,
    /// cordoned, circuit-broken, at capacity, or predicted to miss the
    /// deadline are skipped in favour of siblings.
    ///
    /// # Errors
    ///
    /// Model errors ([`SubmitError::UnknownModel`],
    /// [`SubmitError::ShapeMismatch`]) return immediately; otherwise the
    /// most specific admission error across the shard sweep.
    pub fn submit(&self, request: Request) -> Result<Ticket, SubmitError> {
        let inner = &self.inner;
        let admission = &inner.config.admission;
        let in_flight: u64 = inner
            .shards
            .iter()
            .map(|shard| shard.metrics().in_flight())
            .sum();
        if in_flight >= admission.max_in_flight {
            inner.shed.fetch_add(1, Ordering::Relaxed);
            return Err(SubmitError::Overloaded {
                in_flight,
                limit: admission.max_in_flight,
            });
        }
        let deadline_us = u64::try_from(
            request
                .deadline
                .unwrap_or(inner.config.engine.default_deadline)
                .as_micros(),
        )
        .unwrap_or(u64::MAX);
        let shard_count = inner.shards.len();
        let start = hash_model(&request.model)
            .wrapping_add(inner.rotation.fetch_add(1, Ordering::Relaxed));
        let mut would_miss: Option<(u64, u64)> = None;
        let mut over_cap: Option<(u64, u64)> = None;
        let mut bounced: Option<SubmitError> = None;
        for k in 0..shard_count {
            let Some(shard) = inner.shards.get((start + k) % shard_count) else {
                continue;
            };
            if !shard.health.accepts_traffic() || shard.is_down() {
                continue;
            }
            let shard_in_flight = shard.metrics().in_flight();
            if shard_in_flight >= admission.max_shard_in_flight {
                over_cap = Some((shard_in_flight, admission.max_shard_in_flight));
                continue;
            }
            if admission.deadline_aware {
                let estimated_us = estimate_wait_us(shard, &inner.config.engine);
                if estimated_us > deadline_us {
                    would_miss = Some((estimated_us, deadline_us));
                    continue;
                }
            }
            let pin = inner
                .pins
                .read()
                .get(&request.model)
                .and_then(|pins| pins.get(shard.id).copied().flatten());
            match shard.submit_pinned(request.clone(), pin) {
                Ok(ticket) => return Ok(ticket),
                Err(err @ (SubmitError::UnknownModel { .. } | SubmitError::ShapeMismatch { .. })) => {
                    return Err(err)
                }
                // QueueFull / ShuttingDown: transient, try the next shard.
                Err(err) => bounced = Some(err),
            }
        }
        if let Some((estimated_us, deadline_us)) = would_miss {
            inner.shed.fetch_add(1, Ordering::Relaxed);
            return Err(SubmitError::WouldMissDeadline {
                estimated_us,
                deadline_us,
            });
        }
        if let Some((in_flight, limit)) = over_cap {
            inner.shed.fetch_add(1, Ordering::Relaxed);
            return Err(SubmitError::Overloaded { in_flight, limit });
        }
        match bounced {
            Some(err) => Err(err),
            None => Err(SubmitError::NoHealthyShard),
        }
    }

    /// [`Router::submit`] with bounded exponential backoff on transient
    /// rejections ([`SubmitError::QueueFull`],
    /// [`SubmitError::Overloaded`], [`SubmitError::NoHealthyShard`] —
    /// a failed shard may restart within the budget).
    ///
    /// # Errors
    ///
    /// The last [`SubmitError`] once the attempt budget is exhausted.
    pub fn submit_with_retry(
        &self,
        request: Request,
        policy: RetryPolicy,
    ) -> Result<Ticket, SubmitError> {
        let attempts = policy.max_attempts.max(1);
        let mut attempt = 1;
        loop {
            match self.submit(request.clone()) {
                Ok(ticket) => return Ok(ticket),
                Err(
                    err @ (SubmitError::QueueFull { .. }
                    | SubmitError::Overloaded { .. }
                    | SubmitError::NoHealthyShard),
                ) => {
                    if attempt >= attempts {
                        return Err(err);
                    }
                    let ms = policy.base_delay_ms as f64 * policy.backoff.powi(attempt as i32 - 1);
                    std::thread::sleep(Duration::from_millis(ms as u64));
                    attempt += 1;
                }
                Err(other) => return Err(other),
            }
        }
    }

    /// Zero-drop rolling upgrade: moves every shard's pin for `model`
    /// to `version`, one shard at a time — cordon (router stops picking
    /// the shard), drain (wait for its in-flight count to reach zero),
    /// pin, canary (one real request through the engine must come back
    /// healthy *on the new version*), uncordon. At most one shard is
    /// cordoned at any moment, so capacity never drops by more than one
    /// shard, and no in-flight request is dropped or served by the old
    /// version after its shard completes the swap.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownModel`] if `model`/`version` is not
    /// published; [`ServeError::Store`] if the (injected) registry load
    /// fails; [`ServeError::CanaryFailed`] if a shard does not drain in
    /// [`RouterConfig::swap_drain_timeout`] or its canary fails — the
    /// shard's pin rolls back and it is uncordoned, shards already
    /// swapped stay on the new version.
    pub fn rolling_swap(&self, model: &str, version: u32) -> Result<SwapReport, ServeError> {
        let inner = &self.inner;
        let _gate = inner.swap_gate.lock();
        if inner
            .fault_plan
            .as_ref()
            .map(|plan| plan.fail_registry_load())
            .unwrap_or(false)
        {
            return Err(ServeError::Store(
                "injected registry load failure during rolling swap".to_string(),
            ));
        }
        let (version, plan) = inner.registry.resolve(model, Some(version))?;
        let input_len = plan.input_len();
        drop(plan);
        let mut swapped = 0;
        for shard in &inner.shards {
            shard.health.cordon();
            if !wait_drained(shard, inner.config.swap_drain_timeout) {
                shard.health.uncordon();
                return Err(ServeError::CanaryFailed {
                    model: model.to_string(),
                    version,
                    reason: format!(
                        "shard {} did not drain within {:?}",
                        shard.id, inner.config.swap_drain_timeout
                    ),
                });
            }
            let previous = set_pin(inner, model, shard.id, Some(version));
            let canary = Request::new(model, vec![0.0; input_len])
                .with_deadline(inner.config.swap_drain_timeout);
            let canary_result = shard
                .submit_pinned(canary, Some(version))
                .map_err(|err| format!("canary submit: {err}"))
                .and_then(|ticket| ticket.wait().map_err(|err| format!("canary wait: {err}")));
            match canary_result {
                Ok(prediction) if prediction.model_version == version => {
                    shard.health.uncordon();
                    obs::counter_add("serve.swap.shard", 1);
                    swapped += 1;
                }
                Ok(prediction) => {
                    set_pin(inner, model, shard.id, previous);
                    shard.health.uncordon();
                    return Err(ServeError::CanaryFailed {
                        model: model.to_string(),
                        version,
                        reason: format!(
                            "canary served by v{} instead of v{version}",
                            prediction.model_version
                        ),
                    });
                }
                Err(reason) => {
                    set_pin(inner, model, shard.id, previous);
                    shard.health.uncordon();
                    return Err(ServeError::CanaryFailed {
                        model: model.to_string(),
                        version,
                        reason,
                    });
                }
            }
        }
        Ok(SwapReport {
            model: model.to_string(),
            version,
            shards_swapped: swapped,
        })
    }

    /// Snapshot of the whole tier: per-shard reports plus failover
    /// counters and a merged-histogram aggregate.
    pub fn report(&self) -> RouterReport {
        let inner = &self.inner;
        let shards: Vec<ShardReport> = inner
            .shards
            .iter()
            .map(|shard| ShardReport {
                shard: shard.id,
                health: shard.health.state().to_string(),
                restarts: shard.restarts(),
                metrics: shard.metrics().report(),
            })
            .collect();
        let total = merge_reports(inner);
        RouterReport {
            shards,
            failovers: inner.failovers.load(Ordering::Relaxed),
            restarts: inner.restarts.load(Ordering::Relaxed),
            rerouted: inner.rerouted.load(Ordering::Relaxed),
            shed: inner.shed.load(Ordering::Relaxed),
            total,
        }
    }

    /// Graceful shutdown: stops the supervisor, then drains and joins
    /// every shard. Queued requests resolve with
    /// [`ServeError::ShuttingDown`].
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        self.inner.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.supervisor.take() {
            let _ = handle.join();
        }
        for shard in &self.inner.shards {
            shard.shutdown();
        }
    }
}

impl Drop for Router {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// FNV-1a over the model name: a stable shard starting point so one
/// model's traffic spreads deterministically.
fn hash_model(model: &str) -> usize {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in model.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash as usize
}

/// Queue-delay estimate for admission control: batches already queued
/// ahead plus this request's own batch, each at the shard's EWMA batch
/// wall time. Zero until the shard has executed its first batch.
fn estimate_wait_us(shard: &Shard, engine: &ServeConfig) -> u64 {
    let ewma = shard.metrics().batch_ewma_us();
    if ewma == 0 {
        return 0;
    }
    let batches_ahead = (shard.queue_len() / engine.max_batch.max(1)) as u64 + 1;
    batches_ahead.saturating_mul(ewma)
}

fn set_pin(inner: &RouterInner, model: &str, shard: usize, version: Option<u32>) -> Option<u32> {
    let mut pins = inner.pins.write();
    let entry = pins
        .entry(model.to_string())
        .or_insert_with(|| vec![None; inner.shards.len()]);
    let previous = entry.get(shard).copied().flatten();
    if let Some(slot) = entry.get_mut(shard) {
        *slot = version;
    }
    previous
}

/// Polls the shard's in-flight count down to zero (drain step of a
/// rolling swap). Counter-derived, so it is exact once the shard
/// quiesces.
fn wait_drained(shard: &Shard, timeout: Duration) -> bool {
    let deadline = Instant::now() + timeout;
    loop {
        if shard.metrics().in_flight() == 0 {
            return true;
        }
        if Instant::now() >= deadline {
            return false;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
}

/// Cross-shard aggregate report: counters summed, latency percentiles
/// over the merged per-shard histograms (buckets are shared workspace
/// `obs` log-linear buckets, so merging is element-wise addition).
fn merge_reports(inner: &RouterInner) -> MetricsReport {
    let mut counts = vec![0u64; obs::BUCKETS];
    let mut sum = 0u64;
    let mut max = 0u64;
    let mut total = MetricsReport {
        requests_submitted: 0,
        requests_rejected: 0,
        requests_completed: 0,
        requests_failed: 0,
        requests_timed_out: 0,
        requests_drained: 0,
        batches: 0,
        mean_batch_size: 0.0,
        queue_depth_high_water: 0,
        latency_mean_us: 0.0,
        latency_p50_us: 0,
        latency_p95_us: 0,
        latency_p99_us: 0,
        latency_max_us: 0,
    };
    let mut batch_samples = 0.0f64;
    for shard in &inner.shards {
        let report = shard.metrics().report();
        let snapshot = shard.metrics().latency_snapshot();
        for (merged, count) in counts.iter_mut().zip(&snapshot.counts) {
            *merged += count;
        }
        sum += snapshot.sum;
        max = max.max(snapshot.max);
        total.requests_submitted += report.requests_submitted;
        total.requests_rejected += report.requests_rejected;
        total.requests_completed += report.requests_completed;
        total.requests_failed += report.requests_failed;
        total.requests_timed_out += report.requests_timed_out;
        total.requests_drained += report.requests_drained;
        total.batches += report.batches;
        batch_samples += report.mean_batch_size * report.batches as f64;
        total.queue_depth_high_water = total
            .queue_depth_high_water
            .max(report.queue_depth_high_water);
    }
    if total.batches > 0 {
        total.mean_batch_size = batch_samples / total.batches as f64;
    }
    if total.requests_completed > 0 {
        total.latency_mean_us = sum as f64 / total.requests_completed as f64;
    }
    total.latency_p50_us = merged_quantile(&counts, 0.50);
    total.latency_p95_us = merged_quantile(&counts, 0.95);
    total.latency_p99_us = merged_quantile(&counts, 0.99);
    total.latency_max_us = max;
    total
}

fn merged_quantile(counts: &[u64], q: f64) -> u64 {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return 0;
    }
    let rank = (q * total as f64).ceil() as u64;
    let mut seen = 0u64;
    for (index, count) in counts.iter().enumerate() {
        seen += count;
        if seen >= rank {
            return Histogram::bucket_upper(index);
        }
    }
    Histogram::bucket_upper(counts.len().saturating_sub(1))
}

/// Supervisor body: per tick, restart Down shards whose backoff has
/// elapsed, fail over shards with dead or stalled workers (re-routing
/// their queues to healthy siblings), and feed failure deltas into each
/// shard's circuit breaker. Publishes per-shard gauges and tier
/// counters through `obs`.
fn supervisor_loop(inner: &RouterInner) {
    struct Watch {
        restart_at: Option<Instant>,
        streak: u32,
        prev_failed: u64,
    }
    let config = inner.config.supervisor.clone();
    let mut watches: Vec<Watch> = inner
        .shards
        .iter()
        .map(|_| Watch {
            restart_at: None,
            streak: 0,
            prev_failed: 0,
        })
        .collect();
    while !inner.stop.load(Ordering::Relaxed) {
        std::thread::sleep(config.tick);
        for (shard, watch) in inner.shards.iter().zip(watches.iter_mut()) {
            obs::gauge_set(
                &format!("serve.shard{}.queue_depth", shard.id),
                shard.queue_len() as f64,
            );
            obs::gauge_set(
                &format!("serve.shard{}.in_flight", shard.id),
                shard.metrics().in_flight() as f64,
            );
            if shard.is_down() {
                let due = watch
                    .restart_at
                    .map(|at| Instant::now() >= at)
                    .unwrap_or(true);
                if due {
                    match shard.restart() {
                        Ok(()) => {
                            watch.restart_at = None;
                            inner.restarts.fetch_add(1, Ordering::Relaxed);
                            obs::counter_add("serve.restarts", 1);
                        }
                        Err(_) => {
                            watch.streak = watch.streak.saturating_add(1);
                            watch.restart_at =
                                Some(Instant::now() + restart_backoff(&config, watch.streak));
                        }
                    }
                }
                continue;
            }
            let dead = shard.dead_workers();
            let stalled = shard.stalled(config.stall_deadline);
            if dead > 0 || stalled {
                inner.failovers.fetch_add(1, Ordering::Relaxed);
                obs::counter_add("serve.failovers", 1);
                let pending = shard.fail_over();
                let mut rerouted = 0u64;
                for request in pending {
                    let mut displaced = Some(request);
                    for sibling in &inner.shards {
                        if sibling.id == shard.id || !sibling.health.accepts_traffic() {
                            continue;
                        }
                        let Some(request) = displaced.take() else {
                            break;
                        };
                        match sibling.accept_displaced(request) {
                            Ok(()) => rerouted += 1,
                            Err(bounced) => displaced = Some(bounced),
                        }
                    }
                    // A request no sibling could take drops here: its
                    // ticket resolves WorkerCrashed and the origin shard
                    // records the failure — conserved, never lost.
                }
                inner.rerouted.fetch_add(rerouted, Ordering::Relaxed);
                obs::counter_add("serve.rerouted", rerouted);
                watch.streak = watch.streak.saturating_add(1);
                watch.restart_at = Some(Instant::now() + restart_backoff(&config, watch.streak));
                continue;
            }
            let failed = shard.metrics().failed();
            let delta = failed.saturating_sub(watch.prev_failed);
            watch.prev_failed = failed;
            if shard
                .health
                .record_failures(delta, config.circuit_threshold, config.circuit_cooldown)
            {
                obs::counter_add("serve.circuit_open", 1);
            }
            if delta == 0 {
                watch.streak = 0;
            }
        }
    }
}

fn restart_backoff(config: &SupervisorConfig, streak: u32) -> Duration {
    let factor = 1u32 << streak.saturating_sub(1).min(16);
    config
        .restart_backoff_base
        .saturating_mul(factor)
        .min(config.max_restart_backoff)
}

#[cfg(test)]
mod tests {
    use super::*;
    use neural::plan::FrozenPlan;
    use neural::spec::{LayerSpec, NetworkSpec};
    use neural::Activation;

    /// A dense plan whose output is constantly `marker` (zero weights,
    /// `marker` bias), so a response reveals which version served it.
    fn marker_plan(marker: f32) -> Arc<FrozenPlan> {
        let spec = NetworkSpec::new(4).layer(LayerSpec::Dense {
            units: 2,
            activation: Activation::Linear,
        });
        let weights = vec![vec![vec![0.0; 8], vec![marker; 2]]];
        Arc::new(FrozenPlan::from_spec_weights("marker", &spec, &weights).unwrap())
    }

    fn registry_with_versions(versions: &[(u32, f32)]) -> Arc<ModelRegistry> {
        let registry = Arc::new(ModelRegistry::new());
        for &(version, marker) in versions {
            registry.publish_plan("m", version, marker_plan(marker));
        }
        registry
    }

    fn quiet_supervisor() -> SupervisorConfig {
        SupervisorConfig {
            tick: Duration::from_millis(5),
            ..SupervisorConfig::default()
        }
    }

    #[test]
    fn routes_across_shards_and_aggregates_reports() {
        let registry = registry_with_versions(&[(1, 7.0)]);
        let router = Router::start(
            registry,
            RouterConfig {
                shards: 3,
                supervisor: quiet_supervisor(),
                ..RouterConfig::default()
            },
        )
        .unwrap();
        let tickets: Vec<Ticket> = (0..30)
            .map(|_| router.submit(Request::new("m", vec![0.0; 4])).unwrap())
            .collect();
        for ticket in tickets {
            let prediction = ticket.wait().unwrap();
            assert_eq!(prediction.output, vec![7.0, 7.0]);
            assert_eq!(prediction.model_version, 1);
        }
        let report = router.report();
        assert_eq!(report.total.requests_submitted, 30);
        assert_eq!(report.total.requests_completed, 30);
        assert_eq!(report.shards.len(), 3);
        // Rotation spreads one model's traffic over more than one shard.
        let active = report
            .shards
            .iter()
            .filter(|s| s.metrics.requests_submitted > 0)
            .count();
        assert!(active >= 2, "expected spread, got {report:?}");
        assert!(report.total.latency_p50_us <= report.total.latency_p99_us);
        router.shutdown();
    }

    #[test]
    fn global_in_flight_cap_sheds_with_overloaded() {
        let registry = registry_with_versions(&[(1, 1.0)]);
        // No workers: nothing drains, in-flight grows per submission.
        let router = Router::start(
            registry,
            RouterConfig {
                shards: 2,
                engine: ServeConfig {
                    workers: 0,
                    ..ServeConfig::default()
                },
                admission: AdmissionConfig {
                    max_in_flight: 3,
                    ..AdmissionConfig::default()
                },
                supervisor: quiet_supervisor(),
                ..RouterConfig::default()
            },
        )
        .unwrap();
        for _ in 0..3 {
            router.submit(Request::new("m", vec![0.0; 4])).unwrap();
        }
        let err = router.submit(Request::new("m", vec![0.0; 4])).unwrap_err();
        assert_eq!(
            err,
            SubmitError::Overloaded {
                in_flight: 3,
                limit: 3
            }
        );
        assert_eq!(router.report().shed, 1);
        router.shutdown();
    }

    #[test]
    fn per_shard_cap_spills_to_siblings_then_sheds() {
        let registry = registry_with_versions(&[(1, 1.0)]);
        let router = Router::start(
            registry,
            RouterConfig {
                shards: 2,
                engine: ServeConfig {
                    workers: 0,
                    ..ServeConfig::default()
                },
                admission: AdmissionConfig {
                    max_shard_in_flight: 2,
                    ..AdmissionConfig::default()
                },
                supervisor: quiet_supervisor(),
                ..RouterConfig::default()
            },
        )
        .unwrap();
        // Both shards fill to their cap of 2.
        for _ in 0..4 {
            router.submit(Request::new("m", vec![0.0; 4])).unwrap();
        }
        let err = router.submit(Request::new("m", vec![0.0; 4])).unwrap_err();
        assert!(
            matches!(err, SubmitError::Overloaded { limit: 2, .. }),
            "got {err:?}"
        );
        router.shutdown();
    }

    #[test]
    fn deadline_aware_admission_rejects_predicted_misses() {
        let registry = registry_with_versions(&[(1, 1.0)]);
        let router = Router::start(
            registry,
            RouterConfig {
                shards: 1,
                engine: ServeConfig {
                    workers: 0,
                    ..ServeConfig::default()
                },
                supervisor: quiet_supervisor(),
                ..RouterConfig::default()
            },
        )
        .unwrap();
        // Teach the shard that one batch costs ~100ms.
        let shard = Arc::clone(&router.inner.shards[0]);
        shard
            .metrics()
            .record_batch(1, Duration::from_millis(100));
        let err = router
            .submit(Request::new("m", vec![0.0; 4]).with_deadline(Duration::from_millis(10)))
            .unwrap_err();
        assert!(
            matches!(err, SubmitError::WouldMissDeadline { deadline_us: 10_000, .. }),
            "got {err:?}"
        );
        // A roomy deadline still gets through.
        router
            .submit(Request::new("m", vec![0.0; 4]).with_deadline(Duration::from_secs(5)))
            .unwrap();
        router.shutdown();
    }

    #[test]
    fn cordoned_everything_reports_no_healthy_shard() {
        let registry = registry_with_versions(&[(1, 1.0)]);
        let router = Router::start(
            registry,
            RouterConfig {
                shards: 2,
                supervisor: quiet_supervisor(),
                ..RouterConfig::default()
            },
        )
        .unwrap();
        for shard in &router.inner.shards {
            shard.health.cordon();
        }
        assert_eq!(
            router.submit(Request::new("m", vec![0.0; 4])).unwrap_err(),
            SubmitError::NoHealthyShard
        );
        for shard in &router.inner.shards {
            shard.health.uncordon();
        }
        router.submit(Request::new("m", vec![0.0; 4])).unwrap();
        router.shutdown();
    }

    #[test]
    fn version_pins_override_latest_resolution() {
        let registry = registry_with_versions(&[(1, 1.0), (2, 2.0)]);
        let router = Router::start(
            registry,
            RouterConfig {
                shards: 1,
                supervisor: quiet_supervisor(),
                ..RouterConfig::default()
            },
        )
        .unwrap();
        // Unpinned: newest version wins.
        let prediction = router
            .submit(Request::new("m", vec![0.0; 4]))
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(prediction.model_version, 2);
        // Pin shard 0 back to v1: unversioned requests follow the pin…
        set_pin(&router.inner, "m", 0, Some(1));
        let prediction = router
            .submit(Request::new("m", vec![0.0; 4]))
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(prediction.model_version, 1);
        assert_eq!(prediction.output, vec![1.0, 1.0]);
        // …but an explicit version still beats the pin.
        let prediction = router
            .submit(Request::new("m", vec![0.0; 4]).with_version(2))
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(prediction.model_version, 2);
        router.shutdown();
    }

    #[test]
    fn rolling_swap_moves_every_shard_to_the_new_version() {
        let registry = registry_with_versions(&[(1, 1.0), (2, 2.0)]);
        let router = Router::start(
            registry,
            RouterConfig {
                shards: 3,
                supervisor: quiet_supervisor(),
                ..RouterConfig::default()
            },
        )
        .unwrap();
        // Hold the fleet on v1 first.
        for shard in 0..3 {
            set_pin(&router.inner, "m", shard, Some(1));
        }
        let report = router.rolling_swap("m", 2).unwrap();
        assert_eq!(report.shards_swapped, 3);
        assert_eq!(report.version, 2);
        for _ in 0..12 {
            let prediction = router
                .submit(Request::new("m", vec![0.0; 4]))
                .unwrap()
                .wait()
                .unwrap();
            assert_eq!(prediction.model_version, 2, "stale version after swap");
        }
        // Nobody is left cordoned.
        for shard in &router.inner.shards {
            assert!(shard.health.accepts_traffic());
        }
        router.shutdown();
    }

    #[test]
    fn rolling_swap_to_unknown_version_fails_before_touching_shards() {
        let registry = registry_with_versions(&[(1, 1.0)]);
        let router = Router::start(
            registry,
            RouterConfig {
                shards: 2,
                supervisor: quiet_supervisor(),
                ..RouterConfig::default()
            },
        )
        .unwrap();
        assert!(matches!(
            router.rolling_swap("m", 9),
            Err(ServeError::UnknownModel { .. })
        ));
        for shard in &router.inner.shards {
            assert!(shard.health.accepts_traffic(), "no shard may stay cordoned");
        }
        router.shutdown();
    }

    #[test]
    fn merged_quantile_spans_shard_histograms() {
        let counts_empty = vec![0u64; obs::BUCKETS];
        assert_eq!(merged_quantile(&counts_empty, 0.99), 0);
        let mut counts = vec![0u64; obs::BUCKETS];
        counts[Histogram::bucket_index(100)] = 99;
        counts[Histogram::bucket_index(100_000)] = 1;
        assert!(merged_quantile(&counts, 0.50) < 200);
        assert!(merged_quantile(&counts, 1.0) >= 100_000);
    }

    #[test]
    fn restart_backoff_is_exponential_and_capped() {
        let config = SupervisorConfig {
            restart_backoff_base: Duration::from_millis(50),
            max_restart_backoff: Duration::from_millis(400),
            ..SupervisorConfig::default()
        };
        assert_eq!(restart_backoff(&config, 1), Duration::from_millis(50));
        assert_eq!(restart_backoff(&config, 2), Duration::from_millis(100));
        assert_eq!(restart_backoff(&config, 3), Duration::from_millis(200));
        assert_eq!(restart_backoff(&config, 10), Duration::from_millis(400));
    }
}
