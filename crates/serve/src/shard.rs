//! One supervised shard: an [`Engine`] plus the health, restart, and
//! failover bookkeeping the router's supervisor drives.
//!
//! The shard owns its [`ServeMetrics`] across engine restarts, so the
//! per-shard conservation invariant (`submitted = completed + failed +
//! timed_out + drained + in-flight`) spans failovers: a request admitted
//! by shard 2, re-routed to shard 0 after shard 2's worker panicked, and
//! completed there still resolves on shard 2's counters.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use faultsim::FaultPlan;
use parking_lot::RwLock;

use crate::engine::{Engine, Request, Ticket};
use crate::health::{HealthState, ShardHealth};
use crate::metrics::ServeMetrics;
use crate::queue::PendingRequest;
use crate::registry::ModelRegistry;
use crate::{ServeConfig, ServeError, SubmitError};

/// A supervised serving shard. All routing goes through the router; the
/// shard only carries per-shard state and the engine swap slot.
pub(crate) struct Shard {
    pub(crate) id: usize,
    registry: Arc<ModelRegistry>,
    config: ServeConfig,
    fault_plan: Option<Arc<FaultPlan>>,
    metrics: Arc<ServeMetrics>,
    /// The live engine, or `None` while the shard is down awaiting
    /// restart. Lock order: `engine` is acquired before the registry's
    /// `models` lock (taken inside `Engine::submit`).
    engine: RwLock<Option<Engine>>,
    pub(crate) health: ShardHealth,
    restarts: AtomicU64,
}

impl Shard {
    pub(crate) fn start(
        id: usize,
        registry: Arc<ModelRegistry>,
        config: ServeConfig,
        fault_plan: Option<Arc<FaultPlan>>,
    ) -> Result<Self, ServeError> {
        let metrics = Arc::new(ServeMetrics::new());
        let engine = Engine::start_sharded(
            Arc::clone(&registry),
            config.clone(),
            id,
            fault_plan.clone(),
            Arc::clone(&metrics),
        )?;
        Ok(Self {
            id,
            registry,
            config,
            fault_plan,
            metrics,
            engine: RwLock::new(Some(engine)),
            health: ShardHealth::new(),
            restarts: AtomicU64::new(0),
        })
    }

    /// Submits with the router's version pin applied when the request
    /// does not carry its own version. A down shard (engine slot empty)
    /// reports `ShuttingDown`; the router treats that as "try the next
    /// shard".
    pub(crate) fn submit_pinned(
        &self,
        mut request: Request,
        pin: Option<u32>,
    ) -> Result<Ticket, SubmitError> {
        if request.version.is_none() {
            request.version = pin;
        }
        match self.engine.read().as_ref() {
            Some(engine) => engine.submit(request),
            None => Err(SubmitError::ShuttingDown),
        }
    }

    pub(crate) fn metrics(&self) -> &Arc<ServeMetrics> {
        &self.metrics
    }

    pub(crate) fn restarts(&self) -> u64 {
        self.restarts.load(Ordering::Relaxed)
    }

    pub(crate) fn queue_len(&self) -> usize {
        self.engine
            .read()
            .as_ref()
            .map(Engine::queue_len)
            .unwrap_or(0)
    }

    pub(crate) fn is_down(&self) -> bool {
        self.engine.read().is_none()
    }

    /// Worker threads of the live engine that have exited.
    pub(crate) fn dead_workers(&self) -> usize {
        self.engine
            .read()
            .as_ref()
            .map(Engine::dead_workers)
            .unwrap_or(0)
    }

    /// `true` if some worker has been stuck on one batch past
    /// `stall_deadline`.
    pub(crate) fn stalled(&self, stall_deadline: Duration) -> bool {
        self.engine
            .read()
            .as_ref()
            .map(|engine| engine.stalled(stall_deadline))
            .unwrap_or(false)
    }

    /// Takes the shard out of service: marks it Down, removes the
    /// engine, and hands back every still-queued request for re-routing.
    /// Never joins workers (a wedged worker must not wedge its own
    /// failover); a detached live worker finishes its in-flight batch
    /// and exits on the closed queue.
    pub(crate) fn fail_over(&self) -> Vec<PendingRequest> {
        self.health.set_state(HealthState::Down);
        let engine = self.engine.write().take();
        match engine {
            Some(engine) => engine.decommission(),
            None => Vec::new(),
        }
    }

    /// Restarts a Down shard with a fresh engine over the *same*
    /// metrics, so counters (and the conservation invariant) continue
    /// across the restart.
    pub(crate) fn restart(&self) -> Result<(), ServeError> {
        let engine = Engine::start_sharded(
            Arc::clone(&self.registry),
            self.config.clone(),
            self.id,
            self.fault_plan.clone(),
            Arc::clone(&self.metrics),
        )?;
        *self.engine.write() = Some(engine);
        self.restarts.fetch_add(1, Ordering::Relaxed);
        self.health.set_state(HealthState::Healthy);
        Ok(())
    }

    /// Accepts a request displaced from a failed sibling (terminal
    /// accounting stays on the origin shard). Hands the request back if
    /// this shard is down or its queue is full.
    pub(crate) fn accept_displaced(&self, request: PendingRequest) -> Result<(), PendingRequest> {
        match self.engine.read().as_ref() {
            Some(engine) => engine.push_displaced(request),
            None => Err(request),
        }
    }

    /// Graceful shutdown: drain and join (unlike failover).
    pub(crate) fn shutdown(&self) {
        self.health.set_state(HealthState::Down);
        if let Some(engine) = self.engine.write().take() {
            engine.shutdown();
        }
    }
}

impl std::fmt::Debug for Shard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shard")
            .field("id", &self.id)
            .field("health", &self.health.state())
            .field("restarts", &self.restarts())
            .finish_non_exhaustive()
    }
}
