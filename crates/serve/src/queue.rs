//! Bounded submission queue with backpressure and batch-forming pops.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use neural::plan::FrozenPlan;
use parking_lot::{Condvar, Mutex};

use crate::engine::ResponseSlot;
use crate::metrics::ServeMetrics;
use crate::{ServeError, SubmitError};

/// One queued prediction request. The plan `Arc` is resolved at submit
/// time, so a hot-swap published after submission never affects this
/// request — it drains on the model it was admitted under.
pub(crate) struct PendingRequest {
    pub plan: Arc<FrozenPlan>,
    pub version: u32,
    pub input: Vec<f32>,
    pub enqueued: Instant,
    pub deadline: Instant,
    pub slot: Arc<ResponseSlot>,
    /// Metrics of the shard that admitted this request. Terminal
    /// outcomes always land here, even if a supervisor re-routes the
    /// request to a sibling shard's queue.
    pub metrics: Arc<ServeMetrics>,
}

impl std::fmt::Debug for PendingRequest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PendingRequest")
            .field("version", &self.version)
            .field("input_len", &self.input.len())
            .field("deadline", &self.deadline)
            .finish_non_exhaustive()
    }
}

impl PendingRequest {
    /// Discards a request that was *rejected before admission*: the
    /// slot completes (no ticket exists, so nobody observes it) without
    /// the crash-completion path recording a spurious failure.
    pub(crate) fn reject(self) {
        self.slot.complete(Err(ServeError::ShuttingDown));
    }
}

impl Drop for PendingRequest {
    /// Last-resort completion: if this request is dropped without a
    /// terminal result — a worker panicked mid-batch and unwound, or a
    /// failed shard's queue could not be re-homed — the waiting
    /// [`crate::Ticket`] still resolves instead of blocking forever.
    fn drop(&mut self) {
        if self.slot.complete(Err(ServeError::WorkerCrashed)) {
            self.metrics.record_failed();
        }
    }
}

struct QueueState {
    requests: VecDeque<PendingRequest>,
    closed: bool,
}

/// A fixed-capacity MPMC queue. Producers never block: a full queue is an
/// immediate [`SubmitError::QueueFull`]. Consumers block until work
/// arrives or the queue closes, and pop *batches* of requests sharing one
/// plan rather than single items.
pub(crate) struct BoundedQueue {
    state: Mutex<QueueState>,
    not_empty: Condvar,
    capacity: usize,
    high_water: AtomicUsize,
}

impl BoundedQueue {
    pub fn new(capacity: usize) -> Self {
        Self {
            state: Mutex::new(QueueState {
                requests: VecDeque::with_capacity(capacity.min(1024)),
                closed: false,
            }),
            not_empty: Condvar::new(),
            capacity,
            high_water: AtomicUsize::new(0),
        }
    }

    /// Non-blocking push: backpressure instead of waiting. On rejection
    /// the request is handed back so the caller decides its fate
    /// (reject the submission, or re-route to a sibling shard) — it is
    /// never silently dropped into the crash-completion path.
    pub fn try_push(
        &self,
        request: PendingRequest,
    ) -> Result<usize, (SubmitError, PendingRequest)> {
        let mut state = self.state.lock();
        if state.closed {
            return Err((SubmitError::ShuttingDown, request));
        }
        if state.requests.len() >= self.capacity {
            return Err((
                SubmitError::QueueFull {
                    capacity: self.capacity,
                },
                request,
            ));
        }
        state.requests.push_back(request);
        let depth = state.requests.len();
        drop(state);
        self.high_water.fetch_max(depth, Ordering::Relaxed);
        self.not_empty.notify_one();
        Ok(depth)
    }

    /// Blocks until at least one request is available (or the queue is
    /// closed *and* drained — then returns `None`), then forms a batch:
    /// the front request plus every queued request resolved to the same
    /// plan, up to `max_batch`. If the batch is still short, waits up to
    /// `linger` for stragglers to coalesce before dispatching.
    ///
    /// Requests for *other* plans keep their FIFO order.
    pub fn pop_batch(&self, max_batch: usize, linger: Duration) -> Option<Vec<PendingRequest>> {
        let max_batch = max_batch.max(1);
        let mut state = self.state.lock();
        loop {
            if let Some(first) = state.requests.pop_front() {
                let mut batch = Vec::with_capacity(max_batch);
                let plan = Arc::clone(&first.plan);
                batch.push(first);
                extract_same_plan(&mut state.requests, &plan, &mut batch, max_batch);
                if batch.len() < max_batch && !linger.is_zero() {
                    let linger_until = Instant::now() + linger;
                    while batch.len() < max_batch && !state.closed {
                        let now = Instant::now();
                        let Some(remaining) = linger_until.checked_duration_since(now).filter(|d| !d.is_zero()) else {
                            break;
                        };
                        let (next, timeout) = self.not_empty.wait_timeout(state, remaining);
                        state = next;
                        extract_same_plan(&mut state.requests, &plan, &mut batch, max_batch);
                        if timeout.timed_out() {
                            break;
                        }
                    }
                }
                // A linger may have absorbed a wake-up meant for a sibling
                // worker; if work remains, pass the signal on.
                if !state.requests.is_empty() {
                    self.not_empty.notify_one();
                }
                return Some(batch);
            }
            if state.closed {
                return None;
            }
            state = self.not_empty.wait(state);
        }
    }

    /// Closes the queue: future pushes fail, consumers drain what is left
    /// and then see `None`.
    pub fn close(&self) {
        self.state.lock().closed = true;
        self.not_empty.notify_all();
    }

    /// Removes and returns everything still queued (shutdown cleanup).
    pub fn drain(&self) -> Vec<PendingRequest> {
        self.state.lock().requests.drain(..).collect()
    }

    /// Highest depth the queue ever reached.
    pub fn high_water(&self) -> usize {
        self.high_water.load(Ordering::Relaxed)
    }

    /// Current queue depth (one brief lock; used by admission control,
    /// not by the worker hot path).
    pub fn len(&self) -> usize {
        self.state.lock().requests.len()
    }
}

/// Moves queued requests sharing `plan` (by `Arc` identity) into `batch`,
/// preserving the relative order of everything left behind.
fn extract_same_plan(
    requests: &mut VecDeque<PendingRequest>,
    plan: &Arc<FrozenPlan>,
    batch: &mut Vec<PendingRequest>,
    max_batch: usize,
) {
    let mut i = 0;
    while i < requests.len() && batch.len() < max_batch {
        if Arc::ptr_eq(&requests[i].plan, plan) {
            if let Some(request) = requests.remove(i) {
                batch.push(request);
            }
        } else {
            i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neural::spec::{LayerSpec, NetworkSpec};
    use neural::Activation;

    fn plan() -> Arc<FrozenPlan> {
        let spec = NetworkSpec::new(2).layer(LayerSpec::Dense {
            units: 1,
            activation: Activation::Linear,
        });
        let net = spec.build(1).unwrap();
        Arc::new(FrozenPlan::from_spec_weights("q", &spec, &net.export_weights()).unwrap())
    }

    fn request(plan: &Arc<FrozenPlan>) -> PendingRequest {
        let now = Instant::now();
        PendingRequest {
            plan: Arc::clone(plan),
            version: 1,
            input: vec![0.0, 0.0],
            enqueued: now,
            deadline: now + Duration::from_secs(60),
            slot: Arc::new(ResponseSlot::new()),
            metrics: Arc::new(ServeMetrics::new()),
        }
    }

    #[test]
    fn dropped_request_resolves_its_ticket_with_a_crash_error() {
        let p = plan();
        let pending = request(&p);
        let slot = Arc::clone(&pending.slot);
        let metrics = Arc::clone(&pending.metrics);
        drop(pending);
        assert_eq!(
            slot.take_result(),
            Some(Err(ServeError::WorkerCrashed)),
            "dropping an unserved request must complete its slot"
        );
        assert_eq!(metrics.report().requests_failed, 1);
    }

    #[test]
    fn full_queue_rejects_promptly_without_blocking() {
        let queue = BoundedQueue::new(2);
        let p = plan();
        queue.try_push(request(&p)).unwrap();
        queue.try_push(request(&p)).unwrap();
        let started = Instant::now();
        let (err, bounced) = queue.try_push(request(&p)).unwrap_err();
        assert_eq!(err, SubmitError::QueueFull { capacity: 2 });
        bounced.reject();
        assert!(
            started.elapsed() < Duration::from_millis(50),
            "backpressure must be immediate, took {:?}",
            started.elapsed()
        );
        assert_eq!(queue.high_water(), 2);
    }

    #[test]
    fn closed_queue_rejects_pushes_and_drains_pops() {
        let queue = BoundedQueue::new(4);
        let p = plan();
        queue.try_push(request(&p)).unwrap();
        queue.close();
        assert_eq!(
            queue.try_push(request(&p)).unwrap_err().0,
            SubmitError::ShuttingDown
        );
        let batch = queue.pop_batch(8, Duration::ZERO).unwrap();
        assert_eq!(batch.len(), 1);
        assert!(queue.pop_batch(8, Duration::ZERO).is_none());
    }

    #[test]
    fn pop_batch_coalesces_same_plan_only() {
        let queue = BoundedQueue::new(8);
        let a = plan();
        let b = plan();
        queue.try_push(request(&a)).unwrap();
        queue.try_push(request(&b)).unwrap();
        queue.try_push(request(&a)).unwrap();
        queue.try_push(request(&a)).unwrap();
        let batch = queue.pop_batch(8, Duration::ZERO).unwrap();
        assert_eq!(batch.len(), 3);
        assert!(batch.iter().all(|r| Arc::ptr_eq(&r.plan, &a)));
        let batch = queue.pop_batch(8, Duration::ZERO).unwrap();
        assert_eq!(batch.len(), 1);
        assert!(Arc::ptr_eq(&batch[0].plan, &b));
    }

    #[test]
    fn pop_batch_respects_max_batch() {
        let queue = BoundedQueue::new(8);
        let p = plan();
        for _ in 0..5 {
            queue.try_push(request(&p)).unwrap();
        }
        assert_eq!(queue.pop_batch(2, Duration::ZERO).unwrap().len(), 2);
        assert_eq!(queue.pop_batch(2, Duration::ZERO).unwrap().len(), 2);
        assert_eq!(queue.pop_batch(2, Duration::ZERO).unwrap().len(), 1);
    }

    #[test]
    fn linger_collects_late_arrivals() {
        let queue = Arc::new(BoundedQueue::new(8));
        let p = plan();
        queue.try_push(request(&p)).unwrap();
        let producer = {
            let queue = Arc::clone(&queue);
            let p = Arc::clone(&p);
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(10));
                queue.try_push(request(&p)).unwrap();
            })
        };
        let batch = queue.pop_batch(2, Duration::from_millis(500)).unwrap();
        producer.join().unwrap();
        assert_eq!(batch.len(), 2, "linger should have absorbed the late request");
    }
}
