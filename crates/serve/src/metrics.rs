//! Serving metrics: atomic counters + a fixed-bucket latency histogram.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use serde::{Deserialize, Serialize};

/// Number of power-of-two latency buckets. Bucket `i` covers
/// `[2^i, 2^(i+1))` microseconds (bucket 0 also absorbs sub-microsecond
/// latencies), so 40 buckets span up to ~12 days — far beyond any
/// deadline.
const BUCKETS: usize = 40;

fn bucket_index(micros: u64) -> usize {
    let idx = 63 - (micros | 1).leading_zeros() as usize;
    idx.min(BUCKETS - 1)
}

/// Upper bound (µs) of a bucket, reported as the conservative quantile
/// estimate.
fn bucket_upper_micros(index: usize) -> u64 {
    (1u64 << (index + 1)) - 1
}

/// Live engine counters. All updates are single atomic operations — no
/// lock sits on the request hot path. Snapshot with
/// [`ServeMetrics::report`].
#[derive(Debug)]
pub struct ServeMetrics {
    submitted: AtomicU64,
    rejected: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    timed_out: AtomicU64,
    batches: AtomicU64,
    batched_samples: AtomicU64,
    queue_high_water: AtomicU64,
    latency_sum_us: AtomicU64,
    latency_max_us: AtomicU64,
    latency_buckets: [AtomicU64; BUCKETS],
}

impl Default for ServeMetrics {
    fn default() -> Self {
        Self {
            submitted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            timed_out: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            batched_samples: AtomicU64::new(0),
            queue_high_water: AtomicU64::new(0),
            latency_sum_us: AtomicU64::new(0),
            latency_max_us: AtomicU64::new(0),
            latency_buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl ServeMetrics {
    /// Fresh, all-zero metrics.
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn record_submitted(&self) {
        self.submitted.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_rejected(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_failed(&self) {
        self.failed.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_timed_out(&self) {
        self.timed_out.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_queue_depth(&self, depth: usize) {
        self.queue_high_water
            .fetch_max(depth as u64, Ordering::Relaxed);
    }

    pub(crate) fn record_batch(&self, samples: usize) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batched_samples
            .fetch_add(samples as u64, Ordering::Relaxed);
    }

    pub(crate) fn record_completed(&self, latency: Duration) {
        self.completed.fetch_add(1, Ordering::Relaxed);
        let us = u64::try_from(latency.as_micros()).unwrap_or(u64::MAX);
        self.latency_sum_us.fetch_add(us, Ordering::Relaxed);
        self.latency_max_us.fetch_max(us, Ordering::Relaxed);
        self.latency_buckets[bucket_index(us)].fetch_add(1, Ordering::Relaxed);
    }

    /// Requests accepted so far.
    pub fn submitted(&self) -> u64 {
        self.submitted.load(Ordering::Relaxed)
    }

    /// Requests rejected with queue-full backpressure.
    pub fn rejected(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }

    /// Requests completed successfully.
    pub fn completed(&self) -> u64 {
        self.completed.load(Ordering::Relaxed)
    }

    /// Snapshots every counter into a serializable report.
    pub fn report(&self) -> MetricsReport {
        let buckets: Vec<u64> = self
            .latency_buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = buckets.iter().sum();
        let quantile = |q: f64| -> u64 {
            if total == 0 {
                return 0;
            }
            let rank = (q * total as f64).ceil() as u64;
            let mut seen = 0u64;
            for (i, &count) in buckets.iter().enumerate() {
                seen += count;
                if seen >= rank {
                    return bucket_upper_micros(i);
                }
            }
            bucket_upper_micros(BUCKETS - 1)
        };
        let completed = self.completed.load(Ordering::Relaxed);
        let batches = self.batches.load(Ordering::Relaxed);
        let batched_samples = self.batched_samples.load(Ordering::Relaxed);
        MetricsReport {
            requests_submitted: self.submitted.load(Ordering::Relaxed),
            requests_rejected: self.rejected.load(Ordering::Relaxed),
            requests_completed: completed,
            requests_failed: self.failed.load(Ordering::Relaxed),
            requests_timed_out: self.timed_out.load(Ordering::Relaxed),
            batches,
            mean_batch_size: if batches == 0 {
                0.0
            } else {
                batched_samples as f64 / batches as f64
            },
            queue_depth_high_water: self.queue_high_water.load(Ordering::Relaxed),
            latency_mean_us: if completed == 0 {
                0.0
            } else {
                self.latency_sum_us.load(Ordering::Relaxed) as f64 / completed as f64
            },
            latency_p50_us: quantile(0.50),
            latency_p95_us: quantile(0.95),
            latency_p99_us: quantile(0.99),
            latency_max_us: self.latency_max_us.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time, serializable snapshot of [`ServeMetrics`].
///
/// Percentiles are conservative upper bounds from the power-of-two bucket
/// histogram (a p95 of `2047` means "95% of requests finished within
/// 2047 µs").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsReport {
    /// Requests accepted into the queue.
    pub requests_submitted: u64,
    /// Requests rejected with [`crate::SubmitError::QueueFull`].
    pub requests_rejected: u64,
    /// Requests completed successfully.
    pub requests_completed: u64,
    /// Requests completed with an error.
    pub requests_failed: u64,
    /// Requests that sat past their deadline before execution.
    pub requests_timed_out: u64,
    /// Micro-batches executed.
    pub batches: u64,
    /// Mean samples per executed batch.
    pub mean_batch_size: f64,
    /// Highest queue depth observed.
    pub queue_depth_high_water: u64,
    /// Mean submit-to-completion latency (µs).
    pub latency_mean_us: f64,
    /// Median latency upper bound (µs).
    pub latency_p50_us: u64,
    /// 95th-percentile latency upper bound (µs).
    pub latency_p95_us: u64,
    /// 99th-percentile latency upper bound (µs).
    pub latency_p99_us: u64,
    /// Worst observed latency (µs).
    pub latency_max_us: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_monotone_powers_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 1);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(1024), 10);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
        for i in 0..BUCKETS - 1 {
            assert!(bucket_upper_micros(i) < bucket_upper_micros(i + 1));
        }
    }

    #[test]
    fn report_orders_percentiles() {
        let m = ServeMetrics::new();
        for us in [10u64, 20, 50, 100, 400, 900, 2_000, 9_000, 40_000, 100_000] {
            m.record_completed(Duration::from_micros(us));
        }
        let report = m.report();
        assert_eq!(report.requests_completed, 10);
        assert!(report.latency_p50_us <= report.latency_p95_us);
        assert!(report.latency_p95_us <= report.latency_p99_us);
        assert!(report.latency_p99_us >= 100_000 >> 1, "{report:?}");
        assert_eq!(report.latency_max_us, 100_000);
        assert!(report.latency_mean_us > 0.0);
    }

    #[test]
    fn empty_report_is_all_zero() {
        let report = ServeMetrics::new().report();
        assert_eq!(report.requests_completed, 0);
        assert_eq!(report.latency_p50_us, 0);
        assert_eq!(report.mean_batch_size, 0.0);
    }

    #[test]
    fn counters_accumulate() {
        let m = ServeMetrics::new();
        m.record_submitted();
        m.record_submitted();
        m.record_rejected();
        m.record_failed();
        m.record_timed_out();
        m.record_batch(4);
        m.record_batch(2);
        m.record_queue_depth(7);
        m.record_queue_depth(3);
        let report = m.report();
        assert_eq!(report.requests_submitted, 2);
        assert_eq!(report.requests_rejected, 1);
        assert_eq!(report.requests_failed, 1);
        assert_eq!(report.requests_timed_out, 1);
        assert_eq!(report.batches, 2);
        assert_eq!(report.mean_batch_size, 3.0);
        assert_eq!(report.queue_depth_high_water, 7);
    }

    #[test]
    fn report_serializes() {
        let m = ServeMetrics::new();
        m.record_completed(Duration::from_micros(42));
        let json = serde_json::to_string(&m.report()).unwrap();
        assert!(json.contains("latency_p95_us"));
        let parsed: MetricsReport = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed, m.report());
    }
}
