//! Serving metrics, backed by the workspace `obs` primitives.
//!
//! [`ServeMetrics`] used to carry its own bespoke power-of-two latency
//! histogram; it now composes `obs::{Counter, Gauge, Histogram}` so the
//! serving layer shares one histogram implementation with the rest of
//! the workspace. The report shape and arithmetic are unchanged —
//! `BENCH_serve.json` output stays byte-identical across the migration.

use std::time::Duration;

use obs::{Counter, Gauge, Histogram};
use serde::{Deserialize, Serialize};

/// Live engine counters. All updates are single atomic operations — no
/// lock sits on the request hot path. Snapshot with
/// [`ServeMetrics::report`].
#[derive(Debug, Default)]
pub struct ServeMetrics {
    submitted: Counter,
    rejected: Counter,
    failed: Counter,
    timed_out: Counter,
    queue_high_water: Counter,
    queue_depth: Gauge,
    batch_sizes: Histogram,
    latency: Histogram,
}

impl ServeMetrics {
    /// Fresh, all-zero metrics.
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn record_submitted(&self) {
        self.submitted.inc();
    }

    pub(crate) fn record_rejected(&self) {
        self.rejected.inc();
        obs::counter_add("serve.rejected", 1);
    }

    pub(crate) fn record_failed(&self) {
        self.failed.inc();
    }

    pub(crate) fn record_timed_out(&self) {
        self.timed_out.inc();
    }

    pub(crate) fn record_queue_depth(&self, depth: usize) {
        self.queue_high_water.record_max(depth as u64);
        self.queue_depth.set(depth as f64);
        obs::gauge_set("serve.queue_depth", depth as f64);
    }

    pub(crate) fn record_batch(&self, samples: usize) {
        self.batch_sizes.observe(samples as u64);
    }

    pub(crate) fn record_completed(&self, latency: Duration) {
        let us = u64::try_from(latency.as_micros()).unwrap_or(u64::MAX);
        self.latency.observe(us);
    }

    /// Requests accepted so far.
    pub fn submitted(&self) -> u64 {
        self.submitted.get()
    }

    /// Requests rejected with queue-full backpressure.
    pub fn rejected(&self) -> u64 {
        self.rejected.get()
    }

    /// Requests completed successfully.
    pub fn completed(&self) -> u64 {
        self.latency.count()
    }

    /// Most recently observed queue depth.
    pub fn queue_depth(&self) -> f64 {
        self.queue_depth.get()
    }

    /// Snapshots every counter into a serializable report.
    pub fn report(&self) -> MetricsReport {
        let completed = self.latency.count();
        let batch = self.batch_sizes.snapshot();
        MetricsReport {
            requests_submitted: self.submitted.get(),
            requests_rejected: self.rejected.get(),
            requests_completed: completed,
            requests_failed: self.failed.get(),
            requests_timed_out: self.timed_out.get(),
            batches: batch.count,
            mean_batch_size: if batch.count == 0 {
                0.0
            } else {
                batch.sum as f64 / batch.count as f64
            },
            queue_depth_high_water: self.queue_high_water.get(),
            latency_mean_us: if completed == 0 {
                0.0
            } else {
                self.latency.sum() as f64 / completed as f64
            },
            latency_p50_us: self.latency.quantile_upper(0.50),
            latency_p95_us: self.latency.quantile_upper(0.95),
            latency_p99_us: self.latency.quantile_upper(0.99),
            latency_max_us: self.latency.max(),
        }
    }
}

/// A point-in-time, serializable snapshot of [`ServeMetrics`].
///
/// Percentiles are conservative upper bounds from the power-of-two bucket
/// histogram (a p95 of `2047` means "95% of requests finished within
/// 2047 µs").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsReport {
    /// Requests accepted into the queue.
    pub requests_submitted: u64,
    /// Requests rejected with [`crate::SubmitError::QueueFull`].
    pub requests_rejected: u64,
    /// Requests completed successfully.
    pub requests_completed: u64,
    /// Requests completed with an error.
    pub requests_failed: u64,
    /// Requests that sat past their deadline before execution.
    pub requests_timed_out: u64,
    /// Micro-batches executed.
    pub batches: u64,
    /// Mean samples per executed batch.
    pub mean_batch_size: f64,
    /// Highest queue depth observed.
    pub queue_depth_high_water: u64,
    /// Mean submit-to-completion latency (µs).
    pub latency_mean_us: f64,
    /// Median latency upper bound (µs).
    pub latency_p50_us: u64,
    /// 95th-percentile latency upper bound (µs).
    pub latency_p95_us: u64,
    /// 99th-percentile latency upper bound (µs).
    pub latency_p99_us: u64,
    /// Worst observed latency (µs).
    pub latency_max_us: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_monotone_powers_of_two() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 0);
        assert_eq!(Histogram::bucket_index(2), 1);
        assert_eq!(Histogram::bucket_index(3), 1);
        assert_eq!(Histogram::bucket_index(4), 2);
        assert_eq!(Histogram::bucket_index(1024), 10);
        assert_eq!(Histogram::bucket_index(u64::MAX), obs::BUCKETS - 1);
        for i in 0..obs::BUCKETS - 1 {
            assert!(Histogram::bucket_upper(i) < Histogram::bucket_upper(i + 1));
        }
    }

    #[test]
    fn report_orders_percentiles() {
        let m = ServeMetrics::new();
        for us in [10u64, 20, 50, 100, 400, 900, 2_000, 9_000, 40_000, 100_000] {
            m.record_completed(Duration::from_micros(us));
        }
        let report = m.report();
        assert_eq!(report.requests_completed, 10);
        assert!(report.latency_p50_us <= report.latency_p95_us);
        assert!(report.latency_p95_us <= report.latency_p99_us);
        assert!(report.latency_p99_us >= 100_000 >> 1, "{report:?}");
        assert_eq!(report.latency_max_us, 100_000);
        assert!(report.latency_mean_us > 0.0);
    }

    #[test]
    fn empty_report_is_all_zero() {
        let report = ServeMetrics::new().report();
        assert_eq!(report.requests_completed, 0);
        assert_eq!(report.latency_p50_us, 0);
        assert_eq!(report.mean_batch_size, 0.0);
    }

    #[test]
    fn counters_accumulate() {
        let m = ServeMetrics::new();
        m.record_submitted();
        m.record_submitted();
        m.record_rejected();
        m.record_failed();
        m.record_timed_out();
        m.record_batch(4);
        m.record_batch(2);
        m.record_queue_depth(7);
        m.record_queue_depth(3);
        let report = m.report();
        assert_eq!(report.requests_submitted, 2);
        assert_eq!(report.requests_rejected, 1);
        assert_eq!(report.requests_failed, 1);
        assert_eq!(report.requests_timed_out, 1);
        assert_eq!(report.batches, 2);
        assert_eq!(report.mean_batch_size, 3.0);
        assert_eq!(report.queue_depth_high_water, 7);
        assert_eq!(m.queue_depth(), 3.0);
    }

    #[test]
    fn report_serializes() {
        let m = ServeMetrics::new();
        m.record_completed(Duration::from_micros(42));
        let json = serde_json::to_string(&m.report()).unwrap();
        assert!(json.contains("latency_p95_us"));
        let parsed: MetricsReport = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed, m.report());
    }
}
