//! Serving metrics, backed by the workspace `obs` primitives.
//!
//! [`ServeMetrics`] used to carry its own bespoke power-of-two latency
//! histogram; it now composes `obs::{Counter, Gauge, Histogram}` so the
//! serving layer shares one histogram implementation with the rest of
//! the workspace. The shared histogram is log-linear (eight linear
//! sub-buckets per power-of-two range), so `BENCH_serve.json` reports
//! p50/p95/p99 with at most 12.5% relative error instead of saturating
//! one coarse power-of-two bucket. Report field names are unchanged.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use obs::{Counter, Gauge, Histogram, HistogramSnapshot};
use serde::{Deserialize, Serialize};

/// Live engine counters. All updates are single atomic operations — no
/// lock sits on the request hot path. Snapshot with
/// [`ServeMetrics::report`].
///
/// In the sharded tier each shard owns one `ServeMetrics` that survives
/// engine restarts, and every request records its terminal outcome on
/// the metrics of the shard that *admitted* it — so per-shard
/// conservation (`submitted` equals `completed + failed + timed_out +
/// drained + in-flight`) holds even when the supervisor re-routes a
/// failed shard's queue to a sibling.
#[derive(Debug, Default)]
pub struct ServeMetrics {
    submitted: Counter,
    rejected: Counter,
    failed: Counter,
    timed_out: Counter,
    drained: Counter,
    queue_high_water: Counter,
    queue_depth: Gauge,
    batch_sizes: Histogram,
    latency: Histogram,
    /// EWMA of micro-batch wall time in µs (α = 1/5), feeding the
    /// router's deadline-aware admission estimate.
    batch_ewma_us: AtomicU64,
}

impl ServeMetrics {
    /// Fresh, all-zero metrics.
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn record_submitted(&self) {
        self.submitted.inc();
    }

    pub(crate) fn record_rejected(&self) {
        self.rejected.inc();
        obs::counter_add("serve.rejected", 1);
    }

    pub(crate) fn record_failed(&self) {
        self.failed.inc();
    }

    pub(crate) fn record_timed_out(&self) {
        self.timed_out.inc();
    }

    pub(crate) fn record_queue_depth(&self, depth: usize) {
        self.queue_high_water.record_max(depth as u64);
        self.queue_depth.set(depth as f64);
        obs::gauge_set("serve.queue_depth", depth as f64);
    }

    pub(crate) fn record_drained(&self) {
        self.drained.inc();
    }

    pub(crate) fn record_batch(&self, samples: usize, wall: Duration) {
        self.batch_sizes.observe(samples as u64);
        let us = u64::try_from(wall.as_micros()).unwrap_or(u64::MAX);
        let old = self.batch_ewma_us.load(Ordering::Relaxed);
        let new = if old == 0 { us } else { (old * 4 + us) / 5 };
        self.batch_ewma_us.store(new, Ordering::Relaxed);
    }

    pub(crate) fn record_completed(&self, latency: Duration) {
        let us = u64::try_from(latency.as_micros()).unwrap_or(u64::MAX);
        self.latency.observe(us);
    }

    /// Requests accepted so far.
    pub fn submitted(&self) -> u64 {
        self.submitted.get()
    }

    /// Requests rejected with queue-full backpressure.
    pub fn rejected(&self) -> u64 {
        self.rejected.get()
    }

    /// Requests completed successfully.
    pub fn completed(&self) -> u64 {
        self.latency.count()
    }

    /// Requests that ended with a terminal error.
    pub fn failed(&self) -> u64 {
        self.failed.get()
    }

    /// Requests that sat past their deadline.
    pub fn timed_out(&self) -> u64 {
        self.timed_out.get()
    }

    /// Most recently observed queue depth.
    pub fn queue_depth(&self) -> f64 {
        self.queue_depth.get()
    }

    /// Requests drained with a terminal [`crate::ServeError::ShuttingDown`].
    pub fn drained(&self) -> u64 {
        self.drained.get()
    }

    /// Requests admitted but not yet terminally resolved. Derived from
    /// the counters, so it is exact once the shard quiesces (the drain
    /// step of a rolling swap polls it down to zero).
    pub fn in_flight(&self) -> u64 {
        let terminal = self.latency.count()
            + self.failed.get()
            + self.timed_out.get()
            + self.drained.get();
        self.submitted.get().saturating_sub(terminal)
    }

    /// EWMA of micro-batch wall time in µs (zero until the first batch).
    pub fn batch_ewma_us(&self) -> u64 {
        self.batch_ewma_us.load(Ordering::Relaxed)
    }

    /// Snapshot of the latency histogram (for cross-shard aggregation).
    pub fn latency_snapshot(&self) -> HistogramSnapshot {
        self.latency.snapshot()
    }

    /// Snapshots every counter into a serializable report.
    pub fn report(&self) -> MetricsReport {
        let completed = self.latency.count();
        let batch = self.batch_sizes.snapshot();
        MetricsReport {
            requests_submitted: self.submitted.get(),
            requests_rejected: self.rejected.get(),
            requests_completed: completed,
            requests_failed: self.failed.get(),
            requests_timed_out: self.timed_out.get(),
            requests_drained: self.drained.get(),
            batches: batch.count,
            mean_batch_size: if batch.count == 0 {
                0.0
            } else {
                batch.sum as f64 / batch.count as f64
            },
            queue_depth_high_water: self.queue_high_water.get(),
            latency_mean_us: if completed == 0 {
                0.0
            } else {
                self.latency.sum() as f64 / completed as f64
            },
            latency_p50_us: self.latency.quantile_upper(0.50),
            latency_p95_us: self.latency.quantile_upper(0.95),
            latency_p99_us: self.latency.quantile_upper(0.99),
            latency_max_us: self.latency.max(),
        }
    }
}

/// A point-in-time, serializable snapshot of [`ServeMetrics`].
///
/// Percentiles are conservative upper bounds from the log-linear bucket
/// histogram (a p95 of `1151` means "95% of requests finished within
/// 1151 µs"), accurate to 12.5%.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsReport {
    /// Requests accepted into the queue.
    pub requests_submitted: u64,
    /// Requests rejected with [`crate::SubmitError::QueueFull`].
    pub requests_rejected: u64,
    /// Requests completed successfully.
    pub requests_completed: u64,
    /// Requests completed with an error.
    pub requests_failed: u64,
    /// Requests that sat past their deadline before execution.
    pub requests_timed_out: u64,
    /// Requests drained at shutdown with a terminal `ShuttingDown`.
    pub requests_drained: u64,
    /// Micro-batches executed.
    pub batches: u64,
    /// Mean samples per executed batch.
    pub mean_batch_size: f64,
    /// Highest queue depth observed.
    pub queue_depth_high_water: u64,
    /// Mean submit-to-completion latency (µs).
    pub latency_mean_us: f64,
    /// Median latency upper bound (µs).
    pub latency_p50_us: u64,
    /// 95th-percentile latency upper bound (µs).
    pub latency_p95_us: u64,
    /// 99th-percentile latency upper bound (µs).
    pub latency_p99_us: u64,
    /// Worst observed latency (µs).
    pub latency_max_us: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_monotone_log_linear() {
        for v in 0..16u64 {
            assert_eq!(Histogram::bucket_index(v), v as usize, "value {v}");
        }
        assert_eq!(Histogram::bucket_index(1024), 64);
        assert_eq!(Histogram::bucket_index(u64::MAX), obs::BUCKETS - 1);
        for i in 0..obs::BUCKETS - 1 {
            assert!(Histogram::bucket_upper(i) < Histogram::bucket_upper(i + 1));
        }
    }

    #[test]
    fn log_linear_buckets_separate_nearby_tail_latencies() {
        // The old power-of-two buckets collapsed a smoke run's whole
        // latency spread (~130–260 ms) into one bucket, reporting
        // p50 == p95 == p99. Log-linear buckets must keep them apart.
        let m = ServeMetrics::new();
        for us in [130_000u64, 150_000, 170_000, 190_000, 210_000, 230_000, 250_000, 260_000] {
            m.record_completed(Duration::from_micros(us));
        }
        let report = m.report();
        assert!(
            report.latency_p50_us < report.latency_p99_us,
            "p50 {} must stay below p99 {}",
            report.latency_p50_us,
            report.latency_p99_us
        );
        // Conservative upper bounds stay within 12.5% of the true value.
        assert!(report.latency_p99_us >= 260_000);
        assert!(report.latency_p99_us <= 260_000 + 260_000 / 8 + 1);
    }

    #[test]
    fn report_orders_percentiles() {
        let m = ServeMetrics::new();
        for us in [10u64, 20, 50, 100, 400, 900, 2_000, 9_000, 40_000, 100_000] {
            m.record_completed(Duration::from_micros(us));
        }
        let report = m.report();
        assert_eq!(report.requests_completed, 10);
        assert!(report.latency_p50_us <= report.latency_p95_us);
        assert!(report.latency_p95_us <= report.latency_p99_us);
        assert!(report.latency_p99_us >= 100_000 >> 1, "{report:?}");
        assert_eq!(report.latency_max_us, 100_000);
        assert!(report.latency_mean_us > 0.0);
    }

    #[test]
    fn empty_report_is_all_zero() {
        let report = ServeMetrics::new().report();
        assert_eq!(report.requests_completed, 0);
        assert_eq!(report.latency_p50_us, 0);
        assert_eq!(report.mean_batch_size, 0.0);
    }

    #[test]
    fn counters_accumulate() {
        let m = ServeMetrics::new();
        m.record_submitted();
        m.record_submitted();
        m.record_rejected();
        m.record_failed();
        m.record_timed_out();
        m.record_drained();
        m.record_batch(4, Duration::from_micros(100));
        m.record_batch(2, Duration::from_micros(200));
        m.record_queue_depth(7);
        m.record_queue_depth(3);
        let report = m.report();
        assert_eq!(report.requests_submitted, 2);
        assert_eq!(report.requests_rejected, 1);
        assert_eq!(report.requests_failed, 1);
        assert_eq!(report.requests_timed_out, 1);
        assert_eq!(report.requests_drained, 1);
        assert_eq!(report.batches, 2);
        assert_eq!(report.mean_batch_size, 3.0);
        assert_eq!(report.queue_depth_high_water, 7);
        assert_eq!(m.queue_depth(), 3.0);
        // EWMA warms to the first batch, then blends 4:1.
        assert_eq!(m.batch_ewma_us(), (100 * 4 + 200) / 5);
        // submitted(2) minus terminal failed(1)+timed_out(1)+drained(1) — saturates at zero.
        assert_eq!(m.in_flight(), 0);
    }

    #[test]
    fn report_serializes() {
        let m = ServeMetrics::new();
        m.record_completed(Duration::from_micros(42));
        let json = serde_json::to_string(&m.report()).unwrap();
        assert!(json.contains("latency_p95_us"));
        let parsed: MetricsReport = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed, m.report());
    }
}
