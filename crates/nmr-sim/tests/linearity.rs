//! Property-based shift/broadening-bounds and linearity tests for the
//! NMR simulator — the nmr-sim analogue of the ms-sim superposition
//! properties.
//!
//! NMR's calibration-free linearity (peak area ∝ concentration) is what
//! the IHM hard models rely on; these properties pin it down for
//! `NmrComponent::render` and for the clean (effects-off) flow-reactor
//! synthesis, and bound the two perturbations IHM allows: chemical-shift
//! offsets move the peak by exactly the offset, and line broadening stays
//! inside the experiment's `[0.75, 1.35]` clamp.

use chem::nmr::lithiation_components;
use nmr_sim::experiment::{clean_config, ExperimentConfig, FlowReactorExperiment};
use nmr_sim::nmr_axis;
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Index of the single-peak Li-HMDS component (peak at 0.12 ppm).
const HMDS: usize = 2;
const HMDS_CENTER: f64 = 0.12;

fn argmax(values: &[f64]) -> usize {
    values
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map_or(0, |(i, _)| i)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn render_is_linear_in_concentration(
        conc in 0.05..2.0f64, scale in 0.1..8.0f64, which in 0usize..4
    ) {
        let axis = nmr_axis();
        let component = &lithiation_components()[which];
        let base = component.render(&axis, conc, 0.0, 1.0).expect("render");
        let scaled = component.render(&axis, conc * scale, 0.0, 1.0).expect("render scaled");
        for (a, b) in base.intensities().iter().zip(scaled.intensities()) {
            // Exactly linear up to floating-point rounding.
            prop_assert!(
                (b - scale * a).abs() <= 1e-9 * (1.0 + a.abs() * scale),
                "render not linear: {} vs {}", b, scale * a
            );
        }
    }

    #[test]
    fn shift_moves_the_peak_by_exactly_the_offset(shift in 0.5..10.0f64, conc in 0.1..1.0f64) {
        // Single-peak component: the rendered argmax must land on the
        // axis sample nearest to (center + shift).
        let axis = nmr_axis();
        let hmds = &lithiation_components()[HMDS];
        let rendered = hmds.render(&axis, conc, shift, 1.0).expect("render");
        let peak_idx = argmax(rendered.intensities());
        let peak_ppm = axis.value_at(peak_idx);
        prop_assert!(
            (peak_ppm - (HMDS_CENTER + shift)).abs() <= axis.step(),
            "peak at {} ppm, expected {} ppm", peak_ppm, HMDS_CENTER + shift
        );
    }

    #[test]
    fn broadening_lowers_the_peak_and_conserves_area(
        b1 in 0.75..1.34f64, delta in 0.01..0.6f64, conc in 0.2..1.0f64
    ) {
        // Across the experiment's clamp range [0.75, 1.35]: wider lines
        // are strictly lower at the peak while the integrated area stays
        // put (the broadening is a reshape, not a gain change). Rendered
        // mid-axis so support truncation at the axis edge plays no role.
        let b2 = (b1 + delta).min(1.35);
        prop_assume!(b2 > b1);
        let axis = nmr_axis();
        let hmds = &lithiation_components()[HMDS];
        let shift = 6.0 - HMDS_CENTER;
        let narrow = hmds.render(&axis, conc, shift, b1).expect("narrow");
        let wide = hmds.render(&axis, conc, shift, b2).expect("wide");
        prop_assert!(
            wide.max_intensity() < narrow.max_intensity(),
            "broadening must lower the maximum ({} vs {})",
            wide.max_intensity(), narrow.max_intensity()
        );
        let ratio = wide.area() / narrow.area();
        prop_assert!(
            (ratio - 1.0).abs() < 0.02,
            "broadening changed the area by more than 2% (ratio {})", ratio
        );
    }

    #[test]
    fn clean_synthesis_scales_linearly_with_all_concentrations(
        c0 in 0.05..0.5f64, c1 in 0.05..0.5f64, c2 in 0.05..0.5f64, c3 in 0.05..0.5f64,
        scale in 0.5..4.0f64, seed in 0u64..100
    ) {
        // With every hidden effect off, synthesis is pure superposition:
        // scaling the concentration vector scales the spectrum.
        let experiment = FlowReactorExperiment::new(seed, clean_config());
        let conc = [c0, c1, c2, c3];
        let scaled: Vec<f64> = conc.iter().map(|&c| c * scale).collect();
        let mut rng_a = ChaCha8Rng::seed_from_u64(seed);
        let mut rng_b = ChaCha8Rng::seed_from_u64(seed);
        let base = experiment.synthesize(&conc, &mut rng_a).expect("synthesize");
        let double = experiment.synthesize(&scaled, &mut rng_b).expect("synthesize scaled");
        for (a, b) in base.intensities().iter().zip(double.intensities()) {
            prop_assert!(
                (b - scale * a).abs() <= 1e-9 * (1.0 + a.abs() * scale),
                "clean synthesis not linear: {} vs {}", b, scale * a
            );
        }
    }

    #[test]
    fn experiment_broadening_stays_inside_the_clamp(seed in 0u64..50, conc in 0.2..1.0f64) {
        // Even with absurd broadening jitter, the synthesized Li-HMDS
        // peak height stays between the heights rendered at the clamp
        // bounds 0.75 and 1.35 — the jitter is clamped, not open-ended.
        let config = ExperimentConfig {
            broadening_jitter: 100.0,
            shift_coupling: 0.0,
            shift_jitter: 0.0,
            baseline_amplitude: 0.0,
            noise_sigma: 0.0,
            ..ExperimentConfig::default()
        };
        let experiment = FlowReactorExperiment::new(seed, config);
        let axis = nmr_axis();
        let hmds = &lithiation_components()[HMDS];
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let spectrum = experiment
            .synthesize(&[0.0, 0.0, conc, 0.0], &mut rng)
            .expect("synthesize");
        let narrowest = hmds.render(&axis, conc, 0.0, 0.75).expect("render 0.75");
        let widest = hmds.render(&axis, conc, 0.0, 1.35).expect("render 1.35");
        let max = spectrum.max_intensity();
        prop_assert!(
            max <= narrowest.max_intensity() * (1.0 + 1e-9),
            "peak taller than the 0.75-clamp bound"
        );
        prop_assert!(
            max >= widest.max_intensity() * (1.0 - 1e-9),
            "peak shorter than the 1.35-clamp bound"
        );
    }
}
