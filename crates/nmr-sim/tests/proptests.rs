//! Property-based tests for the NMR simulation crate.

use nmr_sim::augment::{AugmentationConfig, SpectraAugmenter};
use nmr_sim::sequence::sliding_windows;
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn generated_datasets_respect_bounds(count in 1usize..8, seed in 0u64..500) {
        let config = AugmentationConfig::default();
        let bounds = config.concentration_max.clone();
        let augmenter = SpectraAugmenter::new(config).expect("augmenter");
        let data = augmenter.generate(count, seed).expect("generate");
        prop_assert_eq!(data.len(), count);
        for conc in &data.concentrations {
            for (c, max) in conc.iter().zip(&bounds) {
                prop_assert!(*c >= 0.0 && c <= max);
            }
        }
        for input in &data.inputs {
            prop_assert_eq!(input.len(), 1700);
            prop_assert!(input.iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn synthesis_is_monotone_in_concentration(c1 in 0.05..0.4f64, scale in 1.5..3.0f64) {
        let config = AugmentationConfig {
            shift_sigma: 0.0,
            broaden_range: (1.0, 1.0),
            noise_sigma: 0.0,
            baseline_amplitude: 0.0,
            ..AugmentationConfig::default()
        };
        let augmenter = SpectraAugmenter::new(config).expect("augmenter");
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let low = augmenter.synthesize(&[c1, 0.1, 0.1, 0.1], &mut rng).expect("low");
        let high = augmenter.synthesize(&[c1 * scale, 0.1, 0.1, 0.1], &mut rng).expect("high");
        prop_assert!(high.area() > low.area());
    }

    #[test]
    fn sliding_window_counts_and_targets(n in 2usize..40, window in 1usize..6) {
        prop_assume!(window <= n);
        let spectra: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64, -(i as f64)]).collect();
        let targets: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64 * 2.0]).collect();
        let set = sliding_windows(&spectra, &targets, window).expect("windows");
        prop_assert_eq!(set.len(), n - window + 1);
        // Target of window k is the target of its last spectrum.
        for (k, t) in set.targets.iter().enumerate() {
            prop_assert_eq!(t[0], (k + window - 1) as f64 * 2.0);
        }
        // Inputs are the concatenation of `window` spectra.
        prop_assert!(set.inputs.iter().all(|row| row.len() == window * 2));
    }
}
