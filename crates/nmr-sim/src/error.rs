use std::fmt;

use chem::ChemError;
use spectrum::SpectrumError;

/// Error type for the NMR simulation crate.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum NmrSimError {
    /// A chemical-domain error (reaction conditions, components).
    Chem(ChemError),
    /// A spectral-processing error.
    Spectrum(SpectrumError),
    /// An augmentation or sequencing parameter was invalid.
    InvalidConfig(String),
}

impl fmt::Display for NmrSimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NmrSimError::Chem(err) => write!(f, "chemistry error: {err}"),
            NmrSimError::Spectrum(err) => write!(f, "spectrum error: {err}"),
            NmrSimError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl std::error::Error for NmrSimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NmrSimError::Chem(err) => Some(err),
            NmrSimError::Spectrum(err) => Some(err),
            _ => None,
        }
    }
}

impl From<ChemError> for NmrSimError {
    fn from(err: ChemError) -> Self {
        NmrSimError::Chem(err)
    }
}

impl From<SpectrumError> for NmrSimError {
    fn from(err: SpectrumError) -> Self {
        NmrSimError::Spectrum(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_sources() {
        let err = NmrSimError::from(SpectrumError::Empty);
        assert!(std::error::Error::source(&err).is_some());
        assert!(NmrSimError::InvalidConfig("x".into())
            .to_string()
            .contains("x"));
    }
}
