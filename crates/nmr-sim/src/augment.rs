//! The paper's novel data-augmentation method for NMR.
//!
//! "We again used an NMR line spectra simulator to generate a large
//! number of synthetic training data covering the full concentration
//! range of interest. ... Linear combinations of the parametric models of
//! pure component spectra can then be calculated to generate NMR spectra
//! for arbitrary values of the four compound concentrations. ... it is
//! included in our spectra simulator through shifting and broadening of
//! peaks in our parametric model. Overall, the approach allows the
//! initial training dataset to be arbitrarily sized and distributed along
//! different prediction variables" (paper §III.B.1).
//!
//! The default configuration augments the 300 experimental spectra to an
//! arbitrarily sized synthetic set (the paper used 300 000; the harnesses
//! default to a CI-friendly size and scale up under `SPECTROAI_FULL=1`).

use chem::nmr::{lithiation_components, NmrComponent, LITHIATION_NAMES};
use rand::Rng;
use rand_chacha::ChaCha8Rng;
use spectrum::noise::standard_normal;
use spectrum::{ContinuousSpectrum, UniformAxis};

use crate::{nmr_axis, NmrSimError};

/// A labelled synthetic NMR spectra set.
#[derive(Debug, Clone, PartialEq)]
pub struct NmrDataset {
    /// Spectral samples.
    pub inputs: Vec<Vec<f64>>,
    /// Concentration labels in canonical component order.
    pub concentrations: Vec<Vec<f64>>,
    /// Component names (label order).
    pub names: Vec<String>,
    /// The spectral axis.
    pub axis: UniformAxis,
}

impl NmrDataset {
    /// Number of samples.
    pub fn len(&self) -> usize {
        self.inputs.len()
    }

    /// Returns `true` if there are no samples.
    pub fn is_empty(&self) -> bool {
        self.inputs.is_empty()
    }

    /// Inputs as `f32` rows.
    pub fn inputs_f32(&self) -> Vec<Vec<f32>> {
        self.inputs
            .iter()
            .map(|r| r.iter().map(|&v| v as f32).collect())
            .collect()
    }

    /// Labels as `f32` rows.
    pub fn labels_f32(&self) -> Vec<Vec<f32>> {
        self.concentrations
            .iter()
            .map(|r| r.iter().map(|&v| v as f32).collect())
            .collect()
    }
}

/// Configuration of the augmentation simulator.
#[derive(Debug, Clone, PartialEq)]
pub struct AugmentationConfig {
    /// Upper concentration bound per component (mol/L); samples are drawn
    /// uniformly in `[0, max]` — "distributed along different prediction
    /// variables".
    pub concentration_max: Vec<f64>,
    /// Per-component random shift (ppm, 1σ) applied to the hard models.
    pub shift_sigma: f64,
    /// Line-broadening factor range (uniform).
    pub broaden_range: (f64, f64),
    /// Additive white noise (1σ).
    pub noise_sigma: f64,
    /// Amplitude of the random smooth baseline added to synthetic spectra
    /// (teaches the networks baseline robustness IHM lacks).
    pub baseline_amplitude: f64,
}

impl Default for AugmentationConfig {
    fn default() -> Self {
        Self {
            // DoE ranges with headroom: feed 0.5 mol/L, ratios up to 1.6.
            concentration_max: vec![0.55, 0.85, 0.85, 0.55],
            shift_sigma: 0.015,
            broaden_range: (0.85, 1.25),
            noise_sigma: 0.03,
            baseline_amplitude: 1.6,
        }
    }
}

/// The augmentation simulator: parametric pure-component models in,
/// arbitrarily many labelled synthetic spectra out.
#[derive(Debug, Clone)]
pub struct SpectraAugmenter {
    components: Vec<NmrComponent>,
    config: AugmentationConfig,
    axis: UniformAxis,
}

impl SpectraAugmenter {
    /// Creates an augmenter over the lithiation components with the given
    /// configuration.
    ///
    /// # Errors
    ///
    /// Returns [`NmrSimError::InvalidConfig`] if the configuration is
    /// inconsistent with the component count or contains invalid ranges.
    pub fn new(config: AugmentationConfig) -> Result<Self, NmrSimError> {
        Self::with_components(lithiation_components(), config)
    }

    /// Creates an augmenter over custom component models.
    ///
    /// # Errors
    ///
    /// Returns [`NmrSimError::InvalidConfig`] on inconsistent
    /// configuration.
    pub fn with_components(
        components: Vec<NmrComponent>,
        config: AugmentationConfig,
    ) -> Result<Self, NmrSimError> {
        if components.is_empty() {
            return Err(NmrSimError::InvalidConfig("no components".into()));
        }
        if config.concentration_max.len() != components.len() {
            return Err(NmrSimError::InvalidConfig(format!(
                "{} concentration bounds for {} components",
                config.concentration_max.len(),
                components.len()
            )));
        }
        // `m <= 0.0` alone would let NaN bounds through.
        if config
            .concentration_max
            .iter()
            .any(|&m| m.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater))
        {
            return Err(NmrSimError::InvalidConfig(
                "concentration bounds must be positive".into(),
            ));
        }
        if !(config.broaden_range.0 > 0.0 && config.broaden_range.0 <= config.broaden_range.1) {
            return Err(NmrSimError::InvalidConfig(
                "invalid broadening range".into(),
            ));
        }
        Ok(Self {
            components,
            config,
            axis: nmr_axis(),
        })
    }

    /// The component models.
    pub fn components(&self) -> &[NmrComponent] {
        &self.components
    }

    /// Synthesizes one spectrum at explicit concentrations, with random
    /// shift/broadening/noise/baseline perturbations.
    ///
    /// # Errors
    ///
    /// Returns [`NmrSimError::InvalidConfig`] on a concentration-count
    /// mismatch.
    pub fn synthesize(
        &self,
        concentrations: &[f64],
        rng: &mut ChaCha8Rng,
    ) -> Result<ContinuousSpectrum, NmrSimError> {
        if concentrations.len() != self.components.len() {
            return Err(NmrSimError::InvalidConfig(format!(
                "expected {} concentrations, got {}",
                self.components.len(),
                concentrations.len()
            )));
        }
        let mut out = ContinuousSpectrum::zeros(self.axis);
        for (component, &c) in self.components.iter().zip(concentrations) {
            if c <= 0.0 {
                continue;
            }
            let shift = self.config.shift_sigma * standard_normal(rng);
            let broaden = rng.gen_range(self.config.broaden_range.0..=self.config.broaden_range.1);
            out.add_assign(&component.render(&self.axis, c, shift, broaden)?)?;
        }
        if self.config.baseline_amplitude > 0.0 {
            let phase: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
            let cycles: f64 = rng.gen_range(0.5..2.5);
            let amp = self.config.baseline_amplitude * rng.gen::<f64>();
            let slope = 0.3 * amp * (rng.gen::<f64>() - 0.5);
            let n = out.len();
            for (k, v) in out.intensities_mut().iter_mut().enumerate() {
                let t = k as f64 / n as f64;
                *v += amp * (std::f64::consts::TAU * cycles * t + phase).sin() + slope * t;
            }
        }
        if self.config.noise_sigma > 0.0 {
            for v in out.intensities_mut() {
                *v += self.config.noise_sigma * standard_normal(rng);
            }
        }
        Ok(out)
    }

    /// Generates `count` labelled synthetic spectra at concentrations
    /// uniform in the configured ranges — the paper's "enhanced to
    /// 300.000 spectra" step (size is the caller's choice).
    ///
    /// # Errors
    ///
    /// Propagates synthesis errors.
    pub fn generate(&self, count: usize, seed: u64) -> Result<NmrDataset, NmrSimError> {
        use rand::SeedableRng;
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut inputs = Vec::with_capacity(count);
        let mut concentrations = Vec::with_capacity(count);
        for _ in 0..count {
            let conc: Vec<f64> = self
                .config
                .concentration_max
                .iter()
                .map(|&max| rng.gen_range(0.0..=max))
                .collect();
            let spectrum = self.synthesize(&conc, &mut rng)?;
            inputs.push(spectrum.into_intensities());
            concentrations.push(conc);
        }
        Ok(NmrDataset {
            inputs,
            concentrations,
            names: LITHIATION_NAMES.iter().map(|&s| s.to_string()).collect(),
            axis: self.axis,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn generates_requested_count_with_valid_labels() {
        let augmenter = SpectraAugmenter::new(AugmentationConfig::default()).unwrap();
        let data = augmenter.generate(25, 1).unwrap();
        assert_eq!(data.len(), 25);
        for (input, conc) in data.inputs.iter().zip(&data.concentrations) {
            assert_eq!(input.len(), 1700);
            assert_eq!(conc.len(), 4);
            for (c, max) in conc.iter().zip(&AugmentationConfig::default().concentration_max) {
                assert!(*c >= 0.0 && c <= max);
            }
        }
    }

    #[test]
    fn generation_is_reproducible() {
        let augmenter = SpectraAugmenter::new(AugmentationConfig::default()).unwrap();
        let a = augmenter.generate(5, 42).unwrap();
        let b = augmenter.generate(5, 42).unwrap();
        assert_eq!(a, b);
        let c = augmenter.generate(5, 43).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn spectrum_scales_with_concentration() {
        let config = AugmentationConfig {
            shift_sigma: 0.0,
            broaden_range: (1.0, 1.0),
            noise_sigma: 0.0,
            baseline_amplitude: 0.0,
            ..AugmentationConfig::default()
        };
        let augmenter = SpectraAugmenter::new(config).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let low = augmenter.synthesize(&[0.1, 0.0, 0.0, 0.0], &mut rng).unwrap();
        let high = augmenter.synthesize(&[0.3, 0.0, 0.0, 0.0], &mut rng).unwrap();
        assert!((high.area() / low.area() - 3.0).abs() < 0.01);
    }

    #[test]
    fn config_validation() {
        let bad_counts = AugmentationConfig {
            concentration_max: vec![1.0],
            ..AugmentationConfig::default()
        };
        assert!(SpectraAugmenter::new(bad_counts).is_err());
        let bad_range = AugmentationConfig {
            broaden_range: (1.5, 1.0),
            ..AugmentationConfig::default()
        };
        assert!(SpectraAugmenter::new(bad_range).is_err());
        let bad_conc = AugmentationConfig {
            concentration_max: vec![1.0, -1.0, 1.0, 1.0],
            ..AugmentationConfig::default()
        };
        assert!(SpectraAugmenter::new(bad_conc).is_err());
    }

    #[test]
    fn wrong_concentration_count_rejected() {
        let augmenter = SpectraAugmenter::new(AugmentationConfig::default()).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        assert!(augmenter.synthesize(&[0.1], &mut rng).is_err());
    }

    #[test]
    fn names_follow_canonical_order() {
        let augmenter = SpectraAugmenter::new(AugmentationConfig::default()).unwrap();
        let data = augmenter.generate(1, 1).unwrap();
        assert_eq!(
            data.names,
            vec!["p-toluidine", "o-FNB", "Li-HMDS", "MNDPA"]
        );
    }
}
