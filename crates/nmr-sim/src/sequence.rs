//! Time-series datasets for the LSTM model.
//!
//! "As our time dependent experimental data consists of a time series of
//! several steady state plateaus with different concentrations, we
//! repeated random training spectra one to twenty times to emulate
//! plateaus with jumps between them. The LSTM model was then trained with
//! this augmented training dataset" (paper §III.B.2). At prediction time
//! the LSTM sees sliding windows of five consecutive spectra.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::augment::NmrDataset;
use crate::NmrSimError;

/// A sequence dataset: each input is `window` consecutive spectra
/// flattened time-major; the target is the concentration at the *last*
/// timestep.
#[derive(Debug, Clone, PartialEq)]
pub struct SequenceDataset {
    /// Flattened `window × spectrum_len` inputs.
    pub inputs: Vec<Vec<f64>>,
    /// Concentration targets (last timestep of each window).
    pub targets: Vec<Vec<f64>>,
    /// Window length in timesteps.
    pub window: usize,
    /// Length of one spectrum.
    pub spectrum_len: usize,
}

impl SequenceDataset {
    /// Number of windows.
    pub fn len(&self) -> usize {
        self.inputs.len()
    }

    /// Returns `true` if there are no windows.
    pub fn is_empty(&self) -> bool {
        self.inputs.is_empty()
    }

    /// Inputs as `f32` rows.
    pub fn inputs_f32(&self) -> Vec<Vec<f32>> {
        self.inputs
            .iter()
            .map(|r| r.iter().map(|&v| v as f32).collect())
            .collect()
    }

    /// Targets as `f32` rows.
    pub fn targets_f32(&self) -> Vec<Vec<f32>> {
        self.targets
            .iter()
            .map(|r| r.iter().map(|&v| v as f32).collect())
            .collect()
    }
}

/// Builds sliding windows over a time-ordered spectra sequence.
///
/// `spectra[i]` must correspond to `targets[i]`; windows are
/// `[i - window + 1 ..= i]` for every `i >= window - 1`.
///
/// # Errors
///
/// Returns [`NmrSimError::InvalidConfig`] if `window` is zero, the inputs
/// are shorter than `window`, or lengths mismatch.
pub fn sliding_windows(
    spectra: &[Vec<f64>],
    targets: &[Vec<f64>],
    window: usize,
) -> Result<SequenceDataset, NmrSimError> {
    if window == 0 {
        return Err(NmrSimError::InvalidConfig("window must be non-zero".into()));
    }
    if spectra.len() != targets.len() {
        return Err(NmrSimError::InvalidConfig(format!(
            "{} spectra vs {} targets",
            spectra.len(),
            targets.len()
        )));
    }
    if spectra.len() < window {
        return Err(NmrSimError::InvalidConfig(format!(
            "{} spectra cannot form windows of {window}",
            spectra.len()
        )));
    }
    let spectrum_len = spectra[0].len();
    let mut inputs = Vec::with_capacity(spectra.len() - window + 1);
    let mut out_targets = Vec::with_capacity(inputs.capacity());
    for end in (window - 1)..spectra.len() {
        let mut row = Vec::with_capacity(window * spectrum_len);
        for t in 0..window {
            let spec = &spectra[end + 1 - window + t];
            if spec.len() != spectrum_len {
                return Err(NmrSimError::InvalidConfig(
                    "inconsistent spectrum lengths".into(),
                ));
            }
            row.extend_from_slice(spec);
        }
        inputs.push(row);
        out_targets.push(targets[end].clone());
    }
    Ok(SequenceDataset {
        inputs,
        targets: out_targets,
        window,
        spectrum_len,
    })
}

/// The paper's plateau-repeat training augmentation: random spectra from
/// `dataset` are repeated 1–20 times to emulate steady-state plateaus
/// with jumps between them, then cut into sliding windows. Produces about
/// `target_windows` windows.
///
/// # Errors
///
/// Returns [`NmrSimError::InvalidConfig`] on an empty dataset or zero
/// window/target.
pub fn plateau_training_sequences(
    dataset: &NmrDataset,
    window: usize,
    target_windows: usize,
    seed: u64,
) -> Result<SequenceDataset, NmrSimError> {
    if dataset.is_empty() {
        return Err(NmrSimError::InvalidConfig("empty dataset".into()));
    }
    if window == 0 || target_windows == 0 {
        return Err(NmrSimError::InvalidConfig(
            "window and target count must be non-zero".into(),
        ));
    }
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let needed = target_windows + window - 1;
    let mut sequence_inputs: Vec<Vec<f64>> = Vec::with_capacity(needed);
    let mut sequence_targets: Vec<Vec<f64>> = Vec::with_capacity(needed);
    while sequence_inputs.len() < needed {
        let idx = rng.gen_range(0..dataset.len());
        let repeats = rng.gen_range(1..=20usize);
        for _ in 0..repeats {
            if sequence_inputs.len() >= needed {
                break;
            }
            sequence_inputs.push(dataset.inputs[idx].clone());
            sequence_targets.push(dataset.concentrations[idx].clone());
        }
    }
    sliding_windows(&sequence_inputs, &sequence_targets, window)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spectrum::UniformAxis;

    fn toy_dataset(n: usize, dim: usize) -> NmrDataset {
        NmrDataset {
            inputs: (0..n).map(|i| vec![i as f64; dim]).collect(),
            concentrations: (0..n).map(|i| vec![i as f64]).collect(),
            names: vec!["a".into()],
            axis: UniformAxis::new(0.0, 1.0, dim).unwrap(),
        }
    }

    #[test]
    fn windows_have_correct_shape_and_targets() {
        let spectra: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64, 0.0]).collect();
        let targets: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64 * 10.0]).collect();
        let set = sliding_windows(&spectra, &targets, 3).unwrap();
        assert_eq!(set.len(), 8);
        assert_eq!(set.inputs[0], vec![0.0, 0.0, 1.0, 0.0, 2.0, 0.0]);
        assert_eq!(set.targets[0], vec![20.0]); // last step of window
        assert_eq!(set.targets[7], vec![90.0]);
    }

    #[test]
    fn window_validation() {
        let spectra = vec![vec![1.0]; 3];
        let targets = vec![vec![1.0]; 3];
        assert!(sliding_windows(&spectra, &targets, 0).is_err());
        assert!(sliding_windows(&spectra, &targets, 4).is_err());
        assert!(sliding_windows(&spectra, &targets[..2], 2).is_err());
    }

    #[test]
    fn inconsistent_spectrum_lengths_rejected() {
        let spectra = vec![vec![1.0, 2.0], vec![1.0]];
        let targets = vec![vec![0.0]; 2];
        assert!(sliding_windows(&spectra, &targets, 2).is_err());
    }

    #[test]
    fn plateau_sequences_hit_target_count() {
        let data = toy_dataset(30, 4);
        let set = plateau_training_sequences(&data, 5, 100, 1).unwrap();
        assert_eq!(set.len(), 100);
        assert_eq!(set.window, 5);
        assert_eq!(set.inputs[0].len(), 20);
    }

    #[test]
    fn plateau_sequences_contain_repeats() {
        let data = toy_dataset(50, 2);
        let set = plateau_training_sequences(&data, 5, 200, 2).unwrap();
        // Within many windows, at least one window should span a constant
        // plateau (all 5 timesteps identical).
        let spectrum_len = set.spectrum_len;
        let constant = set.inputs.iter().any(|row| {
            let first = &row[..spectrum_len];
            (1..5).all(|t| &row[t * spectrum_len..(t + 1) * spectrum_len] == first)
        });
        assert!(constant, "no plateau windows found");
    }

    #[test]
    fn plateau_sequences_validate() {
        let data = toy_dataset(5, 2);
        assert!(plateau_training_sequences(&data, 0, 10, 1).is_err());
        assert!(plateau_training_sequences(&data, 3, 0, 1).is_err());
        let empty = NmrDataset {
            inputs: vec![],
            concentrations: vec![],
            names: vec![],
            axis: UniformAxis::new(0.0, 1.0, 2).unwrap(),
        };
        assert!(plateau_training_sequences(&empty, 3, 10, 1).is_err());
    }

    #[test]
    fn f32_conversions_preserve_shapes() {
        let data = toy_dataset(12, 3);
        let set = plateau_training_sequences(&data, 2, 8, 3).unwrap();
        assert_eq!(set.inputs_f32().len(), set.len());
        assert_eq!(set.targets_f32()[0].len(), 1);
    }
}
