//! The flow-reactor experiment: 300 online medium-resolution spectra with
//! a high-field reference channel.
//!
//! "Different reaction conditions for an organic lithiation reaction were
//! generated with the help of laboratory equipment and measured
//! simultaneously online using two methods: medium-resolution and
//! high-resolution NMR spectroscopy resulting in a set of 300 spectra as
//! raw data basis with four compound concentrations as the four labels of
//! interest" (paper §III.B).
//!
//! The generator is the *hidden ground truth* of the NMR study (hardware
//! substitute, DESIGN.md §2). Its spectra carry effects beyond the plain
//! pure-component superposition: composition-correlated peak shifts
//! ("the mixing of compounds in solution may shift single NMR peaks"),
//! per-spectrum line broadening, a smooth baseline distortion that the
//! IHM model does not include, and detector noise.

use chem::nmr::{lithiation_components, NmrComponent};
use chem::reaction::{default_doe, LithiationReaction, ReactionConditions};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use spectrum::noise::standard_normal;
use spectrum::{ContinuousSpectrum, UniformAxis};

use crate::{nmr_axis, NmrSimError};

/// Configuration of the hidden experimental effects.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExperimentConfig {
    /// Spectra acquired per steady-state plateau (paper: 20 × 15 = 300).
    pub spectra_per_plateau: usize,
    /// Coupling between Li-HMDS concentration and peak shift (ppm per
    /// mol/L) — the composition-correlated shift effect.
    pub shift_coupling: f64,
    /// Random per-spectrum shift jitter (ppm, 1σ).
    pub shift_jitter: f64,
    /// Per-spectrum line-broadening variation (1σ around 1.0).
    pub broadening_jitter: f64,
    /// Amplitude of the smooth baseline distortion.
    pub baseline_amplitude: f64,
    /// White detector noise (1σ).
    pub noise_sigma: f64,
    /// Relative error of the high-field reference channel (1σ).
    pub reference_error: f64,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        Self {
            spectra_per_plateau: 20,
            shift_coupling: 0.03,
            shift_jitter: 0.008,
            broadening_jitter: 0.05,
            baseline_amplitude: 0.8,
            noise_sigma: 0.03,
            reference_error: 0.004,
        }
    }
}

/// An experimental effects configuration with everything hidden disabled
/// (pure superposition plus nothing) — for ablations.
pub fn clean_config() -> ExperimentConfig {
    ExperimentConfig {
        shift_coupling: 0.0,
        shift_jitter: 0.0,
        broadening_jitter: 0.0,
        baseline_amplitude: 0.0,
        noise_sigma: 0.0,
        reference_error: 0.0,
        ..ExperimentConfig::default()
    }
}

/// One acquired experimental run.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentRun {
    /// The medium-resolution online spectra, in acquisition (time) order.
    pub spectra: Vec<ContinuousSpectrum>,
    /// High-field reference concentrations per spectrum, in canonical
    /// component order `[p-toluidine, o-FNB, Li-HMDS, MNDPA]`.
    pub reference: Vec<Vec<f64>>,
    /// The *true* concentrations per spectrum (hidden; for scoring only).
    pub truth: Vec<Vec<f64>>,
    /// Plateau index of every spectrum (0-based).
    pub plateau: Vec<usize>,
    /// The spectral axis.
    pub axis: UniformAxis,
}

impl ExperimentRun {
    /// Number of acquired spectra.
    pub fn len(&self) -> usize {
        self.spectra.len()
    }

    /// Returns `true` if no spectra were acquired.
    pub fn is_empty(&self) -> bool {
        self.spectra.is_empty()
    }

    /// Splits the run into plateau-wise slices of spectrum indices.
    pub fn plateau_indices(&self) -> Vec<Vec<usize>> {
        let n_plateaus = self.plateau.iter().copied().max().map_or(0, |m| m + 1);
        let mut out = vec![Vec::new(); n_plateaus];
        for (i, &p) in self.plateau.iter().enumerate() {
            out[p].push(i);
        }
        out
    }
}

/// The flow-reactor + medium-resolution NMR experiment generator.
#[derive(Debug, Clone)]
pub struct FlowReactorExperiment {
    components: Vec<NmrComponent>,
    reaction: LithiationReaction,
    doe: Vec<ReactionConditions>,
    config: ExperimentConfig,
    axis: UniformAxis,
    seed: u64,
}

impl FlowReactorExperiment {
    /// Creates an experiment over the default DoE (15 plateaus) and the
    /// four lithiation components.
    pub fn new(seed: u64, config: ExperimentConfig) -> Self {
        Self {
            components: lithiation_components(),
            reaction: LithiationReaction::new(),
            doe: default_doe(),
            config,
            axis: nmr_axis(),
            seed,
        }
    }

    /// The component models (canonical order).
    pub fn components(&self) -> &[NmrComponent] {
        &self.components
    }

    /// The spectral axis.
    pub fn axis(&self) -> &UniformAxis {
        &self.axis
    }

    /// The experiment configuration.
    pub fn config(&self) -> &ExperimentConfig {
        &self.config
    }

    /// Acquires the full run: every DoE plateau in sequence, with
    /// `spectra_per_plateau` spectra each (default: 15 × 20 = 300).
    ///
    /// # Errors
    ///
    /// Propagates reaction and rendering errors.
    pub fn acquire(&self) -> Result<ExperimentRun, NmrSimError> {
        let _span = obs::span!("nmr.acquire");
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let mut spectra = Vec::new();
        let mut reference = Vec::new();
        let mut truth = Vec::new();
        let mut plateau = Vec::new();
        for (p, conditions) in self.doe.iter().enumerate() {
            let concentrations = self.reaction.steady_state(conditions)?;
            let conc = concentrations.to_vec();
            for _ in 0..self.config.spectra_per_plateau {
                let spectrum = self.synthesize(&conc, &mut rng)?;
                let reference_row: Vec<f64> = conc
                    .iter()
                    .map(|&c| {
                        (c * (1.0 + self.config.reference_error * standard_normal(&mut rng)))
                            .max(0.0)
                    })
                    .collect();
                spectra.push(spectrum);
                reference.push(reference_row);
                truth.push(conc.clone());
                plateau.push(p);
                obs::counter_add("nmr.spectra_generated", 1);
            }
        }
        Ok(ExperimentRun {
            spectra,
            reference,
            truth,
            plateau,
            axis: self.axis,
        })
    }

    /// Synthesizes one experimental spectrum for the given concentrations
    /// (canonical component order), applying every hidden effect.
    ///
    /// # Errors
    ///
    /// Propagates rendering errors.
    pub fn synthesize(
        &self,
        concentrations: &[f64],
        rng: &mut ChaCha8Rng,
    ) -> Result<ContinuousSpectrum, NmrSimError> {
        if concentrations.len() != self.components.len() {
            return Err(NmrSimError::InvalidConfig(format!(
                "expected {} concentrations, got {}",
                self.components.len(),
                concentrations.len()
            )));
        }
        let hmds = concentrations.get(2).copied().unwrap_or(0.0);
        let mut out = ContinuousSpectrum::zeros(self.axis);
        for (i, component) in self.components.iter().enumerate() {
            if concentrations[i] <= 0.0 {
                continue;
            }
            // Composition-correlated shift: electrolyte (Li-HMDS) content
            // moves everything slightly downfield, plus random jitter.
            let shift = self.config.shift_coupling * hmds * alternating_sign(i)
                + self.config.shift_jitter * standard_normal(rng);
            let broaden =
                (1.0 + self.config.broadening_jitter * standard_normal(rng)).clamp(0.75, 1.35);
            let rendered = component.render(&self.axis, concentrations[i], shift, broaden)?;
            out.add_assign(&rendered)?;
        }
        // Smooth baseline distortion the hard model does not know about.
        if self.config.baseline_amplitude > 0.0 {
            let phase: f64 = standard_normal(rng) * std::f64::consts::PI;
            let cycles = 1.0 + (standard_normal(rng).abs() % 1.5);
            let amp = self.config.baseline_amplitude * (0.5 + 0.5 * rand::Rng::gen::<f64>(rng));
            let n = out.len();
            for (k, v) in out.intensities_mut().iter_mut().enumerate() {
                let t = k as f64 / n as f64;
                *v += amp * (2.0 * std::f64::consts::PI * cycles * t + phase).sin()
                    + 0.3 * amp * t;
            }
        }
        // Detector noise.
        if self.config.noise_sigma > 0.0 {
            for v in out.intensities_mut() {
                *v += self.config.noise_sigma * standard_normal(rng);
            }
        }
        Ok(out)
    }
}

/// Deterministic per-component shift direction (mixing moves some signals
/// upfield and others downfield).
fn alternating_sign(index: usize) -> f64 {
    if index.is_multiple_of(2) {
        1.0
    } else {
        -0.7
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquires_300_spectra_over_15_plateaus() {
        let run = FlowReactorExperiment::new(1, ExperimentConfig::default())
            .acquire()
            .unwrap();
        assert_eq!(run.len(), 300);
        let plateaus = run.plateau_indices();
        assert_eq!(plateaus.len(), 15);
        assert!(plateaus.iter().all(|p| p.len() == 20));
    }

    #[test]
    fn acquisition_is_reproducible_per_seed() {
        let a = FlowReactorExperiment::new(5, ExperimentConfig::default())
            .acquire()
            .unwrap();
        let b = FlowReactorExperiment::new(5, ExperimentConfig::default())
            .acquire()
            .unwrap();
        assert_eq!(a.spectra[17], b.spectra[17]);
        assert_eq!(a.reference, b.reference);
    }

    #[test]
    fn different_seeds_differ() {
        let a = FlowReactorExperiment::new(1, ExperimentConfig::default())
            .acquire()
            .unwrap();
        let b = FlowReactorExperiment::new(2, ExperimentConfig::default())
            .acquire()
            .unwrap();
        assert_ne!(a.spectra[0], b.spectra[0]);
    }

    #[test]
    fn reference_tracks_truth_closely() {
        let run = FlowReactorExperiment::new(3, ExperimentConfig::default())
            .acquire()
            .unwrap();
        for (r, t) in run.reference.iter().zip(&run.truth) {
            for (a, b) in r.iter().zip(t) {
                assert!((a - b).abs() <= 0.05 * b.max(0.01), "{a} vs {b}");
            }
        }
    }

    #[test]
    fn clean_config_reproduces_pure_superposition() {
        let experiment = FlowReactorExperiment::new(4, clean_config());
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let conc = [0.3, 0.4, 0.2, 0.1];
        let spec = experiment.synthesize(&conc, &mut rng).unwrap();
        // Compare against manual superposition.
        let mut expect = ContinuousSpectrum::zeros(*experiment.axis());
        for (component, &c) in experiment.components().iter().zip(&conc) {
            expect
                .add_assign(&component.render(experiment.axis(), c, 0.0, 1.0).unwrap())
                .unwrap();
        }
        let diff: f64 = spec
            .intensities()
            .iter()
            .zip(expect.intensities())
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(diff < 1e-9, "diff {diff}");
    }

    #[test]
    fn hidden_effects_perturb_spectra() {
        let dirty = FlowReactorExperiment::new(4, ExperimentConfig::default());
        let clean = FlowReactorExperiment::new(4, clean_config());
        let mut rng1 = ChaCha8Rng::seed_from_u64(9);
        let mut rng2 = ChaCha8Rng::seed_from_u64(9);
        let conc = [0.3, 0.4, 0.2, 0.1];
        let a = dirty.synthesize(&conc, &mut rng1).unwrap();
        let b = clean.synthesize(&conc, &mut rng2).unwrap();
        let diff: f64 = a
            .intensities()
            .iter()
            .zip(b.intensities())
            .map(|(x, y)| (x - y).abs())
            .sum::<f64>()
            / a.len() as f64;
        assert!(diff > 1e-3, "hidden effects too weak: {diff}");
    }

    #[test]
    fn wrong_concentration_count_rejected() {
        let experiment = FlowReactorExperiment::new(1, ExperimentConfig::default());
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        assert!(experiment.synthesize(&[1.0, 2.0], &mut rng).is_err());
    }

    #[test]
    fn concentrations_vary_across_plateaus() {
        let run = FlowReactorExperiment::new(6, ExperimentConfig::default())
            .acquire()
            .unwrap();
        let plateaus = run.plateau_indices();
        let first = &run.truth[plateaus[0][0]];
        let last = &run.truth[plateaus[14][0]];
        assert_ne!(first, last);
    }
}
