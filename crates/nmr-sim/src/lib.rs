//! The NMR use case of the paper's second project: machine-assisted model
//! building for online low-field NMR of a lithiation reaction.
//!
//! The paper's workflow (§III.B, Figure 8) maps onto this crate:
//!
//! | Paper | Module |
//! |---|---|
//! | flow reactor + medium-resolution NMR producing 300 raw spectra | [`experiment`] |
//! | high-field NMR reference channel | [`experiment`] (reference concentrations) |
//! | "enhanced to 300.000 spectra on basis of a physically motivated simulation method" | [`augment`] |
//! | time-series windows + plateau-repeat augmentation for the LSTM | [`sequence`] |
//!
//! The experimental generator hides effects (composition-correlated peak
//! shifts, baseline distortion, per-spectrum broadening) that make the
//! IHM / CNN / LSTM comparison non-trivial, per DESIGN.md §2.
//!
//! # Example
//!
//! ```
//! use nmr_sim::experiment::{ExperimentConfig, FlowReactorExperiment};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let experiment = FlowReactorExperiment::new(7, ExperimentConfig::default());
//! let run = experiment.acquire()?;
//! assert_eq!(run.spectra.len(), 300);
//! assert_eq!(run.reference[0].len(), 4);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod augment;
pub mod experiment;
pub mod sequence;

mod error;

pub use error::NmrSimError;

use spectrum::UniformAxis;

/// The spectral axis of the medium-resolution instrument: 0–12 ppm over
/// **1700 points**. This length is load-bearing: it makes the paper's CNN
/// have exactly 10 532 and its LSTM exactly 221 956 parameters
/// (DESIGN.md §5).
pub fn nmr_axis() -> UniformAxis {
    UniformAxis::new(0.0, 12.0 / 1699.0, 1700).expect("static axis is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axis_has_1700_points_over_12_ppm() {
        let axis = nmr_axis();
        assert_eq!(axis.len(), 1700);
        assert_eq!(axis.start(), 0.0);
        assert!((axis.stop() - 12.0).abs() < 1e-9);
    }
}
