//! The supervised monitoring lifecycle: stream → serve → score →
//! detect → recharacterize → swap, as one tick-driven state machine.
//!
//! ```text
//!            ┌──────────────────────────────────────────────┐
//!            ▼                                              │ swap ok
//!   Stable ──suspected──▶ DriftSuspected ──confirmed──▶ Recharacterizing
//!     ▲ ▲                     │ cleared                  (→ Swapping)
//!     │ └────suppressed───────┘                              │ failed
//!     └───────── cooldown elapsed ◀──── CoolingDown ◀────────┘
//! ```
//!
//! Episode accounting is conservative by construction: an episode opens
//! at the first `Suspected` verdict and is closed exactly once, with
//! exactly one terminal — `Suppressed` (the suspicion cleared before
//! confirmation), `Swapped` (a new model is serving), or `RolledBack`
//! (recharacterization exhausted its retries; the previous model keeps
//! serving and the loop cools down before re-alarming).
//!
//! Every tick performs one window of *real* inference through the
//! sharded router. Requests are never dropped: transient rejections are
//! retried with backoff, and a request resolved by the crash-completion
//! path (`WorkerCrashed`) is resubmitted — the supervisor restarts the
//! shard underneath. The dropped-request count the report carries is
//! asserted to be zero by the chaos suite and the `monitor_loop` bench.

use std::time::{Duration, Instant};

use chem::fragmentation::GasLibrary;
use chem::Mixture;
use datastore::Store;
use faultsim::FaultPlan;
use ms_sim::instrument::InstrumentModel;
use ms_sim::simulate::TrainingSimulator;
use platform::overlay::spectral_fit;
use serve::{Request, RetryPolicy, Router, ServeError, SubmitError};
use spectrum::ContinuousSpectrum;

use crate::detector::{DriftDetector, Verdict};
use crate::recharacterize::{RecharacterizeConfig, Recharacterizer, StepOutcome};
use crate::stream::{MsStream, SpectraStream};
use crate::MonitorError;

/// Lifecycle state of the loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoopState {
    /// Serving and scoring; no open episode.
    Stable,
    /// An episode is open; waiting for the detector to confirm or
    /// clear.
    DriftSuspected,
    /// Confirmed drift; the recharacterizer is running (collect,
    /// characterize, train, publish).
    Recharacterizing,
    /// The recharacterizer is in its swap phase.
    Swapping,
    /// A rollback just happened; alarms are suppressed while the loop
    /// cools down.
    CoolingDown,
}

impl std::fmt::Display for LoopState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            LoopState::Stable => "stable",
            LoopState::DriftSuspected => "drift-suspected",
            LoopState::Recharacterizing => "recharacterizing",
            LoopState::Swapping => "swapping",
            LoopState::CoolingDown => "cooling-down",
        };
        write!(f, "{name}")
    }
}

/// How one episode ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EpisodeOutcome {
    /// A recharacterized model is serving.
    Swapped,
    /// Recharacterization failed; the previous model kept serving.
    RolledBack,
    /// The suspicion cleared before confirmation (false alarm).
    Suppressed,
}

/// One closed drift episode.
#[derive(Debug, Clone)]
pub struct EpisodeReport {
    /// 1-based episode number.
    pub episode: usize,
    /// Tick at which the episode opened (first `Suspected`).
    pub opened_at_tick: u64,
    /// Tick at which drift was confirmed, if it was.
    pub confirmed_at_tick: Option<u64>,
    /// Tick at which the terminal was reached.
    pub closed_at_tick: u64,
    /// The terminal.
    pub outcome: EpisodeOutcome,
    /// Wall-clock time from episode open to terminal.
    pub open_to_terminal: Duration,
    /// Mean fit distance of the window that opened the episode.
    pub fit_at_open: f64,
    /// Mean fit distance of the last scored window before close.
    pub fit_at_close: f64,
    /// The version now serving, for `Swapped` terminals.
    pub new_version: Option<u32>,
    /// Characterization attempts consumed (injected failures included).
    pub characterize_attempts: u32,
    /// Rolling-swap attempts consumed (failed canaries included).
    pub swap_attempts: u32,
    /// Calibration measurements lost to sensor dropout.
    pub calibration_dropouts: u64,
    /// Why the episode rolled back, when it did.
    pub failure: Option<String>,
}

/// An episode that is still open.
struct OpenEpisode {
    episode: usize,
    opened_at_tick: u64,
    confirmed_at_tick: Option<u64>,
    opened_at: Instant,
    fit_at_open: f64,
}

/// Tuning for [`MonitorLoop`].
#[derive(Debug, Clone)]
pub struct MonitorConfig {
    /// Ticks the loop stays in `CoolingDown` after a rollback.
    pub cooldown_ticks: u64,
    /// Resubmissions allowed per request after `WorkerCrashed`.
    pub resubmit_attempts: u32,
    /// Deadline attached to every inference request.
    pub request_deadline: Duration,
    /// Submission retry policy for transient rejections.
    pub retry: RetryPolicy,
    /// Worker panics to arm right before swap attempts (deterministic
    /// mid-swap chaos; 0 in production).
    pub chaos_mid_swap_panics: u32,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        Self {
            cooldown_ticks: 5,
            resubmit_attempts: 8,
            request_deadline: Duration::from_secs(5),
            retry: RetryPolicy {
                max_attempts: 6,
                base_delay_ms: 1,
                backoff: 2.0,
            },
            chaos_mid_swap_panics: 0,
        }
    }
}

/// What one tick did (for drivers that interleave their own traffic).
#[derive(Debug, Clone)]
pub struct TickReport {
    /// 1-based tick number.
    pub tick: u64,
    /// Lifecycle state after the tick.
    pub state: LoopState,
    /// Detector verdict for this tick's window, if it was scored.
    pub verdict: Option<Verdict>,
    /// Mean fit distance of this tick's window, if it was scored.
    pub fit_distance: Option<f64>,
    /// Requests served this tick.
    pub served: u64,
    /// Requests resubmitted after a worker crash this tick.
    pub resubmitted: u64,
    /// Sensor dropouts in this tick's window.
    pub dropouts: u64,
    /// An episode that reached its terminal this tick, if any.
    pub closed_episode: Option<EpisodeReport>,
}

/// The final report of a monitoring run.
#[derive(Debug)]
pub struct MonitorReport {
    /// Ticks executed.
    pub ticks: u64,
    /// Closed episodes, in order.
    pub episodes: Vec<EpisodeReport>,
    /// Whether an episode was still open when the run ended.
    pub open_episode: bool,
    /// Inference requests served (completed with a prediction).
    pub served: u64,
    /// Requests dropped — the zero-drop invariant; must stay 0.
    pub dropped: u64,
    /// Resubmissions after worker crashes.
    pub resubmitted: u64,
    /// Window measurements lost to sensor dropout.
    pub sensor_dropouts: u64,
    /// Windows whose fit score was rejected at the boundary
    /// (degenerate/zero-variance windows, e.g. all samples dropped).
    pub windows_rejected: u64,
    /// Lifecycle state at the end of the run.
    pub final_state: LoopState,
    /// Last scored mean fit distance.
    pub final_fit: Option<f64>,
    /// The detector baseline at the end of the run, if learned.
    pub final_baseline: Option<f64>,
    /// The version serving at the end of the run.
    pub serving_version: Option<u32>,
}

impl MonitorReport {
    /// Episode-conservation check: every closed episode carries exactly
    /// one terminal and the episode numbers are dense (1..=n).
    ///
    /// # Errors
    ///
    /// [`MonitorError::Invariant`] describing the first violation.
    pub fn check_conservation(&self) -> Result<(), MonitorError> {
        for (index, episode) in self.episodes.iter().enumerate() {
            if episode.episode != index + 1 {
                return Err(MonitorError::Invariant(format!(
                    "episode numbering gap: slot {} holds episode {}",
                    index + 1,
                    episode.episode
                )));
            }
            let swapped_fields = episode.new_version.is_some();
            match episode.outcome {
                EpisodeOutcome::Swapped if !swapped_fields => {
                    return Err(MonitorError::Invariant(format!(
                        "episode {} swapped without a version",
                        episode.episode
                    )));
                }
                EpisodeOutcome::RolledBack | EpisodeOutcome::Suppressed if swapped_fields => {
                    return Err(MonitorError::Invariant(format!(
                        "episode {} carries a version despite terminal {:?}",
                        episode.episode, episode.outcome
                    )));
                }
                _ => {}
            }
            if episode.closed_at_tick < episode.opened_at_tick {
                return Err(MonitorError::Invariant(format!(
                    "episode {} closed before it opened",
                    episode.episode
                )));
            }
        }
        Ok(())
    }
}

/// The closed monitoring loop. Owns the stream, detector and episode
/// ledger; borrows the serving fleet.
pub struct MonitorLoop<'a> {
    stream: MsStream,
    detector: DriftDetector,
    router: &'a Router,
    store: &'a Store,
    faults: &'a FaultPlan,
    config: MonitorConfig,
    recharacterize: RecharacterizeConfig,
    believed: InstrumentModel,
    believed_render: ContinuousSpectrum,
    serving_version: u32,
    state: LoopState,
    cooldown_remaining: u64,
    active: Option<Recharacterizer>,
    open_episode: Option<OpenEpisode>,
    episodes: Vec<EpisodeReport>,
    chaos_mid_swap_panics: u32,
    tick: u64,
    served: u64,
    dropped: u64,
    resubmitted: u64,
    sensor_dropouts: u64,
    windows_rejected: u64,
    last_fit: Option<f64>,
}

impl<'a> MonitorLoop<'a> {
    /// Builds a loop around a bootstrapped fleet: `believed` is the
    /// instrument estimate behind `serving_version` (from
    /// [`crate::recharacterize::bootstrap`]).
    ///
    /// # Errors
    ///
    /// [`MonitorError::Ms`] if the believed render cannot be produced
    /// (unknown gas in the process mixture).
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        stream: MsStream,
        detector: DriftDetector,
        router: &'a Router,
        store: &'a Store,
        faults: &'a FaultPlan,
        config: MonitorConfig,
        recharacterize: RecharacterizeConfig,
        believed: InstrumentModel,
        serving_version: u32,
    ) -> Result<Self, MonitorError> {
        let believed_render = render_belief(&believed, &stream)?;
        let chaos = config.chaos_mid_swap_panics;
        Ok(Self {
            stream,
            detector,
            router,
            store,
            faults,
            config,
            recharacterize,
            believed,
            believed_render,
            serving_version,
            state: LoopState::Stable,
            cooldown_remaining: 0,
            active: None,
            open_episode: None,
            episodes: Vec::new(),
            chaos_mid_swap_panics: chaos,
            tick: 0,
            served: 0,
            dropped: 0,
            resubmitted: 0,
            sensor_dropouts: 0,
            windows_rejected: 0,
            last_fit: None,
        })
    }

    /// The lifecycle state.
    pub fn state(&self) -> LoopState {
        self.state
    }

    /// The version the loop believes is serving.
    pub fn serving_version(&self) -> u32 {
        self.serving_version
    }

    /// The instrument estimate behind the serving model.
    pub fn believed(&self) -> &InstrumentModel {
        &self.believed
    }

    /// The stream (for checkpointing between ticks).
    pub fn stream(&self) -> &MsStream {
        &self.stream
    }

    /// Runs `ticks` ticks and returns the final report.
    ///
    /// # Errors
    ///
    /// Propagates unrecoverable tick errors.
    pub fn run(mut self, ticks: u64) -> Result<MonitorReport, MonitorError> {
        for _ in 0..ticks {
            self.tick()?;
        }
        self.into_report()
    }

    /// Finalizes the run without further ticks.
    ///
    /// # Errors
    ///
    /// [`MonitorError::Invariant`] if episode conservation is violated.
    pub fn into_report(self) -> Result<MonitorReport, MonitorError> {
        let report = MonitorReport {
            ticks: self.tick,
            open_episode: self.open_episode.is_some(),
            episodes: self.episodes,
            served: self.served,
            dropped: self.dropped,
            resubmitted: self.resubmitted,
            sensor_dropouts: self.sensor_dropouts,
            windows_rejected: self.windows_rejected,
            final_state: self.state,
            final_fit: self.last_fit,
            final_baseline: self.detector.baseline(),
            serving_version: Some(self.serving_version),
        };
        report.check_conservation()?;
        Ok(report)
    }

    /// One tick: acquire a window, serve it, score it, feed the
    /// detector, advance the lifecycle.
    ///
    /// # Errors
    ///
    /// Unrecoverable stream/serve faults only; everything the loop is
    /// designed to absorb (dropouts, crashes, tool failures) is handled
    /// and accounted instead.
    pub fn tick(&mut self) -> Result<TickReport, MonitorError> {
        let _span = obs::span!("monitor.tick");
        self.tick += 1;
        obs::counter_add("monitor.ticks", 1);

        // 1. Acquire and serve one window. All tickets are awaited
        //    before anything else happens this tick, so no traffic is
        //    in flight when the recharacterizer steps (that quiescence
        //    is what makes armed mid-swap panics land on the canary).
        let window = self.stream.next_window(self.faults)?;
        self.sensor_dropouts += window.dropouts;
        let (served_now, resubmitted_now) = self.serve_window(&window.spectra)?;

        // 2. Score the window against the believed instrument.
        let fit = self.score_window(&window.spectra);
        if let Some(distance) = fit {
            self.last_fit = Some(distance);
        } else {
            self.windows_rejected += 1;
        }

        // 3. Feed the detector (only scored windows count).
        let verdict = fit.map(|distance| self.detector.observe(distance));

        // 4. Advance the lifecycle.
        let closed = self.advance(verdict, fit)?;

        obs::gauge_set("monitor.state", state_gauge(self.state));
        Ok(TickReport {
            tick: self.tick,
            state: self.state,
            verdict,
            fit_distance: fit,
            served: served_now,
            resubmitted: resubmitted_now,
            dropouts: window.dropouts,
            closed_episode: closed,
        })
    }

    /// Submits every window sample for inference and waits for all of
    /// them. Worker crashes are resubmitted (bounded); only exhausting
    /// the resubmission budget counts as a drop.
    fn serve_window(&mut self, spectra: &[ContinuousSpectrum]) -> Result<(u64, u64), MonitorError> {
        let mut served = 0u64;
        let mut resubmitted = 0u64;
        let inputs: Vec<Vec<f32>> = spectra
            .iter()
            .map(|s| s.resampled(&self.recharacterize.serving_axis).to_f32())
            .collect();
        let mut tickets = Vec::with_capacity(inputs.len());
        for input in &inputs {
            let request = Request::new(self.recharacterize.model_name.clone(), input.clone())
                .with_deadline(self.config.request_deadline);
            tickets.push(self.router.submit_with_retry(request, self.config.retry));
        }
        for (index, ticket) in tickets.into_iter().enumerate() {
            let mut outcome = match ticket {
                Ok(ticket) => ticket.wait(),
                Err(err) => {
                    // Admission kept rejecting: account the drop, keep
                    // the loop alive (the invariant assert catches it).
                    self.dropped += 1;
                    obs::counter_add("monitor.dropped", 1);
                    let _: SubmitError = err;
                    continue;
                }
            };
            let mut attempts = 0;
            while matches!(outcome, Err(ServeError::WorkerCrashed))
                && attempts < self.config.resubmit_attempts
            {
                attempts += 1;
                resubmitted += 1;
                obs::counter_add("monitor.resubmitted", 1);
                let input = match inputs.get(index) {
                    Some(input) => input.clone(),
                    None => break,
                };
                let request = Request::new(self.recharacterize.model_name.clone(), input)
                    .with_deadline(self.config.request_deadline);
                outcome = match self.router.submit_with_retry(request, self.config.retry)
                {
                    Ok(ticket) => ticket.wait(),
                    Err(_) => Err(ServeError::WorkerCrashed),
                };
            }
            match outcome {
                Ok(_prediction) => served += 1,
                Err(_) => {
                    self.dropped += 1;
                    obs::counter_add("monitor.dropped", 1);
                }
            }
        }
        self.served += served;
        self.resubmitted += resubmitted;
        Ok((served, resubmitted))
    }

    /// Mean TV distance of the window's valid samples against the
    /// believed render. Degenerate samples (all-zero dropouts,
    /// non-finite data) are rejected by `spectral_fit` at the boundary;
    /// a window with no valid samples scores `None`.
    fn score_window(&self, spectra: &[ContinuousSpectrum]) -> Option<f64> {
        let modelled = self.believed_render.intensities();
        let mut total = 0.0;
        let mut count = 0usize;
        for spectrum in spectra {
            match spectral_fit(modelled, spectrum.intensities()) {
                Ok(fit) => {
                    total += fit.distance;
                    count += 1;
                }
                Err(_) => obs::counter_add("monitor.samples_rejected", 1),
            }
        }
        if count == 0 {
            None
        } else {
            Some(total / count as f64)
        }
    }

    /// Lifecycle transitions for one tick.
    fn advance(
        &mut self,
        verdict: Option<Verdict>,
        fit: Option<f64>,
    ) -> Result<Option<EpisodeReport>, MonitorError> {
        match self.state {
            LoopState::Stable => {
                if let Some(Verdict::Suspected | Verdict::Confirmed) = verdict {
                    self.open_episode(fit)?;
                    self.state = LoopState::DriftSuspected;
                    if matches!(verdict, Some(Verdict::Confirmed)) {
                        return self.confirm_episode();
                    }
                }
                Ok(None)
            }
            LoopState::DriftSuspected => match verdict {
                Some(Verdict::Confirmed) => self.confirm_episode(),
                Some(Verdict::Stable) => {
                    let report = self.close_episode(EpisodeOutcome::Suppressed, None, None)?;
                    self.state = LoopState::Stable;
                    Ok(Some(report))
                }
                _ => Ok(None),
            },
            LoopState::Recharacterizing | LoopState::Swapping => self.step_recharacterizer(),
            LoopState::CoolingDown => {
                self.cooldown_remaining = self.cooldown_remaining.saturating_sub(1);
                if self.cooldown_remaining == 0 {
                    self.detector.reset();
                    self.state = LoopState::Stable;
                }
                Ok(None)
            }
        }
    }

    /// Opens an episode at the first suspicion.
    fn open_episode(&mut self, fit: Option<f64>) -> Result<(), MonitorError> {
        if self.open_episode.is_some() {
            return Err(MonitorError::Invariant(
                "opening an episode while one is open".into(),
            ));
        }
        let episode = self.episodes.len() + 1;
        obs::counter_add("monitor.episodes_opened", 1);
        self.open_episode = Some(OpenEpisode {
            episode,
            opened_at_tick: self.tick,
            confirmed_at_tick: None,
            opened_at: Instant::now(),
            fit_at_open: fit.or(self.last_fit).unwrap_or(f64::NAN),
        });
        Ok(())
    }

    /// Escalates the open episode to confirmed drift.
    fn confirm_episode(&mut self) -> Result<Option<EpisodeReport>, MonitorError> {
        let Some(open) = self.open_episode.as_mut() else {
            return Err(MonitorError::Invariant(
                "confirming drift without an open episode".into(),
            ));
        };
        open.confirmed_at_tick = Some(self.tick);
        let seed = open.episode as u64;
        self.active = Some(Recharacterizer::begin(self.recharacterize.clone(), seed));
        self.state = LoopState::Recharacterizing;
        obs::counter_add("monitor.episodes_confirmed", 1);
        Ok(None)
    }

    /// Advances the recharacterizer by one sub-phase and applies its
    /// outcome to the lifecycle.
    fn step_recharacterizer(&mut self) -> Result<Option<EpisodeReport>, MonitorError> {
        let Some(mut rech) = self.active.take() else {
            return Err(MonitorError::Invariant(
                "recharacterizing state without an active recharacterizer".into(),
            ));
        };
        let mut chaos = self.chaos_mid_swap_panics;
        let outcome = rech.step(
            &mut self.stream,
            self.router,
            self.store,
            self.faults,
            &mut chaos,
        )?;
        self.chaos_mid_swap_panics = chaos;
        match outcome {
            StepOutcome::InProgress { .. } => {
                self.state = if rech.is_swapping() {
                    LoopState::Swapping
                } else {
                    LoopState::Recharacterizing
                };
                self.active = Some(rech);
                Ok(None)
            }
            StepOutcome::Swapped { version, model, .. } => {
                self.serving_version = version;
                self.believed = model;
                self.believed_render = render_belief(&self.believed, &self.stream)?;
                self.detector.reset();
                let stats = (
                    rech.characterize_attempts,
                    rech.swap_attempts,
                    rech.calibration_dropouts,
                );
                let report =
                    self.close_episode(EpisodeOutcome::Swapped, Some(version), Some(stats))?;
                self.state = LoopState::Stable;
                obs::counter_add("monitor.episodes_swapped", 1);
                Ok(Some(report))
            }
            StepOutcome::Failed { reason } => {
                let stats = (
                    rech.characterize_attempts,
                    rech.swap_attempts,
                    rech.calibration_dropouts,
                );
                let mut report = self.close_episode(EpisodeOutcome::RolledBack, None, Some(stats))?;
                report.failure = Some(reason.clone());
                if let Some(slot) = self.episodes.last_mut() {
                    slot.failure = Some(reason);
                }
                self.detector.reset();
                self.cooldown_remaining = self.config.cooldown_ticks.max(1);
                self.state = LoopState::CoolingDown;
                obs::counter_add("monitor.episodes_rolled_back", 1);
                Ok(Some(report))
            }
        }
    }

    /// Closes the open episode with exactly one terminal.
    fn close_episode(
        &mut self,
        outcome: EpisodeOutcome,
        new_version: Option<u32>,
        stats: Option<(u32, u32, u64)>,
    ) -> Result<EpisodeReport, MonitorError> {
        let Some(open) = self.open_episode.take() else {
            return Err(MonitorError::Invariant(
                "closing an episode that is not open".into(),
            ));
        };
        let (characterize_attempts, swap_attempts, calibration_dropouts) =
            stats.unwrap_or((0, 0, 0));
        let report = EpisodeReport {
            episode: open.episode,
            opened_at_tick: open.opened_at_tick,
            confirmed_at_tick: open.confirmed_at_tick,
            closed_at_tick: self.tick,
            outcome,
            open_to_terminal: open.opened_at.elapsed(),
            fit_at_open: open.fit_at_open,
            fit_at_close: self.last_fit.unwrap_or(f64::NAN),
            new_version,
            characterize_attempts,
            swap_attempts,
            calibration_dropouts,
            failure: None,
        };
        self.episodes.push(report.clone());
        Ok(report)
    }
}

/// Renders the believed instrument's clean spectrum of the stream's
/// process mixture on the *stream* axis — the reference every window is
/// scored against.
fn render_belief(
    believed: &InstrumentModel,
    stream: &MsStream,
) -> Result<ContinuousSpectrum, MonitorError> {
    let simulator = TrainingSimulator::new(
        believed.clone(),
        GasLibrary::standard(),
        mixture_components(stream.mixture()),
        *stream.axis(),
    )?;
    Ok(simulator.simulate_clean(stream.mixture())?)
}

/// The component names of a mixture (the believed-render simulator only
/// needs the gases that actually appear).
fn mixture_components(mixture: &Mixture) -> Vec<String> {
    mixture.into_iter().map(|(name, _)| name.clone()).collect()
}

/// Numeric encoding of the lifecycle state for the `monitor.state`
/// gauge.
fn state_gauge(state: LoopState) -> f64 {
    match state {
        LoopState::Stable => 0.0,
        LoopState::DriftSuspected => 1.0,
        LoopState::Recharacterizing => 2.0,
        LoopState::Swapping => 3.0,
        LoopState::CoolingDown => 4.0,
    }
}
