//! Auto-recharacterization: the paper's Tools 2–4 as a resumable,
//! tick-driven state machine.
//!
//! When drift is confirmed the loop hands control here. Each call to
//! [`Recharacterizer::step`] advances *one* sub-phase, so the main
//! stream keeps flowing (and keeps being served) between phases:
//!
//! ```text
//! Collecting ──▶ Characterizing ──▶ Training ──▶ Publishing ──▶ Swapping
//!     ▲                │ (tool failure: retry                      │
//!     └── fresh windows ┘  with fresh windows)        rolling_swap ┘
//! ```
//!
//! * **Collecting** draws the calibration campaign *through the
//!   stream* (a few mixtures per tick) — sensor dropouts are discarded
//!   at the boundary and never reach the estimator.
//! * **Characterizing** runs `ms_sim::characterize`. An injected tool
//!   failure (`FaultPlan::fail_characterize`) or an estimation error
//!   consumes one retry and sends the machine back to collect fresh
//!   windows; exhausting retries fails the episode.
//! * **Training** regenerates labelled spectra from the *estimated*
//!   instrument and retrains under `neural::guard` (NaN/divergence
//!   rollback included).
//! * **Publishing** deploys the artifact to the datastore and publishes
//!   through [`serve::ModelRegistry::publish_gated`]: the validation
//!   gate (finite outputs, MAE under [`RecharacterizeConfig::gate_max_mae`])
//!   runs *before* the version becomes visible to any reader.
//! * **Swapping** waits for every shard to be healthy, then calls
//!   [`serve::Router::rolling_swap`]. A failed canary (e.g. an armed
//!   mid-swap worker panic) consumes one retry and waits for the
//!   supervisor to restart the shard; exhausting retries fails the
//!   episode (the routers' pins have already rolled back).

use chem::fragmentation::GasLibrary;
use chem::Mixture;
use datastore::Store;
use faultsim::FaultPlan;
use ms_sim::campaign::{calibration_mixtures, MS_TASK_SUBSTANCES};
use ms_sim::characterize::{CharacterizationReport, Characterizer};
use ms_sim::instrument::InstrumentModel;
use ms_sim::prototype::MeasuredSample;
use ms_sim::simulate::TrainingSimulator;
use neural::guard::{GuardConfig, GuardedTrainer};
use neural::spec::{LayerSpec, NetworkSpec};
use neural::train::{Dataset, TrainConfig};
use neural::{Activation, Network};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serve::{HealthState, Router, ServeError, SwapReport};
use spectroai::pipeline::deploy::deploy_network;
use spectrum::UniformAxis;

use crate::stream::MsStream;
use crate::MonitorError;

/// The ignition/carrier gas the characterizer estimates.
const IGNITION_GAS: &str = "He";

/// Tuning for the recharacterization pipeline.
#[derive(Debug, Clone)]
pub struct RecharacterizeConfig {
    /// The served model name (registry key).
    pub model_name: String,
    /// Datastore collection deployments land in.
    pub collection: String,
    /// The serving-side input axis (training data and inference inputs
    /// are resampled onto it).
    pub serving_axis: UniformAxis,
    /// Network output order.
    pub substances: Vec<String>,
    /// Calibration measurements per mixture.
    pub samples_per_mixture: usize,
    /// Calibration mixtures drawn per tick while collecting.
    pub mixtures_per_tick: usize,
    /// Characterization attempts before the episode fails.
    pub characterize_retries: u32,
    /// Training spectra generated from the estimated instrument.
    pub train_spectra: usize,
    /// Held-out validation spectra (drives the publish gate).
    pub val_spectra: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Training batch size.
    pub batch_size: usize,
    /// Publish gate: reject candidates whose validation MAE exceeds
    /// this (or whose outputs are non-finite).
    pub gate_max_mae: f32,
    /// Rolling-swap attempts before the episode fails.
    pub swap_retries: u32,
    /// Base seed for dataset generation and training.
    pub seed: u64,
}

impl RecharacterizeConfig {
    /// A CI-scale configuration: coarse 199-point serving axis, small
    /// dense network, short training.
    ///
    /// # Errors
    ///
    /// [`MonitorError::Spectrum`] if the axis construction fails
    /// (it cannot, for these constants).
    pub fn quick(model_name: impl Into<String>) -> Result<Self, MonitorError> {
        Ok(Self {
            model_name: model_name.into(),
            collection: "deployed_models".into(),
            serving_axis: UniformAxis::from_range(1.0, 100.0, 0.5)?,
            substances: MS_TASK_SUBSTANCES.iter().map(|s| s.to_string()).collect(),
            samples_per_mixture: 2,
            mixtures_per_tick: 5,
            characterize_retries: 2,
            train_spectra: 240,
            val_spectra: 60,
            epochs: 4,
            batch_size: 16,
            gate_max_mae: 0.2,
            swap_retries: 4,
            seed: 0,
        })
    }

    /// The network architecture trained on recharacterization: a small
    /// dense head sized for the serving axis.
    pub fn network_spec(&self) -> NetworkSpec {
        NetworkSpec::new(self.serving_axis.len())
            .layer(LayerSpec::Dense {
                units: 32,
                activation: Activation::Relu,
            })
            .layer(LayerSpec::Dense {
                units: self.substances.len(),
                activation: Activation::Softmax,
            })
    }
}

/// A freshly characterized-and-trained candidate, pre-publication.
#[derive(Debug)]
struct Candidate {
    model: InstrumentModel,
    spec: NetworkSpec,
    network: Network,
    validation: Dataset,
}

/// Result of bootstrapping the first served model from a stream.
#[derive(Debug)]
pub struct Bootstrap {
    /// The published model version (always 1 on a fresh store).
    pub version: u32,
    /// The estimated instrument the loop believes in.
    pub believed: InstrumentModel,
    /// Characterization diagnostics.
    pub report: CharacterizationReport,
}

/// Characterizes, trains and publishes the initial model — the setup
/// the paper performs by hand before any monitoring can start. Consumes
/// calibration windows from the stream; does not consult the
/// characterize-failure fault hook (bootstrap is supervised setup, not
/// part of the monitored loop).
///
/// # Errors
///
/// Any failure of the underlying tools is fatal here — there is no
/// previous model to fall back to.
pub fn bootstrap(
    stream: &mut MsStream,
    store: &Store,
    registry: &serve::ModelRegistry,
    config: &RecharacterizeConfig,
    faults: &FaultPlan,
) -> Result<Bootstrap, MonitorError> {
    let _span = obs::span!("monitor.bootstrap");
    let mixtures = calibration_mixtures();
    let (samples, _dropouts) =
        stream.calibration_series(&mixtures, config.samples_per_mixture, faults)?;
    let report = Characterizer::new(GasLibrary::standard(), Some(IGNITION_GAS.into()))
        .characterize(&samples)?;
    let candidate = train_candidate(report.model.clone(), config, config.seed)?;
    let version = publish_candidate(&candidate, store, registry, config)?;
    Ok(Bootstrap {
        version,
        believed: report.model.clone(),
        report,
    })
}

/// Generates data from `model`, builds and guard-trains the network.
fn train_candidate(
    model: InstrumentModel,
    config: &RecharacterizeConfig,
    seed: u64,
) -> Result<Candidate, MonitorError> {
    let _span = obs::span!("monitor.train");
    let simulator = TrainingSimulator::new(
        model.clone(),
        GasLibrary::standard(),
        config.substances.clone(),
        config.serving_axis,
    )?;
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let train = simulator.generate_dataset(config.train_spectra, &mut rng)?;
    let val = simulator.generate_dataset(config.val_spectra, &mut rng)?;
    let train = Dataset::new(train.inputs_f32(), train.labels_f32())?;
    let validation = Dataset::new(val.inputs_f32(), val.labels_f32())?;
    let spec = config.network_spec();
    let mut network = spec.build(seed)?;
    let trainer = GuardedTrainer::new(
        TrainConfig {
            epochs: config.epochs,
            batch_size: config.batch_size,
            seed,
            ..TrainConfig::default()
        },
        GuardConfig::default(),
    )?;
    trainer.fit(&mut network, &train, Some(&validation))?;
    Ok(Candidate {
        model,
        spec,
        network,
        validation,
    })
}

/// Deploys the candidate to the datastore and publishes it through the
/// gated registry path. The gate replays the validation set against the
/// *compiled* plan: all outputs must be finite and the MAE under
/// [`RecharacterizeConfig::gate_max_mae`], otherwise the version never
/// becomes visible.
fn publish_candidate(
    candidate: &Candidate,
    store: &Store,
    registry: &serve::ModelRegistry,
    config: &RecharacterizeConfig,
) -> Result<u32, MonitorError> {
    let _span = obs::span!("monitor.publish");
    let receipt = deploy_network(
        store,
        &config.collection,
        &config.model_name,
        candidate.spec.clone(),
        &candidate.network,
        [],
    )?;
    let exported = neural::export::ExportedNetwork::from_network(
        candidate.spec.clone(),
        &candidate.network,
        config.model_name.clone(),
    );
    let validation = &candidate.validation;
    let gate_max = config.gate_max_mae;
    registry.publish_gated(&config.model_name, receipt.version, &exported, |plan| {
        let mut total = 0.0f64;
        let mut count = 0usize;
        for (input, target) in validation.inputs().iter().zip(validation.targets()) {
            let output = plan
                .predict(input)
                .map_err(|err| format!("candidate inference failed: {err}"))?;
            for (o, t) in output.iter().zip(target) {
                if !o.is_finite() {
                    return Err("candidate produced non-finite output".into());
                }
                total += f64::from((o - t).abs());
                count += 1;
            }
        }
        if count == 0 {
            return Err("validation set is empty".into());
        }
        let mae = total / count as f64;
        if mae > f64::from(gate_max) {
            return Err(format!("validation MAE {mae:.4} exceeds gate {gate_max}"));
        }
        Ok(())
    })?;
    obs::counter_add("monitor.models_published", 1);
    Ok(receipt.version)
}

/// Where the state machine currently is.
enum Phase {
    Collecting { next_mixture: usize },
    Characterizing,
    Training { model: InstrumentModel },
    Publishing { candidate: Candidate },
    Swapping { version: u32, model: InstrumentModel },
}

/// What one [`Recharacterizer::step`] produced.
#[derive(Debug)]
pub enum StepOutcome {
    /// The machine advanced one sub-phase; call again next tick.
    InProgress {
        /// The phase the machine is now in (for reporting).
        phase: &'static str,
    },
    /// The swap completed: the fleet serves `version`, whose training
    /// data came from `model`.
    Swapped {
        /// The now-serving model version.
        version: u32,
        /// The estimated instrument behind it (the loop's new belief).
        model: InstrumentModel,
        /// The router's swap receipt.
        report: SwapReport,
    },
    /// The episode failed; the fleet still serves the previous version.
    Failed {
        /// What exhausted the retries.
        reason: String,
    },
}

/// The tick-driven recharacterization state machine. See module docs.
pub struct Recharacterizer {
    config: RecharacterizeConfig,
    episode_seed: u64,
    phase: Phase,
    samples: Vec<MeasuredSample>,
    mixtures: Vec<Mixture>,
    /// Calibration measurements lost to sensor dropout.
    pub calibration_dropouts: u64,
    /// Characterization attempts consumed (injected failures included).
    pub characterize_attempts: u32,
    /// Rolling-swap attempts consumed.
    pub swap_attempts: u32,
}

impl Recharacterizer {
    /// Starts a fresh recharacterization for one episode. The episode
    /// seed decorrelates training across episodes while staying
    /// deterministic.
    pub fn begin(config: RecharacterizeConfig, episode_seed: u64) -> Self {
        Self {
            config,
            episode_seed,
            phase: Phase::Collecting { next_mixture: 0 },
            samples: Vec::new(),
            mixtures: calibration_mixtures(),
            calibration_dropouts: 0,
            characterize_attempts: 0,
            swap_attempts: 0,
        }
    }

    /// The phase name, for reporting.
    pub fn phase_name(&self) -> &'static str {
        match self.phase {
            Phase::Collecting { .. } => "collecting",
            Phase::Characterizing => "characterizing",
            Phase::Training { .. } => "training",
            Phase::Publishing { .. } => "publishing",
            Phase::Swapping { .. } => "swapping",
        }
    }

    /// Whether the machine is in its swap phase (the loop reports this
    /// as the `Swapping` lifecycle state).
    pub fn is_swapping(&self) -> bool {
        matches!(self.phase, Phase::Swapping { .. })
    }

    /// Advances one sub-phase. `chaos_mid_swap_panics` is a budget of
    /// worker panics to arm right before a swap attempt (deterministic
    /// chaos: the panic lands exactly on the canary batch, because the
    /// loop quiesces window traffic before stepping).
    ///
    /// # Errors
    ///
    /// Only unrecoverable faults (unknown gas, invariant breaches)
    /// surface as errors; tool failures with retries left, gate
    /// rejections and canary failures are handled internally and
    /// reported through [`StepOutcome`].
    pub fn step(
        &mut self,
        stream: &mut MsStream,
        router: &Router,
        store: &Store,
        faults: &FaultPlan,
        chaos_mid_swap_panics: &mut u32,
    ) -> Result<StepOutcome, MonitorError> {
        let _span = obs::span!("monitor.recharacterize_step");
        match std::mem::replace(&mut self.phase, Phase::Characterizing) {
            Phase::Collecting { next_mixture } => {
                let end = (next_mixture + self.config.mixtures_per_tick).min(self.mixtures.len());
                let batch: Vec<Mixture> = self.mixtures[next_mixture..end].to_vec();
                let (mut samples, dropouts) = stream.calibration_series(
                    &batch,
                    self.config.samples_per_mixture,
                    faults,
                )?;
                self.samples.append(&mut samples);
                self.calibration_dropouts += dropouts;
                if end < self.mixtures.len() {
                    self.phase = Phase::Collecting { next_mixture: end };
                } else {
                    self.phase = Phase::Characterizing;
                }
                Ok(StepOutcome::InProgress {
                    phase: self.phase_name(),
                })
            }
            Phase::Characterizing => {
                self.characterize_attempts += 1;
                let injected = faults.fail_characterize();
                let estimated = if injected {
                    Err(MonitorError::Invariant(
                        "injected characterization failure".into(),
                    ))
                } else {
                    Characterizer::new(GasLibrary::standard(), Some(IGNITION_GAS.into()))
                        .characterize(&self.samples)
                        .map_err(MonitorError::from)
                };
                match estimated {
                    Ok(report) => {
                        self.phase = Phase::Training {
                            model: report.model,
                        };
                        Ok(StepOutcome::InProgress {
                            phase: self.phase_name(),
                        })
                    }
                    Err(err) => {
                        if self.characterize_attempts > self.config.characterize_retries {
                            Ok(StepOutcome::Failed {
                                reason: format!(
                                    "characterization failed after {} attempts: {err}",
                                    self.characterize_attempts
                                ),
                            })
                        } else {
                            // Retry with fresh calibration windows.
                            self.samples.clear();
                            self.phase = Phase::Collecting { next_mixture: 0 };
                            Ok(StepOutcome::InProgress {
                                phase: self.phase_name(),
                            })
                        }
                    }
                }
            }
            Phase::Training { model } => {
                let seed = self.config.seed ^ self.episode_seed.rotate_left(17);
                match train_candidate(model, &self.config, seed) {
                    Ok(candidate) => {
                        self.phase = Phase::Publishing { candidate };
                        Ok(StepOutcome::InProgress {
                            phase: self.phase_name(),
                        })
                    }
                    Err(err) => Ok(StepOutcome::Failed {
                        reason: format!("guarded training failed: {err}"),
                    }),
                }
            }
            Phase::Publishing { candidate } => {
                match publish_candidate(&candidate, store, router.registry(), &self.config) {
                    Ok(version) => {
                        self.phase = Phase::Swapping {
                            version,
                            model: candidate.model,
                        };
                        Ok(StepOutcome::InProgress {
                            phase: self.phase_name(),
                        })
                    }
                    Err(MonitorError::Serve(ServeError::GateRejected {
                        model,
                        version,
                        reason,
                    })) => Ok(StepOutcome::Failed {
                        reason: format!("gate rejected {model} v{version}: {reason}"),
                    }),
                    Err(err) => Err(err),
                }
            }
            Phase::Swapping { version, model } => {
                // Wait out supervisor restarts: retry only against a
                // fully healthy fleet, otherwise the canary is doomed.
                let all_healthy = (0..router.shard_count())
                    .all(|s| router.shard_health(s) == Some(HealthState::Healthy));
                if !all_healthy {
                    self.phase = Phase::Swapping { version, model };
                    return Ok(StepOutcome::InProgress {
                        phase: self.phase_name(),
                    });
                }
                self.swap_attempts += 1;
                if *chaos_mid_swap_panics > 0 {
                    *chaos_mid_swap_panics -= 1;
                    faults.arm_worker_panic(0, 0);
                }
                match router.rolling_swap(&self.config.model_name, version) {
                    Ok(report) => Ok(StepOutcome::Swapped {
                        version,
                        model,
                        report,
                    }),
                    Err(err @ (ServeError::CanaryFailed { .. } | ServeError::Store(_))) => {
                        if self.swap_attempts > self.config.swap_retries {
                            Ok(StepOutcome::Failed {
                                reason: format!(
                                    "rolling swap failed after {} attempts: {err}",
                                    self.swap_attempts
                                ),
                            })
                        } else {
                            obs::counter_add("monitor.swap_retries", 1);
                            self.phase = Phase::Swapping { version, model };
                            Ok(StepOutcome::InProgress {
                                phase: self.phase_name(),
                            })
                        }
                    }
                    Err(err) => Err(err.into()),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::{DriftSchedule, MsStream};
    use ms_sim::prototype::ideal_config;

    fn process_mixture() -> Mixture {
        Mixture::from_fractions(vec![
            ("N2".into(), 0.55),
            ("O2".into(), 0.18),
            ("Ar".into(), 0.02),
            ("CO2".into(), 0.25),
        ])
        .unwrap()
    }

    #[test]
    fn bootstrap_publishes_a_gated_v1() {
        let mut stream = MsStream::with_config(
            42,
            ideal_config(),
            process_mixture(),
            4,
            DriftSchedule::new(),
        );
        let store = Store::in_memory();
        let registry = serve::ModelRegistry::new();
        let config = RecharacterizeConfig::quick("mms").unwrap();
        let plan = FaultPlan::new();
        let boot = bootstrap(&mut stream, &store, &registry, &config, &plan).unwrap();
        assert_eq!(boot.version, 1);
        assert_eq!(registry.latest("mms"), Some(1));
        // The estimate recovered the true attenuation direction.
        assert!(boot.believed.attenuation.rate < 0.0);
        // The deployed artifact is in the store.
        assert_eq!(store.collection(&config.collection).len(), 1);
    }

    #[test]
    fn gate_rejects_when_mae_bar_is_impossible() {
        let mut stream = MsStream::with_config(
            42,
            ideal_config(),
            process_mixture(),
            4,
            DriftSchedule::new(),
        );
        let store = Store::in_memory();
        let registry = serve::ModelRegistry::new();
        let mut config = RecharacterizeConfig::quick("mms").unwrap();
        config.gate_max_mae = 0.0; // no candidate can pass
        let plan = FaultPlan::new();
        let err = bootstrap(&mut stream, &store, &registry, &config, &plan).unwrap_err();
        assert!(matches!(
            err,
            MonitorError::Serve(ServeError::GateRejected { .. })
        ));
        // The rejected version is unobservable; the artifact stays in
        // the store (it is versioned, not served).
        assert_eq!(registry.latest("mms"), None);
    }
}
