//! Drift detection over the streaming model-fit distance.
//!
//! Input: one observation per window — the mean total-variation
//! distance between the window's measured spectra and the *believed*
//! instrument's clean render (`platform::overlay::spectral_fit`).
//! Because the fit is computed on area-normalized spectra it is immune
//! to the prototype's large per-measurement gain fluctuation and reacts
//! only to *shape* drift: attenuation steepening, mass-calibration
//! walk, peak broadening — exactly the parameters re-characterization
//! can repair.
//!
//! Detection is a one-sided CUSUM on the deviation from a learned
//! baseline, with an EWMA published alongside for observability and
//! with two-sided hysteresis:
//!
//! * the first `learn_windows` observations establish the baseline
//!   (verdict [`Verdict::Learning`] — no alarms while calibrating);
//! * `S ← max(0, S + (x − baseline − slack))` accumulates only
//!   persistent excess distance; white noise around the baseline drains
//!   it;
//! * `S > threshold` raises [`Verdict::Suspected`]; only
//!   `confirm_ticks` *consecutive* over-threshold windows escalate to
//!   [`Verdict::Confirmed`] (a single bad window cannot trigger a
//!   recharacterization);
//! * a suspicion clears back to [`Verdict::Stable`] only after
//!   `clear_ticks` consecutive calm windows (no flapping at the
//!   threshold).
//!
//! Non-finite observations are rejected at the boundary: they are
//! counted, reported, and leave the detector state untouched.

use crate::MonitorError;

/// Tuning for [`DriftDetector`].
#[derive(Debug, Clone, PartialEq)]
pub struct DetectorConfig {
    /// Observations used to learn the baseline fit distance.
    pub learn_windows: usize,
    /// EWMA smoothing factor in `(0, 1]`.
    pub ewma_alpha: f64,
    /// CUSUM slack: deviation below `baseline + slack` drains the
    /// statistic. Set above the baseline's natural window-to-window
    /// scatter.
    pub cusum_slack: f64,
    /// CUSUM decision threshold.
    pub cusum_threshold: f64,
    /// Winsorization cap on the per-window CUSUM increment: one window,
    /// however extreme, contributes at most this much — a single bad
    /// window can neither trigger nor dominate the statistic.
    pub cusum_clip: f64,
    /// Consecutive over-threshold windows required to confirm drift.
    pub confirm_ticks: usize,
    /// Consecutive calm windows required to clear a suspicion.
    pub clear_ticks: usize,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        Self {
            learn_windows: 6,
            ewma_alpha: 0.3,
            cusum_slack: 0.05,
            cusum_threshold: 0.12,
            cusum_clip: 0.06,
            confirm_ticks: 3,
            clear_ticks: 3,
        }
    }
}

/// The detector's verdict after an observation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Still learning the baseline; no alarms possible.
    Learning,
    /// Fit distance consistent with the baseline.
    Stable,
    /// The CUSUM is over threshold but drift is not yet confirmed (or a
    /// previous excursion has not yet cleared).
    Suspected,
    /// Drift confirmed; latched until [`DriftDetector::reset`].
    Confirmed,
}

/// EWMA + CUSUM drift detector with hysteresis. See the module docs.
#[derive(Debug, Clone)]
pub struct DriftDetector {
    config: DetectorConfig,
    baseline_sum: f64,
    baseline: Option<f64>,
    ewma: Option<f64>,
    cusum: f64,
    over_streak: usize,
    calm_streak: usize,
    confirmed: bool,
    observations: u64,
    rejected: u64,
}

impl DriftDetector {
    /// A detector with the given tuning.
    ///
    /// # Errors
    ///
    /// [`MonitorError::Invariant`] if the tuning is degenerate
    /// (zero learning period, alpha outside `(0, 1]`, non-positive
    /// threshold, or non-finite parameters).
    pub fn new(config: DetectorConfig) -> Result<Self, MonitorError> {
        if config.learn_windows == 0 {
            return Err(MonitorError::Invariant(
                "detector needs a learning period".into(),
            ));
        }
        if !(config.ewma_alpha > 0.0 && config.ewma_alpha <= 1.0) {
            return Err(MonitorError::Invariant(format!(
                "ewma_alpha {} outside (0, 1]",
                config.ewma_alpha
            )));
        }
        if config.cusum_threshold.is_nan()
            || config.cusum_threshold <= 0.0
            || !config.cusum_slack.is_finite()
        {
            return Err(MonitorError::Invariant(
                "cusum threshold must be positive and slack finite".into(),
            ));
        }
        if config.cusum_clip.is_nan() || config.cusum_clip <= 0.0 {
            return Err(MonitorError::Invariant(
                "cusum clip must be positive".into(),
            ));
        }
        Ok(Self {
            config,
            baseline_sum: 0.0,
            baseline: None,
            ewma: None,
            cusum: 0.0,
            over_streak: 0,
            calm_streak: 0,
            confirmed: false,
            observations: 0,
            rejected: 0,
        })
    }

    /// Feeds one fit-distance observation and returns the verdict.
    /// Non-finite observations are rejected (counted, state untouched).
    pub fn observe(&mut self, distance: f64) -> Verdict {
        if !distance.is_finite() {
            self.rejected += 1;
            obs::counter_add("monitor.fit_rejected", 1);
            return self.verdict();
        }
        self.observations += 1;
        obs::gauge_set("monitor.fit_distance", distance);

        let Some(baseline) = self.baseline else {
            self.baseline_sum += distance;
            if self.observations >= self.config.learn_windows as u64 {
                self.baseline = Some(self.baseline_sum / self.observations as f64);
            }
            return Verdict::Learning;
        };

        let ewma = match self.ewma {
            Some(prev) => prev + self.config.ewma_alpha * (distance - prev),
            None => distance,
        };
        self.ewma = Some(ewma);
        let deviation = (distance - baseline - self.config.cusum_slack).min(self.config.cusum_clip);
        self.cusum = (self.cusum + deviation).max(0.0);
        obs::gauge_set("monitor.ewma", ewma);
        obs::gauge_set("monitor.cusum", self.cusum);

        if self.confirmed {
            return Verdict::Confirmed;
        }
        if self.cusum > self.config.cusum_threshold {
            self.over_streak += 1;
            self.calm_streak = 0;
            if self.over_streak >= self.config.confirm_ticks {
                self.confirmed = true;
                obs::counter_add("monitor.drift_confirmed", 1);
                return Verdict::Confirmed;
            }
            return Verdict::Suspected;
        }
        self.calm_streak += 1;
        if self.over_streak > 0 {
            if self.calm_streak >= self.config.clear_ticks {
                self.over_streak = 0;
                return Verdict::Stable;
            }
            return Verdict::Suspected;
        }
        Verdict::Stable
    }

    /// The verdict implied by the current state, without an observation.
    pub fn verdict(&self) -> Verdict {
        if self.baseline.is_none() {
            Verdict::Learning
        } else if self.confirmed {
            Verdict::Confirmed
        } else if self.over_streak > 0 {
            Verdict::Suspected
        } else {
            Verdict::Stable
        }
    }

    /// Forgets everything and relearns the baseline — called after a
    /// model swap, when the believed instrument (and therefore the
    /// baseline fit distance) has changed.
    pub fn reset(&mut self) {
        let rejected = self.rejected;
        let config = self.config.clone();
        *self = match Self::new(config) {
            Ok(fresh) => fresh,
            // Unreachable: the config was validated at construction.
            Err(_) => return,
        };
        self.rejected = rejected;
    }

    /// The learned baseline, once the learning period completes.
    pub fn baseline(&self) -> Option<f64> {
        self.baseline
    }

    /// The current EWMA of the fit distance.
    pub fn ewma(&self) -> Option<f64> {
        self.ewma
    }

    /// The current CUSUM statistic.
    pub fn cusum(&self) -> f64 {
        self.cusum
    }

    /// Finite observations consumed.
    pub fn observations(&self) -> u64 {
        self.observations
    }

    /// Non-finite observations rejected at the boundary.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> DetectorConfig {
        DetectorConfig {
            learn_windows: 4,
            ewma_alpha: 0.3,
            cusum_slack: 0.05,
            cusum_threshold: 0.12,
            cusum_clip: 0.05,
            confirm_ticks: 3,
            clear_ticks: 2,
        }
    }

    #[test]
    fn learns_then_stays_stable_on_baseline_noise() {
        let mut detector = DriftDetector::new(config()).unwrap();
        for (i, x) in [0.20, 0.22, 0.18, 0.21].iter().enumerate() {
            assert_eq!(detector.observe(*x), Verdict::Learning, "obs {i}");
        }
        let baseline = detector.baseline().unwrap();
        assert!((baseline - 0.2025).abs() < 1e-12);
        for x in [0.21, 0.19, 0.23, 0.20, 0.22, 0.18] {
            assert_eq!(detector.observe(x), Verdict::Stable);
        }
        assert_eq!(detector.cusum(), 0.0);
    }

    #[test]
    fn sustained_shift_confirms_after_hysteresis() {
        let mut detector = DriftDetector::new(config()).unwrap();
        for x in [0.20, 0.20, 0.20, 0.20] {
            detector.observe(x);
        }
        // +0.15 over baseline: each window contributes the winsorized
        // +0.05, so the CUSUM crosses the 0.12 threshold on window 3
        // and the confirm streak completes on window 5.
        let verdicts: Vec<Verdict> = (0..5).map(|_| detector.observe(0.35)).collect();
        assert_eq!(
            verdicts,
            vec![
                Verdict::Stable,
                Verdict::Stable,
                Verdict::Suspected,
                Verdict::Suspected,
                Verdict::Confirmed
            ]
        );
        // Confirmed latches even if the distance falls back.
        assert_eq!(detector.observe(0.20), Verdict::Confirmed);
        assert_eq!(detector.verdict(), Verdict::Confirmed);
    }

    #[test]
    fn single_spike_is_suppressed_and_clears() {
        let mut detector = DriftDetector::new(config()).unwrap();
        for x in [0.20, 0.20, 0.20, 0.20] {
            detector.observe(x);
        }
        // One huge window is winsorized to a +0.05 contribution — it
        // cannot even raise a suspicion, let alone confirm.
        assert_eq!(detector.observe(0.60), Verdict::Stable);
        assert!(detector.cusum() <= 0.05 + 1e-12);
        // Calm windows drain the statistic straight back to zero.
        assert_eq!(detector.observe(0.20), Verdict::Stable);
        assert_eq!(detector.observe(0.20), Verdict::Stable);
        assert_eq!(detector.cusum(), 0.0);
    }

    #[test]
    fn transient_excursion_is_suspected_then_cleared() {
        let mut detector = DriftDetector::new(config()).unwrap();
        for x in [0.20, 0.20, 0.20, 0.20] {
            detector.observe(x);
        }
        // Three elevated windows raise a suspicion…
        assert_eq!(detector.observe(0.35), Verdict::Stable);
        assert_eq!(detector.observe(0.35), Verdict::Stable);
        assert_eq!(detector.observe(0.35), Verdict::Suspected);
        // …but the drift reverts: hysteresis holds the suspicion for
        // `clear_ticks` calm windows, then clears without confirming.
        assert_eq!(detector.observe(0.20), Verdict::Suspected);
        assert_eq!(detector.observe(0.20), Verdict::Stable);
        assert!(!matches!(detector.verdict(), Verdict::Confirmed));
    }

    #[test]
    fn non_finite_is_rejected_without_state_change() {
        let mut detector = DriftDetector::new(config()).unwrap();
        for x in [0.2, 0.2, 0.2, 0.2, 0.2] {
            detector.observe(x);
        }
        let cusum = detector.cusum();
        let before = detector.observations();
        assert_eq!(detector.observe(f64::NAN), Verdict::Stable);
        assert_eq!(detector.observe(f64::INFINITY), Verdict::Stable);
        assert_eq!(detector.rejected(), 2);
        assert_eq!(detector.observations(), before);
        assert_eq!(detector.cusum(), cusum);
    }

    #[test]
    fn reset_relearns_baseline() {
        let mut detector = DriftDetector::new(config()).unwrap();
        for x in [0.2, 0.2, 0.2, 0.2, 0.5, 0.5, 0.5, 0.5, 0.5] {
            detector.observe(x);
        }
        assert_eq!(detector.verdict(), Verdict::Confirmed);
        detector.observe(f64::NAN);
        detector.reset();
        assert_eq!(detector.verdict(), Verdict::Learning);
        assert_eq!(detector.baseline(), None);
        assert_eq!(detector.rejected(), 1, "rejection count survives reset");
        // Relearns around the new level without alarming.
        for x in [0.5, 0.5, 0.5, 0.5, 0.5] {
            detector.observe(x);
        }
        assert_eq!(detector.verdict(), Verdict::Stable);
    }

    #[test]
    fn degenerate_configs_are_rejected() {
        for bad in [
            DetectorConfig {
                learn_windows: 0,
                ..config()
            },
            DetectorConfig {
                ewma_alpha: 0.0,
                ..config()
            },
            DetectorConfig {
                ewma_alpha: 1.5,
                ..config()
            },
            DetectorConfig {
                cusum_threshold: 0.0,
                ..config()
            },
            DetectorConfig {
                cusum_slack: f64::NAN,
                ..config()
            },
            DetectorConfig {
                cusum_clip: 0.0,
                ..config()
            },
        ] {
            assert!(DriftDetector::new(bad).is_err());
        }
    }
}
