//! Closed-loop online monitoring: the paper's toolflow, run end-to-end
//! and unattended.
//!
//! The source paper builds four tools — characterize the instrument,
//! simulate training data, train a network, deploy it — and runs them
//! *once*, by hand. A prototype instrument does not stay characterized:
//! attenuation steepens as the detector ages, the mass calibration
//! walks, peaks broaden. This crate closes the loop the paper leaves
//! open (DESIGN.md §13):
//!
//! ```text
//!   SpectraStream ──windows──▶ serve::Router ──predictions──▶ ·
//!        │                                                    │
//!        │  model-fit score (TV distance vs believed render)  │
//!        ▼                                                    ▼
//!   DriftDetector (EWMA + CUSUM, hysteresis) ──confirmed──▶ Recharacterizer
//!        ▲                                                    │
//!        │   characterize → retrain (guarded) → publish (gated)
//!        └───────── zero-drop rolling swap ◀──────────────────┘
//! ```
//!
//! * [`stream`] — seeded, resumable spectra sources: the MMS prototype
//!   under a [`stream::DriftSchedule`], or an NMR flow-reactor run.
//! * [`detector`] — a drift detector over the per-window model-fit
//!   distance: EWMA smoothing plus a one-sided CUSUM with hysteresis,
//!   so single bad windows don't trigger and confirmed drift doesn't
//!   flap.
//! * [`recharacterize`] — the paper's Tools 2–4 as a resumable,
//!   tick-driven state machine: collect calibration windows, estimate
//!   the instrument, retrain under `neural::guard`, publish through the
//!   gated registry path, swap with `Router::rolling_swap`.
//! * [`closed_loop`] — the supervised lifecycle tying it together:
//!   `Stable → DriftSuspected → Recharacterizing → Swapping → Stable`,
//!   with `CoolingDown` after a rollback. Every opened episode reaches
//!   exactly one terminal: swapped, rolled back, or suppressed.
//!
//! The whole loop is deterministic given the stream seed and a
//! `faultsim::FaultPlan`, which is what lets CI drive sensor dropout,
//! characterization failure and mid-swap worker panics through it and
//! still assert exact episode outcomes and a dropped-request count of
//! zero.

#![forbid(unsafe_code)]

pub mod closed_loop;
pub mod detector;
pub mod recharacterize;
pub mod stream;

use std::fmt;

pub use closed_loop::{
    EpisodeOutcome, EpisodeReport, LoopState, MonitorConfig, MonitorLoop, MonitorReport,
    TickReport,
};
pub use detector::{DetectorConfig, DriftDetector, Verdict};
pub use recharacterize::{bootstrap, Bootstrap, RecharacterizeConfig, Recharacterizer, StepOutcome};
pub use stream::{
    DriftAction, DriftEvent, DriftSchedule, MsStream, NmrStream, SpectraStream, StreamCheckpoint,
    StreamWindow,
};

/// Error type for the monitoring loop.
#[derive(Debug)]
#[non_exhaustive]
pub enum MonitorError {
    /// Instrument simulation or characterization failed.
    Ms(ms_sim::MsSimError),
    /// NMR experiment acquisition failed.
    Nmr(nmr_sim::NmrSimError),
    /// Network construction or training failed.
    Neural(neural::NeuralError),
    /// Serving-side failure (registry, swap, request completion).
    Serve(serve::ServeError),
    /// A submission was rejected and could not be retried.
    Submit(serve::SubmitError),
    /// Model-fit scoring rejected its inputs.
    Fit(platform::overlay::FitError),
    /// Deploy/pipeline stage failed.
    Pipeline(spectroai::PipelineError),
    /// Axis or spectrum construction failed.
    Spectrum(spectrum::SpectrumError),
    /// A lifecycle invariant was violated (episode conservation,
    /// state-machine misuse) — always a bug in the caller or this crate.
    Invariant(String),
}

impl fmt::Display for MonitorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MonitorError::Ms(err) => write!(f, "instrument: {err}"),
            MonitorError::Nmr(err) => write!(f, "nmr: {err}"),
            MonitorError::Neural(err) => write!(f, "neural: {err}"),
            MonitorError::Serve(err) => write!(f, "serve: {err}"),
            MonitorError::Submit(err) => write!(f, "submit: {err}"),
            MonitorError::Fit(err) => write!(f, "fit: {err}"),
            MonitorError::Pipeline(err) => write!(f, "pipeline: {err}"),
            MonitorError::Spectrum(err) => write!(f, "spectrum: {err}"),
            MonitorError::Invariant(msg) => write!(f, "invariant violated: {msg}"),
        }
    }
}

impl std::error::Error for MonitorError {}

impl From<ms_sim::MsSimError> for MonitorError {
    fn from(err: ms_sim::MsSimError) -> Self {
        MonitorError::Ms(err)
    }
}

impl From<nmr_sim::NmrSimError> for MonitorError {
    fn from(err: nmr_sim::NmrSimError) -> Self {
        MonitorError::Nmr(err)
    }
}

impl From<neural::NeuralError> for MonitorError {
    fn from(err: neural::NeuralError) -> Self {
        MonitorError::Neural(err)
    }
}

impl From<serve::ServeError> for MonitorError {
    fn from(err: serve::ServeError) -> Self {
        MonitorError::Serve(err)
    }
}

impl From<serve::SubmitError> for MonitorError {
    fn from(err: serve::SubmitError) -> Self {
        MonitorError::Submit(err)
    }
}

impl From<platform::overlay::FitError> for MonitorError {
    fn from(err: platform::overlay::FitError) -> Self {
        MonitorError::Fit(err)
    }
}

impl From<spectroai::PipelineError> for MonitorError {
    fn from(err: spectroai::PipelineError) -> Self {
        MonitorError::Pipeline(err)
    }
}

impl From<spectrum::SpectrumError> for MonitorError {
    fn from(err: spectrum::SpectrumError) -> Self {
        MonitorError::Spectrum(err)
    }
}
