//! Seeded, resumable spectra sources for the monitoring loop.
//!
//! A [`SpectraStream`] yields fixed-size windows of measured spectra.
//! The main implementation, [`MsStream`], wraps the MMS prototype
//! (`ms_sim::prototype`) and drives instrument drift through a
//! [`DriftSchedule`]: at scheduled measurement positions the *true*
//! instrument parameters (or the hidden prototype config) change, while
//! the measurement RNG stream keeps advancing deterministically — the
//! same seed and schedule replay bit-identically. [`NmrStream`] adapts
//! an `nmr_sim` flow-reactor acquisition to the same interface.
//!
//! Sensor dropout is injected at this boundary: when the fault plan's
//! `sensor_dropout` hook fires, the affected measurement comes back as
//! a dead (all-zero) detector read. Downstream, `spectral_fit` rejects
//! such windows with `FitError::ZeroVariance`, which is exactly the
//! "reject non-finite / degenerate data at the boundary" behaviour the
//! detector relies on.
//!
//! Resumability: [`MsStream::checkpoint`] records the seed plus the
//! mixture draw log; [`MsStream::resume`] replays that log (schedule
//! included) against a fresh prototype, landing in a bit-identical
//! state. Fault hooks never consume prototype randomness, so a resumed
//! stream continues exactly where the original would have.

use chem::Mixture;
use faultsim::FaultPlan;
use ms_sim::instrument::InstrumentModel;
use ms_sim::prototype::{MeasuredSample, MmsPrototype, PrototypeConfig};
use nmr_sim::experiment::{ExperimentConfig, FlowReactorExperiment};
use spectrum::{ContinuousSpectrum, UniformAxis};

use crate::MonitorError;

/// What a [`DriftEvent`] does to the instrument when it fires.
#[derive(Debug, Clone)]
pub enum DriftAction {
    /// Replace the *true* instrument parameters (attenuation, mass
    /// offset, peak width…) — shape drift that re-characterization can
    /// repair.
    SetInstrument(InstrumentModel),
    /// Replace the hidden prototype behaviour (humidity, gain
    /// fluctuation…) — environment drift outside the characterizer's
    /// model.
    SetConfig(PrototypeConfig),
}

/// One scheduled drift injection.
#[derive(Debug, Clone)]
pub struct DriftEvent {
    /// Stream position (measurements taken so far) at which the event
    /// fires, *before* that measurement is performed.
    pub at_measurement: u64,
    /// The mutation to apply.
    pub action: DriftAction,
}

/// An ordered schedule of drift injections.
#[derive(Debug, Clone, Default)]
pub struct DriftSchedule {
    events: Vec<DriftEvent>,
}

impl DriftSchedule {
    /// An empty schedule (a stable instrument).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an event; events are kept sorted by position.
    #[must_use]
    pub fn at(mut self, at_measurement: u64, action: DriftAction) -> Self {
        self.events.push(DriftEvent {
            at_measurement,
            action,
        });
        self.events
            .sort_by_key(|event| event.at_measurement);
        self
    }

    /// The scheduled events, in firing order.
    pub fn events(&self) -> &[DriftEvent] {
        &self.events
    }
}

/// One window of measured spectra from a stream.
#[derive(Debug, Clone)]
pub struct StreamWindow {
    /// Stream position of the window's first measurement.
    pub start: u64,
    /// The measured spectra, in acquisition order. Dropout-corrupted
    /// measurements are present but all-zero.
    pub spectra: Vec<ContinuousSpectrum>,
    /// How many of this window's measurements were sensor dropouts.
    pub dropouts: u64,
}

/// A resumable position in a [`MsStream`].
///
/// Replaying the draw log against a fresh prototype with the same seed
/// and schedule reproduces the stream state bit-identically (the fault
/// hooks consume no prototype randomness).
#[derive(Debug, Clone)]
pub struct StreamCheckpoint {
    /// The stream seed.
    pub seed: u64,
    /// Every mixture measured so far, in order.
    pub draws: Vec<Mixture>,
}

impl StreamCheckpoint {
    /// The stream position this checkpoint captures.
    pub fn position(&self) -> u64 {
        self.draws.len() as u64
    }
}

/// A source of measurement windows for the monitoring loop.
pub trait SpectraStream {
    /// The spectral axis all windows share.
    fn axis(&self) -> &UniformAxis;

    /// Measurements taken so far.
    fn position(&self) -> u64;

    /// Acquires the next window, injecting sensor dropouts from
    /// `faults`.
    ///
    /// # Errors
    ///
    /// Propagates acquisition failures from the underlying instrument.
    fn next_window(&mut self, faults: &FaultPlan) -> Result<StreamWindow, MonitorError>;
}

/// The MMS prototype as a drifting measurement stream.
#[derive(Debug, Clone)]
pub struct MsStream {
    prototype: MmsPrototype,
    mixture: Mixture,
    window: usize,
    schedule: DriftSchedule,
    next_event: usize,
    seed: u64,
    draws: Vec<Mixture>,
}

impl MsStream {
    /// A stream measuring `mixture` in windows of `window` samples,
    /// with the default prototype behaviour.
    pub fn new(seed: u64, mixture: Mixture, window: usize, schedule: DriftSchedule) -> Self {
        Self::with_config(seed, PrototypeConfig::default(), mixture, window, schedule)
    }

    /// A stream with explicit hidden prototype behaviour.
    pub fn with_config(
        seed: u64,
        config: PrototypeConfig,
        mixture: Mixture,
        window: usize,
        schedule: DriftSchedule,
    ) -> Self {
        Self {
            prototype: MmsPrototype::with_config(seed, config),
            mixture,
            window: window.max(1),
            schedule,
            next_event: 0,
            seed,
            draws: Vec::new(),
        }
    }

    /// The process mixture this stream monitors.
    pub fn mixture(&self) -> &Mixture {
        &self.mixture
    }

    /// The *true* current instrument (inspection/tests only — the loop
    /// never looks at this).
    pub fn true_instrument(&self) -> &InstrumentModel {
        self.prototype.true_instrument()
    }

    /// Drift events applied so far.
    pub fn events_fired(&self) -> usize {
        self.next_event
    }

    /// Captures a resumable checkpoint of the stream.
    pub fn checkpoint(&self) -> StreamCheckpoint {
        StreamCheckpoint {
            seed: self.seed,
            draws: self.draws.clone(),
        }
    }

    /// Reconstructs a stream from a checkpoint by replaying its draw
    /// log (with the same schedule and config), landing bit-identically
    /// where the original stream was.
    ///
    /// # Errors
    ///
    /// Propagates measurement errors from the replay.
    pub fn resume(
        checkpoint: &StreamCheckpoint,
        config: PrototypeConfig,
        mixture: Mixture,
        window: usize,
        schedule: DriftSchedule,
    ) -> Result<Self, MonitorError> {
        let mut stream = Self::with_config(checkpoint.seed, config, mixture, window, schedule);
        for draw in &checkpoint.draws {
            stream.apply_due_events();
            stream.prototype.measure(draw)?;
            stream.draws.push(draw.clone());
        }
        Ok(stream)
    }

    /// Measures every mixture in `mixtures` `per_mixture` times — a
    /// calibration campaign drawn *through the stream* (drift events
    /// keep firing, the RNG keeps advancing). Dropout-corrupted
    /// measurements are discarded from the returned samples and counted
    /// instead: the characterizer must only ever see real detector
    /// reads.
    ///
    /// # Errors
    ///
    /// Propagates measurement errors from the prototype.
    pub fn calibration_series(
        &mut self,
        mixtures: &[Mixture],
        per_mixture: usize,
        faults: &FaultPlan,
    ) -> Result<(Vec<MeasuredSample>, u64), MonitorError> {
        let mut samples = Vec::with_capacity(mixtures.len() * per_mixture);
        let mut dropouts = 0;
        for mixture in mixtures {
            for _ in 0..per_mixture {
                let (sample, dropped) = self.measure_one(&mixture.clone(), faults)?;
                if dropped {
                    dropouts += 1;
                } else {
                    samples.push(sample);
                }
            }
        }
        Ok((samples, dropouts))
    }

    /// Applies every scheduled event due at the current position.
    fn apply_due_events(&mut self) {
        while let Some(event) = self.schedule.events.get(self.next_event) {
            if event.at_measurement > self.position() {
                break;
            }
            match &event.action {
                DriftAction::SetInstrument(instrument) => {
                    self.prototype.set_instrument(instrument.clone());
                }
                DriftAction::SetConfig(config) => self.prototype.set_config(*config),
            }
            self.next_event += 1;
        }
    }

    /// One measurement with drift + dropout injection. Returns the
    /// sample and whether it was a dropout (all-zero read).
    fn measure_one(
        &mut self,
        mixture: &Mixture,
        faults: &FaultPlan,
    ) -> Result<(MeasuredSample, bool), MonitorError> {
        self.apply_due_events();
        let mut sample = self.prototype.measure(mixture)?;
        self.draws.push(mixture.clone());
        let dropped = faults.sensor_dropout();
        if dropped {
            sample.spectrum.intensities_mut().fill(0.0);
            obs::counter_add("monitor.sensor_dropouts", 1);
        }
        Ok((sample, dropped))
    }
}

impl SpectraStream for MsStream {
    fn axis(&self) -> &UniformAxis {
        self.prototype.axis()
    }

    fn position(&self) -> u64 {
        self.draws.len() as u64
    }

    fn next_window(&mut self, faults: &FaultPlan) -> Result<StreamWindow, MonitorError> {
        let start = self.position();
        let mut spectra = Vec::with_capacity(self.window);
        let mut dropouts = 0;
        let mixture = self.mixture.clone();
        for _ in 0..self.window {
            let (sample, dropped) = self.measure_one(&mixture, faults)?;
            if dropped {
                dropouts += 1;
            }
            spectra.push(sample.spectrum);
        }
        Ok(StreamWindow {
            start,
            spectra,
            dropouts,
        })
    }
}

/// An NMR flow-reactor acquisition replayed as a stream (cyclic over
/// the acquired spectra, so the loop can run longer than one
/// acquisition).
#[derive(Debug, Clone)]
pub struct NmrStream {
    spectra: Vec<ContinuousSpectrum>,
    axis: UniformAxis,
    window: usize,
    position: u64,
}

impl NmrStream {
    /// Acquires a seeded flow-reactor run and wraps it as a stream.
    ///
    /// # Errors
    ///
    /// Propagates acquisition failures, and reports an empty
    /// acquisition as [`MonitorError::Invariant`].
    pub fn new(seed: u64, config: ExperimentConfig, window: usize) -> Result<Self, MonitorError> {
        let run = FlowReactorExperiment::new(seed, config).acquire()?;
        if run.spectra.is_empty() {
            return Err(MonitorError::Invariant(
                "NMR acquisition produced no spectra".into(),
            ));
        }
        Ok(Self {
            spectra: run.spectra,
            axis: run.axis,
            window: window.max(1),
            position: 0,
        })
    }

    /// Fast-forwards to `position` (for resuming a prior stream).
    #[must_use]
    pub fn starting_at(mut self, position: u64) -> Self {
        self.position = position;
        self
    }
}

impl SpectraStream for NmrStream {
    fn axis(&self) -> &UniformAxis {
        &self.axis
    }

    fn position(&self) -> u64 {
        self.position
    }

    fn next_window(&mut self, faults: &FaultPlan) -> Result<StreamWindow, MonitorError> {
        let start = self.position;
        let mut spectra = Vec::with_capacity(self.window);
        let mut dropouts = 0;
        for _ in 0..self.window {
            let index = (self.position as usize) % self.spectra.len();
            let mut spectrum = match self.spectra.get(index) {
                Some(spectrum) => spectrum.clone(),
                None => {
                    return Err(MonitorError::Invariant(
                        "NMR stream index out of range".into(),
                    ))
                }
            };
            if faults.sensor_dropout() {
                spectrum.intensities_mut().fill(0.0);
                dropouts += 1;
                obs::counter_add("monitor.sensor_dropouts", 1);
            }
            self.position += 1;
            spectra.push(spectrum);
        }
        Ok(StreamWindow {
            start,
            spectra,
            dropouts,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ms_sim::prototype::ideal_config;

    fn process_mixture() -> Mixture {
        Mixture::from_fractions(vec![
            ("N2".into(), 0.55),
            ("O2".into(), 0.18),
            ("Ar".into(), 0.02),
            ("CO2".into(), 0.25),
        ])
        .unwrap()
    }

    fn drifted(base: &InstrumentModel) -> InstrumentModel {
        let mut instrument = base.clone();
        instrument.attenuation.rate = -1.0 / 60.0;
        instrument.mass_offset += 0.3;
        instrument
    }

    #[test]
    fn stream_is_seed_deterministic() {
        let plan = FaultPlan::new();
        let mut a = MsStream::new(5, process_mixture(), 3, DriftSchedule::new());
        let mut b = MsStream::new(5, process_mixture(), 3, DriftSchedule::new());
        let wa = a.next_window(&plan).unwrap();
        let wb = b.next_window(&plan).unwrap();
        assert_eq!(wa.spectra, wb.spectra);
        assert_eq!(wa.start, 0);
        assert_eq!(a.position(), 3);
    }

    #[test]
    fn drift_schedule_fires_at_position() {
        let plan = FaultPlan::new();
        let base = MsStream::new(1, process_mixture(), 2, DriftSchedule::new())
            .true_instrument()
            .clone();
        let schedule = DriftSchedule::new().at(4, DriftAction::SetInstrument(drifted(&base)));
        let mut stable = MsStream::new(9, process_mixture(), 2, DriftSchedule::new());
        let mut drifting = MsStream::new(9, process_mixture(), 2, schedule);
        // Windows before the event are identical.
        let s1 = stable.next_window(&plan).unwrap();
        let d1 = drifting.next_window(&plan).unwrap();
        let s2 = stable.next_window(&plan).unwrap();
        let d2 = drifting.next_window(&plan).unwrap();
        assert_eq!(s1.spectra, d1.spectra);
        assert_eq!(s2.spectra, d2.spectra);
        assert_eq!(drifting.events_fired(), 0);
        // The window starting at position 4 sees the mutated instrument.
        let s3 = stable.next_window(&plan).unwrap();
        let d3 = drifting.next_window(&plan).unwrap();
        assert_ne!(s3.spectra, d3.spectra);
        assert_eq!(drifting.events_fired(), 1);
    }

    #[test]
    fn sensor_dropout_zeroes_the_read() {
        let plan = FaultPlan::new().with_sensor_dropout(1);
        let mut stream = MsStream::new(3, process_mixture(), 3, DriftSchedule::new());
        let window = stream.next_window(&plan).unwrap();
        assert_eq!(window.dropouts, 1);
        assert!(window.spectra[1].intensities().iter().all(|&v| v == 0.0));
        assert!(window.spectra[0].intensities().iter().any(|&v| v > 0.0));
        assert!(window.spectra[2].intensities().iter().any(|&v| v > 0.0));
    }

    #[test]
    fn checkpoint_resume_is_bit_identical() {
        let plan = FaultPlan::new();
        let base = MsStream::new(1, process_mixture(), 2, DriftSchedule::new())
            .true_instrument()
            .clone();
        let schedule = DriftSchedule::new().at(6, DriftAction::SetInstrument(drifted(&base)));
        let mut original = MsStream::with_config(
            17,
            ideal_config(),
            process_mixture(),
            2,
            schedule.clone(),
        );
        original.next_window(&plan).unwrap();
        let mixtures = ms_sim::campaign::calibration_mixtures();
        original
            .calibration_series(&mixtures[..3], 1, &plan)
            .unwrap();
        let checkpoint = original.checkpoint();
        assert_eq!(checkpoint.position(), 5);

        let mut resumed = MsStream::resume(
            &checkpoint,
            ideal_config(),
            process_mixture(),
            2,
            schedule,
        )
        .unwrap();
        assert_eq!(resumed.position(), original.position());
        // Both continue identically — including through the drift event.
        for _ in 0..4 {
            let a = original.next_window(&plan).unwrap();
            let b = resumed.next_window(&plan).unwrap();
            assert_eq!(a.spectra, b.spectra);
        }
        assert_eq!(original.events_fired(), resumed.events_fired());
        assert_eq!(original.events_fired(), 1);
    }

    #[test]
    fn calibration_series_discards_dropouts() {
        let plan = FaultPlan::new().with_sensor_dropout(2).with_sensor_dropout(5);
        let mut stream = MsStream::new(11, process_mixture(), 2, DriftSchedule::new());
        let mixtures = ms_sim::campaign::calibration_mixtures();
        let (samples, dropouts) = stream.calibration_series(&mixtures[..4], 2, &plan).unwrap();
        assert_eq!(dropouts, 2);
        assert_eq!(samples.len(), 6);
        assert!(samples
            .iter()
            .all(|s| s.spectrum.intensities().iter().any(|&v| v > 0.0)));
    }

    #[test]
    fn nmr_stream_yields_windows_and_cycles() {
        let plan = FaultPlan::new();
        let config = ExperimentConfig {
            spectra_per_plateau: 2,
            ..ExperimentConfig::default()
        };
        let mut stream = NmrStream::new(4, config, 5).unwrap();
        let w1 = stream.next_window(&plan).unwrap();
        assert_eq!(w1.spectra.len(), 5);
        assert_eq!(stream.position(), 5);
        // Exhaust well past one acquisition: cycling keeps it flowing.
        for _ in 0..10 {
            stream.next_window(&plan).unwrap();
        }
        assert_eq!(stream.position(), 55);
    }
}
