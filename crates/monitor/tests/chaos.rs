//! The ISSUE acceptance scenario: a deterministic chaos run of the full
//! closed loop — drift schedule + sensor dropout + injected
//! characterization failure + mid-swap worker panics — completing two
//! full drift → recharacterize → swap episodes with zero dropped
//! requests, every episode reaching exactly one terminal, and the
//! post-swap model fit recovering below the drift threshold.

use std::sync::Arc;

use chem::Mixture;
use faultsim::FaultPlan;
use monitor::{
    bootstrap, DetectorConfig, DriftAction, DriftDetector, DriftSchedule, EpisodeOutcome,
    MonitorConfig, MonitorLoop, MonitorReport, MsStream, RecharacterizeConfig, SpectraStream,
};
use ms_sim::instrument::InstrumentModel;
use serve::{ModelRegistry, Router, RouterConfig, SupervisorConfig};
use std::time::Duration;

/// Supervision tuned to the test's tick rate: monitor ticks run in a
/// couple of milliseconds, so shard healing (detect the dead worker,
/// restart, close the circuit) must complete within a few of them.
fn fast_supervision() -> RouterConfig {
    RouterConfig {
        supervisor: SupervisorConfig {
            tick: Duration::from_millis(1),
            restart_backoff_base: Duration::from_millis(1),
            max_restart_backoff: Duration::from_millis(20),
            circuit_cooldown: Duration::from_millis(5),
            ..SupervisorConfig::default()
        },
        ..RouterConfig::default()
    }
}

fn process_mixture() -> Mixture {
    Mixture::from_fractions(vec![
        ("N2".into(), 0.55),
        ("O2".into(), 0.18),
        ("Ar".into(), 0.02),
        ("CO2".into(), 0.25),
    ])
    .unwrap()
}

fn drift_one(base: &InstrumentModel) -> InstrumentModel {
    let mut instrument = base.clone();
    instrument.attenuation.rate = -1.0 / 60.0;
    instrument.mass_offset += 0.3;
    instrument
}

fn drift_two(base: &InstrumentModel) -> InstrumentModel {
    let mut instrument = drift_one(base);
    instrument.peak_width.base = 0.70;
    instrument.mass_offset += 0.25;
    instrument.attenuation.rate = -1.0 / 45.0;
    instrument
}

/// Runs the full chaos scenario once and returns the report.
fn run_chaos_scenario(verbose: bool) -> MonitorReport {
    let base = MsStream::new(7, process_mixture(), 4, DriftSchedule::new())
        .true_instrument()
        .clone();
    // Bootstrap consumes 28 calibration draws; the detector then learns
    // over 6 windows of 4. Drift one lands at position 60 (tick 9's
    // window), drift two well after episode one has closed.
    let schedule = DriftSchedule::new()
        .at(60, DriftAction::SetInstrument(drift_one(&base)))
        .at(260, DriftAction::SetInstrument(drift_two(&base)));
    let mut stream = MsStream::new(7, process_mixture(), 4, schedule);

    // Chaos: dropouts in the learning phase (including one whole
    // window), dropouts in episode one's calibration campaign, the
    // first re-characterization attempt fails, and the next two swap
    // canaries are killed by worker panics.
    let plan = Arc::new(
        FaultPlan::new()
            .with_sensor_dropout(30)
            .with_sensor_dropout(40)
            .with_sensor_dropout(41)
            .with_sensor_dropout(42)
            .with_sensor_dropout(43)
            .with_sensor_dropout(115)
            .with_sensor_dropout(120)
            .with_sensor_dropout(125)
            .with_characterize_error(0),
    );

    let store = datastore::Store::in_memory();
    let registry = Arc::new(ModelRegistry::new());
    let config = RecharacterizeConfig::quick("mms").unwrap();
    let boot = bootstrap(&mut stream, &store, &registry, &config, &plan).unwrap();
    assert_eq!(boot.version, 1);

    let router = Router::start_with_faults(
        Arc::clone(&registry),
        fast_supervision(),
        Some(Arc::clone(&plan)),
    )
    .unwrap();

    let detector = DriftDetector::new(DetectorConfig::default()).unwrap();
    let monitor_config = MonitorConfig {
        chaos_mid_swap_panics: 2,
        ..MonitorConfig::default()
    };
    let mut monitor = MonitorLoop::new(
        stream,
        detector,
        &router,
        &store,
        &plan,
        monitor_config,
        config,
        boot.believed,
        boot.version,
    )
    .unwrap();

    let mut report = None;
    for _ in 0..80 {
        let tick = monitor.tick().unwrap();
        if verbose {
            let health: Vec<String> = router
                .report()
                .shards
                .iter()
                .map(|s| s.health.clone())
                .collect();
            eprintln!(
                "tick {:>2} pos {:>3} state {:<16} verdict {:?} fit {:?} served {} drop {} health {:?}",
                tick.tick,
                monitor.stream().position(),
                tick.state.to_string(),
                tick.verdict,
                tick.fit_distance.map(|f| (f * 1000.0).round() / 1000.0),
                tick.served,
                tick.dropouts,
                health,
            );
        }
        if let Some(closed) = &tick.closed_episode {
            if verbose {
                eprintln!("  closed episode {closed:?}");
            }
        }
        report = Some(tick);
    }
    let _ = report;
    monitor.into_report().unwrap()
}

#[test]
fn closed_loop_survives_chaos_and_recovers() {
    let report = run_chaos_scenario(std::env::var("CHAOS_VERBOSE").is_ok());
    report.check_conservation().unwrap();

    // Zero-drop invariant: every submitted request completed with a
    // prediction, through dropouts, worker panics and two swaps.
    assert_eq!(report.dropped, 0, "dropped requests: {report:?}");
    assert_eq!(report.ticks, 80);
    assert_eq!(report.served, 80 * 4);

    // Two full drift → recharacterize → swap episodes, each with
    // exactly one terminal.
    let swapped: Vec<_> = report
        .episodes
        .iter()
        .filter(|e| e.outcome == EpisodeOutcome::Swapped)
        .collect();
    assert!(
        swapped.len() >= 2,
        "expected ≥2 swapped episodes, got {:?}",
        report.episodes
    );
    for episode in &report.episodes {
        assert!(episode.confirmed_at_tick.is_some() || episode.outcome == EpisodeOutcome::Suppressed);
        assert!(episode.closed_at_tick >= episode.opened_at_tick);
    }

    // Version lineage: bootstrap v1, then one recharacterized model per
    // swapped episode.
    assert_eq!(swapped[0].new_version, Some(2));
    assert_eq!(swapped[1].new_version, Some(3));
    assert_eq!(report.serving_version, Some(3));

    // The injected characterization failure consumed a retry on episode
    // one; the armed canary panics consumed swap retries.
    assert_eq!(swapped[0].characterize_attempts, 2);
    assert!(swapped[0].swap_attempts >= 2, "{:?}", swapped[0]);
    assert_eq!(swapped[1].characterize_attempts, 1);

    // All eight scheduled dropouts were absorbed: seven landed in
    // monitoring windows (the report's count), one in episode one's
    // calibration campaign (discarded before the estimator saw it).
    assert_eq!(report.sensor_dropouts, 7);
    assert_eq!(swapped[0].calibration_dropouts, 1);
    assert_eq!(swapped[1].calibration_dropouts, 0);
    // Tick 4's window was entirely dropped and rejected at the fit
    // boundary rather than poisoning the detector.
    assert_eq!(report.windows_rejected, 1, "{report:?}");

    // Post-swap recovery: both episodes opened far above the drift
    // threshold and the loop ends with the fit back at baseline scale.
    for episode in &swapped {
        assert!(
            episode.fit_at_open > 0.3,
            "episode opened at fit {}",
            episode.fit_at_open
        );
    }
    let final_fit = report.final_fit.expect("final window scored");
    assert!(final_fit < 0.3, "final fit {final_fit} did not recover");
    assert_eq!(report.open_episode, false);
}

#[test]
fn chaos_scenario_is_deterministic() {
    let a = run_chaos_scenario(false);
    let b = run_chaos_scenario(false);
    assert_eq!(a.episodes.len(), b.episodes.len());
    for (ea, eb) in a.episodes.iter().zip(&b.episodes) {
        assert_eq!(ea.outcome, eb.outcome);
        assert_eq!(ea.new_version, eb.new_version);
        assert_eq!(ea.characterize_attempts, eb.characterize_attempts);
        assert_eq!(ea.swap_attempts, eb.swap_attempts);
        assert_eq!(ea.calibration_dropouts, eb.calibration_dropouts);
    }
    // Detection timing before any swap is purely data-driven, so the
    // first episode's open/confirm ticks replay exactly. (Later ticks
    // can shift by how many ticks the supervisor needed to heal the
    // panicked shard — wall-clock, not data.)
    assert_eq!(a.episodes[0].opened_at_tick, b.episodes[0].opened_at_tick);
    assert_eq!(
        a.episodes[0].confirmed_at_tick,
        b.episodes[0].confirmed_at_tick
    );
    assert!((a.episodes[0].fit_at_open - b.episodes[0].fit_at_open).abs() < 1e-12);
    assert_eq!(a.served, b.served);
    assert_eq!(a.dropped, b.dropped);
    assert_eq!(a.sensor_dropouts, b.sensor_dropouts);
    assert_eq!(a.serving_version, b.serving_version);
}

#[test]
fn quiet_stream_stays_stable() {
    let stream = MsStream::new(21, process_mixture(), 4, DriftSchedule::new());
    let mut boot_stream = stream.clone();
    let plan = Arc::new(FaultPlan::new());
    let store = datastore::Store::in_memory();
    let registry = Arc::new(ModelRegistry::new());
    let config = RecharacterizeConfig::quick("mms").unwrap();
    let boot = bootstrap(&mut boot_stream, &store, &registry, &config, &plan).unwrap();
    let router = Router::start_with_faults(
        Arc::clone(&registry),
        fast_supervision(),
        Some(Arc::clone(&plan)),
    )
    .unwrap();
    let detector = DriftDetector::new(DetectorConfig::default()).unwrap();
    let monitor = MonitorLoop::new(
        boot_stream,
        detector,
        &router,
        &store,
        &plan,
        MonitorConfig::default(),
        config,
        boot.believed,
        boot.version,
    )
    .unwrap();
    let report = monitor.run(12).unwrap();
    report.check_conservation().unwrap();
    assert!(report.episodes.is_empty(), "{:?}", report.episodes);
    assert_eq!(report.dropped, 0);
    assert_eq!(report.served, 48);
    assert_eq!(report.serving_version, Some(1));
    assert_eq!(report.open_episode, false);
}
