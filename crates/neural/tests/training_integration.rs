//! Training-behaviour integration tests: end-to-end learning on small
//! synthetic tasks, divergence detection, dropout effects.

use neural::optim::OptimizerSpec;
use neural::spec::{LayerSpec, NetworkSpec};
use neural::train::{Dataset, TrainConfig, Trainer};
use neural::{Activation, Loss, NeuralError};

/// A 1-D "spectrum" task: two triangular peaks whose amplitudes are the
/// two regression targets — a miniature of the real MS problem.
fn peak_dataset(n: usize) -> Dataset {
    let len = 32;
    let mut inputs = Vec::with_capacity(n);
    let mut targets = Vec::with_capacity(n);
    for i in 0..n {
        let a = ((i * 7) % 10) as f32 / 10.0;
        let b = ((i * 3) % 10) as f32 / 10.0;
        let mut x = vec![0.0f32; len];
        for (k, slot) in x.iter_mut().enumerate() {
            let peak1 = (1.0 - (k as f32 - 8.0).abs() / 4.0).max(0.0);
            let peak2 = (1.0 - (k as f32 - 22.0).abs() / 4.0).max(0.0);
            *slot = a * peak1 + b * peak2;
        }
        inputs.push(x);
        targets.push(vec![a, b]);
    }
    Dataset::new(inputs, targets).expect("valid dataset")
}

#[test]
fn conv_network_learns_peak_amplitudes() {
    let data = peak_dataset(300);
    let (train, val) = data.split(0.8).unwrap();
    let mut net = NetworkSpec::new(32)
        .layer(LayerSpec::Reshape { channels: 1 })
        .layer(LayerSpec::Conv1d {
            filters: 4,
            kernel: 5,
            stride: 2,
            activation: Activation::Relu,
        })
        .layer(LayerSpec::Flatten)
        .layer(LayerSpec::Dense {
            units: 2,
            activation: Activation::Linear,
        })
        .build(3)
        .unwrap();
    let config = TrainConfig {
        epochs: 60,
        batch_size: 16,
        optimizer: OptimizerSpec::Adam { lr: 3e-3 },
        loss: Loss::Mse,
        ..TrainConfig::default()
    };
    let history = Trainer::new(config).fit(&mut net, &train, Some(&val)).unwrap();
    assert!(
        history.best_val_loss().unwrap() < 2e-3,
        "val loss {:?}",
        history.best_val_loss()
    );
    // Check an actual prediction.
    let probe = &train.inputs()[4];
    let target = &train.targets()[4];
    let out = net.predict(probe);
    assert!((out[0] - target[0]).abs() < 0.1, "{out:?} vs {target:?}");
}

#[test]
fn lstm_learns_sequence_mean() {
    // Predict the mean of a 4-step scalar sequence.
    let mut inputs = Vec::new();
    let mut targets = Vec::new();
    for i in 0..240 {
        let seq: Vec<f32> = (0..4)
            .map(|t| (((i * 13 + t * 7) % 20) as f32 / 20.0) - 0.5)
            .collect();
        let mean = seq.iter().sum::<f32>() / 4.0;
        inputs.push(seq);
        targets.push(vec![mean]);
    }
    let data = Dataset::new(inputs, targets).unwrap();
    let (train, val) = data.split(0.8).unwrap();
    let mut net = NetworkSpec::new(4)
        .layer(LayerSpec::Lstm {
            units: 8,
            timesteps: 4,
        })
        .layer(LayerSpec::Dense {
            units: 1,
            activation: Activation::Linear,
        })
        .build(5)
        .unwrap();
    let config = TrainConfig {
        epochs: 120,
        batch_size: 16,
        optimizer: OptimizerSpec::Adam { lr: 5e-3 },
        loss: Loss::Mse,
        ..TrainConfig::default()
    };
    let history = Trainer::new(config).fit(&mut net, &train, Some(&val)).unwrap();
    assert!(
        history.best_val_loss().unwrap() < 5e-3,
        "val loss {:?}",
        history.best_val_loss()
    );
}

#[test]
fn absurd_learning_rate_reports_divergence() {
    let data = peak_dataset(64);
    let mut net = NetworkSpec::new(32)
        .layer(LayerSpec::Dense {
            units: 16,
            activation: Activation::Relu,
        })
        .layer(LayerSpec::Dense {
            units: 2,
            activation: Activation::Linear,
        })
        .build(1)
        .unwrap();
    let config = TrainConfig {
        epochs: 50,
        batch_size: 8,
        optimizer: OptimizerSpec::Sgd {
            lr: 1e9,
            momentum: 0.0,
        },
        loss: Loss::Mse,
        ..TrainConfig::default()
    };
    let result = Trainer::new(config).fit(&mut net, &data, None);
    assert!(
        matches!(result, Err(NeuralError::Diverged { .. })),
        "{result:?}"
    );
}

#[test]
fn dropout_changes_training_but_not_inference() {
    let mut net = NetworkSpec::new(16)
        .layer(LayerSpec::Dense {
            units: 16,
            activation: Activation::Relu,
        })
        .layer(LayerSpec::Dropout { rate: 0.5 })
        .layer(LayerSpec::Dense {
            units: 2,
            activation: Activation::Linear,
        })
        .build(2)
        .unwrap();
    let x = vec![0.3f32; 16];
    // Inference is deterministic.
    assert_eq!(net.predict(&x), net.predict(&x));
    // Training passes differ because of the random mask.
    let a = net.forward(&x, true);
    let b = net.forward(&x, true);
    assert_ne!(a, b);
}

#[test]
fn restore_best_beats_final_epoch_when_overfitting() {
    // Tiny training set + many epochs: validation loss worsens late, and
    // the restored network must match the best epoch, not the last.
    let data = peak_dataset(40);
    let (train, val) = data.split(0.5).unwrap();
    let mut net = NetworkSpec::new(32)
        .layer(LayerSpec::Dense {
            units: 48,
            activation: Activation::Tanh,
        })
        .layer(LayerSpec::Dense {
            units: 2,
            activation: Activation::Linear,
        })
        .build(7)
        .unwrap();
    let config = TrainConfig {
        epochs: 150,
        batch_size: 4,
        optimizer: OptimizerSpec::Adam { lr: 1e-2 },
        loss: Loss::Mse,
        restore_best: true,
        ..TrainConfig::default()
    };
    let history = Trainer::new(config).fit(&mut net, &train, Some(&val)).unwrap();
    let best = history.best_val_loss().unwrap();
    let restored = val.evaluate(&mut net, Loss::Mse);
    assert!((restored - best).abs() < 1e-6, "restored {restored} vs best {best}");
    let last = *history.val_loss.last().unwrap();
    assert!(best <= last + 1e-9);
}
