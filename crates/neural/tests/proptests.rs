//! Property-based tests for the neural framework.

use neural::spec::{LayerSpec, NetworkSpec};
use neural::{Activation, Loss};
use proptest::prelude::*;

fn finite_vec(len: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-5.0f32..5.0, len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn softmax_output_always_sums_to_one(input in finite_vec(12), seed in 0u64..1000) {
        let mut net = NetworkSpec::new(12)
            .layer(LayerSpec::Dense { units: 5, activation: Activation::Softmax })
            .build(seed)
            .expect("valid spec");
        let out = net.predict(&input);
        let sum: f32 = out.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-4, "sum {sum}");
        prop_assert!(out.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn relu_outputs_are_non_negative(input in finite_vec(8), seed in 0u64..1000) {
        let mut net = NetworkSpec::new(8)
            .layer(LayerSpec::Dense { units: 6, activation: Activation::Relu })
            .build(seed)
            .expect("valid spec");
        let out = net.predict(&input);
        prop_assert!(out.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn prediction_is_deterministic(input in finite_vec(10), seed in 0u64..1000) {
        let mut net = NetworkSpec::new(10)
            .layer(LayerSpec::Dense { units: 4, activation: Activation::Tanh })
            .layer(LayerSpec::Dense { units: 2, activation: Activation::Linear })
            .build(seed)
            .expect("valid spec");
        let a = net.predict(&input);
        let b = net.predict(&input);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn conv_output_shape_formula_holds(
        len in 10usize..64, kernel in 1usize..10, stride in 1usize..5, seed in 0u64..100
    ) {
        prop_assume!(kernel <= len);
        let net = NetworkSpec::new(len)
            .layer(LayerSpec::Reshape { channels: 1 })
            .layer(LayerSpec::Conv1d {
                filters: 3, kernel, stride, activation: Activation::Linear,
            })
            .build(seed)
            .expect("valid spec");
        let expected = (len - kernel) / stride + 1;
        prop_assert_eq!(net.output_len(), 3 * expected);
    }

    #[test]
    fn losses_are_non_negative_and_zero_at_target(target in finite_vec(6), pred in finite_vec(6)) {
        for loss in [Loss::Mae, Loss::Mse] {
            prop_assert!(loss.value(&pred, &target) >= 0.0);
            prop_assert_eq!(loss.value(&target, &target), 0.0);
        }
    }

    #[test]
    fn gradient_step_reduces_loss(target in finite_vec(4), pred in finite_vec(4)) {
        // Skip the degenerate already-perfect case.
        let differs = pred.iter().zip(&target).any(|(p, t)| (p - t).abs() > 1e-3);
        prop_assume!(differs);
        for loss in [Loss::Mae, Loss::Mse] {
            let g = loss.gradient(&pred, &target);
            let stepped: Vec<f32> = pred.iter().zip(&g).map(|(p, gi)| p - 1e-3 * gi).collect();
            prop_assert!(loss.value(&stepped, &target) <= loss.value(&pred, &target) + 1e-9);
        }
    }

    #[test]
    fn export_import_roundtrip_any_seed(seed in 0u64..5000, input in finite_vec(6)) {
        let spec = NetworkSpec::new(6)
            .layer(LayerSpec::Dense { units: 3, activation: Activation::Selu })
            .layer(LayerSpec::Dense { units: 2, activation: Activation::Softmax });
        let mut net = spec.build(seed).expect("valid spec");
        let exported = neural::export::ExportedNetwork::from_network(spec, &net, "prop");
        let mut restored = exported.instantiate().expect("instantiable");
        prop_assert_eq!(net.predict(&input), restored.predict(&input));
    }

    #[test]
    fn network_param_count_matches_summary(seed in 0u64..100) {
        let net = NetworkSpec::new(30)
            .layer(LayerSpec::Reshape { channels: 1 })
            .layer(LayerSpec::Conv1d { filters: 4, kernel: 5, stride: 2, activation: Activation::Relu })
            .layer(LayerSpec::Flatten)
            .layer(LayerSpec::Dense { units: 3, activation: Activation::Linear })
            .build(seed)
            .expect("valid spec");
        let from_summary: usize = net.summary().iter().map(|r| r.parameters).sum();
        prop_assert_eq!(net.param_count(), from_summary);
    }
}
