//! Interrupted-and-resumed training must be bit-identical to an
//! uninterrupted run of the same seed (ISSUE: checkpoint determinism).
//!
//! The network is dropout-free (like the paper's Table 1 MS net), so the
//! only RNG in play is the stateless per-epoch shuffle — which the guard
//! derives from `seed + epoch`, independent of interruption.

use neural::guard::{Checkpoint, GuardConfig, GuardedTrainer};
use neural::optim::OptimizerSpec;
use neural::spec::{LayerSpec, NetworkSpec};
use neural::train::{Dataset, TrainConfig};
use neural::{Activation, Loss, Network};

fn dataset() -> (Dataset, Dataset) {
    let inputs: Vec<Vec<f32>> = (0..120)
        .map(|i| {
            let a = (i % 12) as f32 / 12.0;
            let b = ((i / 12) % 10) as f32 / 10.0;
            let c = ((i * 7) % 13) as f32 / 13.0;
            vec![a, b, c]
        })
        .collect();
    let targets: Vec<Vec<f32>> = inputs
        .iter()
        .map(|v| vec![(v[0] - v[1]).tanh(), 0.3 * v[2] + 0.1])
        .collect();
    Dataset::new(inputs, targets)
        .unwrap()
        .split(0.8)
        .unwrap()
}

fn network() -> Network {
    NetworkSpec::new(3)
        .layer(LayerSpec::Dense {
            units: 8,
            activation: Activation::Selu,
        })
        .layer(LayerSpec::Dense {
            units: 2,
            activation: Activation::Linear,
        })
        .build(99)
        .unwrap()
}

fn trainer(epochs: usize) -> GuardedTrainer {
    let config = TrainConfig {
        epochs,
        batch_size: 8,
        loss: Loss::Mae,
        optimizer: OptimizerSpec::Adam { lr: 0.005 },
        seed: 42,
        ..TrainConfig::default()
    };
    let guard = GuardConfig {
        checkpoint_every: 2,
        ..GuardConfig::default()
    };
    GuardedTrainer::new(config, guard).unwrap()
}

fn weight_bits(net: &Network) -> Vec<u32> {
    net.export_weights()
        .iter()
        .flatten()
        .flatten()
        .map(|w| w.to_bits())
        .collect()
}

#[test]
fn resume_after_interruption_is_bit_identical() {
    let (train, val) = dataset();

    // Uninterrupted reference run: 10 epochs straight through.
    let mut reference = network();
    let full = trainer(10).fit(&mut reference, &train, Some(&val)).unwrap();

    // Interrupted run: stop after 5 epochs, persist the checkpoint to
    // disk, reload it, and resume to the same total.
    let mut interrupted = network();
    let partial = trainer(10)
        .fit_interrupted(&mut interrupted, &train, Some(&val), 5)
        .unwrap();
    assert_eq!(partial.checkpoint.epochs_done, 5);

    let dir = std::env::temp_dir().join(format!("neural-determinism-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("interrupted.json");
    partial.checkpoint.save(&path).unwrap();
    let restored = Checkpoint::load(&path).unwrap();
    assert_eq!(restored, partial.checkpoint, "JSON roundtrip must be exact");
    std::fs::remove_dir_all(&dir).unwrap();

    let resumed = trainer(10)
        .resume(&mut interrupted, &train, Some(&val), &restored)
        .unwrap();

    // Bit-identical weights and identical loss histories.
    assert_eq!(weight_bits(&reference), weight_bits(&interrupted));
    assert_eq!(full.history.train_loss, resumed.history.train_loss);
    assert_eq!(full.history.val_loss, resumed.history.val_loss);
    assert_eq!(full.history.best_epoch, resumed.history.best_epoch);
    assert_eq!(full.checkpoint, resumed.checkpoint);
}

#[test]
fn interruption_off_checkpoint_boundary_still_resumes_exactly() {
    let (train, val) = dataset();

    let mut reference = network();
    let full = trainer(9).fit(&mut reference, &train, Some(&val)).unwrap();

    // 7 is not a multiple of checkpoint_every=2; the final snapshot taken
    // on interruption must still capture epoch 7 exactly.
    let mut interrupted = network();
    let partial = trainer(9)
        .fit_interrupted(&mut interrupted, &train, Some(&val), 7)
        .unwrap();
    assert_eq!(partial.checkpoint.epochs_done, 7);
    let resumed = trainer(9)
        .resume(&mut interrupted, &train, Some(&val), &partial.checkpoint)
        .unwrap();

    assert_eq!(weight_bits(&reference), weight_bits(&interrupted));
    assert_eq!(full.history.train_loss, resumed.history.train_loss);
}
