//! `checked-math` feature tests: the finite-value sanitizer must fire
//! (in debug builds) as soon as a layer emits NaN, and must stay silent
//! on healthy networks.
//!
//! Run with `cargo test -p neural --features checked-math`.

#![cfg(feature = "checked-math")]

use std::panic::{catch_unwind, AssertUnwindSafe};

use neural::plan::FrozenPlan;
use neural::spec::{LayerSpec, NetworkSpec};
use neural::Activation;

fn spec() -> NetworkSpec {
    NetworkSpec::new(4)
        .layer(LayerSpec::Dense {
            units: 3,
            activation: Activation::Relu,
        })
        .layer(LayerSpec::Dense {
            units: 2,
            activation: Activation::Linear,
        })
}

#[test]
fn healthy_network_passes_the_sanitizer() {
    let spec = spec();
    let mut net = spec.build(7).unwrap();
    let out = net.predict(&[0.1, 0.2, 0.3, 0.4]);
    assert_eq!(out.len(), 2);
    assert!(out.iter().all(|v| v.is_finite()));

    let plan = FrozenPlan::from_spec_weights("ok", &spec, &net.export_weights()).unwrap();
    assert!(plan.predict(&[0.1, 0.2, 0.3, 0.4]).unwrap()[0].is_finite());
}

#[test]
fn nan_input_propagates_without_panicking() {
    // NaN-in → NaN-out is expected IEEE propagation (the training guard
    // relies on it for divergence rollback); only *introducing* NaN from
    // finite data is a bug.
    let spec = spec();
    let mut net = spec.build(7).unwrap();
    let out = net.predict(&[f32::NAN, 1.0, 1.0, 1.0]);
    assert_eq!(out.len(), 2);
}

#[test]
fn nan_weights_trip_the_sanitizer_in_predict() {
    let spec = spec();
    let net = spec.build(7).unwrap();
    let mut weights = net.export_weights();
    // Poison the first dense kernel: any input now produces NaN at op 0.
    weights[0][0][0] = f32::NAN;
    let plan = FrozenPlan::from_spec_weights("bad", &spec, &weights).unwrap();

    let panic = catch_unwind(AssertUnwindSafe(|| {
        let _ = plan.predict(&[1.0, 1.0, 1.0, 1.0]);
    }))
    .expect_err("checked-math should panic on NaN output");
    let msg = panic
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_default();
    assert!(
        msg.contains("checked-math") && msg.contains("FrozenPlan::predict"),
        "unexpected panic message: {msg}"
    );
}

#[test]
fn nan_weights_trip_the_sanitizer_in_predict_batch() {
    let spec = spec();
    let net = spec.build(7).unwrap();
    let mut weights = net.export_weights();
    weights[0][0][0] = f32::NAN;
    let plan = FrozenPlan::from_spec_weights("bad", &spec, &weights).unwrap();

    let panic = catch_unwind(AssertUnwindSafe(|| {
        let mut out = Vec::new();
        let _ = plan.predict_batch(&[1.0; 8], &mut out);
    }))
    .expect_err("checked-math should panic on NaN output");
    let msg = panic
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_default();
    assert!(msg.contains("FrozenPlan::predict_batch"), "unexpected panic message: {msg}");
}

#[test]
fn nan_weights_trip_the_sanitizer_in_network_forward() {
    let spec = spec();
    let mut net = spec.build(7).unwrap();
    let mut weights = net.export_weights();
    weights[0][0][0] = f32::NAN;
    net.import_weights(&weights).unwrap();

    let panic = catch_unwind(AssertUnwindSafe(|| {
        let _ = net.predict(&[1.0, 1.0, 1.0, 1.0]);
    }))
    .expect_err("checked-math should panic on NaN output");
    let msg = panic
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_default();
    assert!(msg.contains("Network::forward"), "unexpected panic message: {msg}");
}
