//! Activation functions.
//!
//! The paper compares ReLU vs SELU in hidden layers and Softmax vs Linear
//! in the final convolutional and output layers (§III.A.2, Figure 5); the
//! Softmax-on-output finding ("beneficial especially for nets whose output
//! values add up to 1") is one of its headline results, so softmax here is
//! a first-class grouped activation, not an afterthought.

use serde::{Deserialize, Serialize};

/// SELU scale constant (Klambauer et al., self-normalizing networks).
pub const SELU_SCALE: f32 = 1.050_701;
/// SELU alpha constant.
pub const SELU_ALPHA: f32 = 1.673_263_2;

/// An activation function applied by a layer to its pre-activations.
///
/// Elementwise activations (`Linear`, `Relu`, `Selu`, `Sigmoid`, `Tanh`)
/// ignore grouping. `Softmax` normalizes over *groups*: for a dense layer
/// the whole output is one group; for a convolutional layer each spatial
/// position's channel vector is one group (matching Keras' channels-last
/// softmax semantics the paper's models rely on).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Activation {
    /// Identity.
    Linear,
    /// Rectified linear unit.
    Relu,
    /// Scaled exponential linear unit.
    Selu,
    /// Logistic sigmoid.
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
    /// Softmax over each group (see type-level docs).
    Softmax,
}

impl Activation {
    /// Applies the activation in place. `group` is the softmax group size;
    /// it must divide `values.len()`. Elementwise activations ignore it.
    ///
    /// # Panics
    ///
    /// Panics if `group` is zero or does not divide `values.len()` when
    /// the activation is `Softmax`.
    pub fn apply(&self, values: &mut [f32], group: usize) {
        match self {
            Activation::Linear => {}
            Activation::Relu => {
                for v in values.iter_mut() {
                    if *v < 0.0 {
                        *v = 0.0;
                    }
                }
            }
            Activation::Selu => {
                for v in values.iter_mut() {
                    *v = if *v > 0.0 {
                        SELU_SCALE * *v
                    } else {
                        SELU_SCALE * SELU_ALPHA * (v.exp() - 1.0)
                    };
                }
            }
            Activation::Sigmoid => {
                for v in values.iter_mut() {
                    *v = 1.0 / (1.0 + (-*v).exp());
                }
            }
            Activation::Tanh => {
                for v in values.iter_mut() {
                    *v = v.tanh();
                }
            }
            Activation::Softmax => {
                assert!(
                    group > 0 && values.len().is_multiple_of(group),
                    "softmax group {group} must divide {}",
                    values.len()
                );
                for chunk in values.chunks_mut(group) {
                    let max = chunk.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
                    let mut sum = 0.0;
                    for v in chunk.iter_mut() {
                        *v = (*v - max).exp();
                        sum += *v;
                    }
                    if sum > 0.0 {
                        for v in chunk.iter_mut() {
                            *v /= sum;
                        }
                    }
                }
            }
        }
    }

    /// Transforms the gradient w.r.t. the activation *output* into the
    /// gradient w.r.t. the pre-activation, in place.
    ///
    /// `outputs` must be the values produced by [`Activation::apply`] for
    /// the same forward pass; `grad` is modified in place. `group` must be
    /// the same group size used in `apply`.
    ///
    /// # Panics
    ///
    /// Panics if `grad.len() != outputs.len()`, or the softmax group is
    /// invalid.
    pub fn backward(&self, outputs: &[f32], grad: &mut [f32], group: usize) {
        assert_eq!(grad.len(), outputs.len(), "gradient length mismatch");
        match self {
            Activation::Linear => {}
            Activation::Relu => {
                for (g, &y) in grad.iter_mut().zip(outputs) {
                    if y <= 0.0 {
                        *g = 0.0;
                    }
                }
            }
            Activation::Selu => {
                for (g, &y) in grad.iter_mut().zip(outputs) {
                    // y > 0  => z > 0  => dy/dz = scale
                    // y <= 0 => dy/dz = scale*alpha*exp(z) = y + scale*alpha
                    let d = if y > 0.0 {
                        SELU_SCALE
                    } else {
                        y + SELU_SCALE * SELU_ALPHA
                    };
                    *g *= d;
                }
            }
            Activation::Sigmoid => {
                for (g, &y) in grad.iter_mut().zip(outputs) {
                    *g *= y * (1.0 - y);
                }
            }
            Activation::Tanh => {
                for (g, &y) in grad.iter_mut().zip(outputs) {
                    *g *= 1.0 - y * y;
                }
            }
            Activation::Softmax => {
                assert!(
                    group > 0 && outputs.len().is_multiple_of(group),
                    "softmax group {group} must divide {}",
                    outputs.len()
                );
                for (g_chunk, y_chunk) in grad.chunks_mut(group).zip(outputs.chunks(group)) {
                    let dot: f32 = g_chunk.iter().zip(y_chunk).map(|(g, y)| g * y).sum();
                    for (g, &y) in g_chunk.iter_mut().zip(y_chunk) {
                        *g = y * (*g - dot);
                    }
                }
            }
        }
    }

    /// Short name used in summaries (matches the paper's abbreviations).
    pub fn short_name(&self) -> &'static str {
        match self {
            Activation::Linear => "lin",
            Activation::Relu => "relu",
            Activation::Selu => "selu",
            Activation::Sigmoid => "sigm",
            Activation::Tanh => "tanh",
            Activation::Softmax => "sftm",
        }
    }
}

impl std::fmt::Display for Activation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.short_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn numeric_grad(act: Activation, z: f32) -> f32 {
        let eps = 1e-3;
        let mut hi = [z + eps];
        let mut lo = [z - eps];
        act.apply(&mut hi, 1);
        act.apply(&mut lo, 1);
        (hi[0] - lo[0]) / (2.0 * eps)
    }

    #[test]
    fn relu_clamps_negatives() {
        let mut v = [-1.0, 0.0, 2.0];
        Activation::Relu.apply(&mut v, 1);
        assert_eq!(v, [0.0, 0.0, 2.0]);
    }

    #[test]
    fn selu_matches_reference_values() {
        let mut v = [1.0f32, -1.0];
        Activation::Selu.apply(&mut v, 1);
        assert!((v[0] - SELU_SCALE).abs() < 1e-6);
        let expect = SELU_SCALE * SELU_ALPHA * ((-1.0f32).exp() - 1.0);
        assert!((v[1] - expect).abs() < 1e-6);
    }

    #[test]
    fn softmax_sums_to_one_per_group() {
        let mut v = [1.0, 2.0, 3.0, 1.0, 1.0, 1.0];
        Activation::Softmax.apply(&mut v, 3);
        let s1: f32 = v[..3].iter().sum();
        let s2: f32 = v[3..].iter().sum();
        assert!((s1 - 1.0).abs() < 1e-6);
        assert!((s2 - 1.0).abs() < 1e-6);
        assert!((v[3] - 1.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn softmax_is_shift_invariant_and_stable() {
        let mut a = [1.0, 2.0];
        let mut b = [1001.0, 1002.0];
        Activation::Softmax.apply(&mut a, 2);
        Activation::Softmax.apply(&mut b, 2);
        assert!((a[0] - b[0]).abs() < 1e-6);
        assert!(a.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn elementwise_backward_matches_numeric() {
        for act in [
            Activation::Relu,
            Activation::Selu,
            Activation::Sigmoid,
            Activation::Tanh,
            Activation::Linear,
        ] {
            for z in [-1.5f32, -0.3, 0.4, 1.2] {
                if act == Activation::Relu && z.abs() < 0.01 {
                    continue; // kink
                }
                let mut y = [z];
                act.apply(&mut y, 1);
                let mut g = [1.0f32];
                act.backward(&y, &mut g, 1);
                let num = numeric_grad(act, z);
                assert!(
                    (g[0] - num).abs() < 1e-2,
                    "{act:?} at {z}: analytic {} numeric {num}",
                    g[0]
                );
            }
        }
    }

    #[test]
    fn softmax_backward_matches_numeric() {
        let z = [0.3f32, -0.8, 1.1];
        let upstream = [0.5f32, -1.0, 2.0];
        let mut y = z;
        Activation::Softmax.apply(&mut y, 3);
        let mut analytic = upstream;
        Activation::Softmax.backward(&y, &mut analytic, 3);
        // Numeric: d(sum_j upstream_j * y_j)/dz_i
        let eps = 1e-3;
        for i in 0..3 {
            let mut hi = z;
            hi[i] += eps;
            Activation::Softmax.apply(&mut hi, 3);
            let mut lo = z;
            lo[i] -= eps;
            Activation::Softmax.apply(&mut lo, 3);
            let f_hi: f32 = hi.iter().zip(&upstream).map(|(a, b)| a * b).sum();
            let f_lo: f32 = lo.iter().zip(&upstream).map(|(a, b)| a * b).sum();
            let num = (f_hi - f_lo) / (2.0 * eps);
            assert!(
                (analytic[i] - num).abs() < 1e-3,
                "i={i}: analytic {} numeric {num}",
                analytic[i]
            );
        }
    }

    #[test]
    fn softmax_backward_of_uniform_grad_is_zero() {
        // Softmax outputs sum to 1, so a constant upstream gradient has no
        // effect on the pre-activations.
        let mut y = [0.1f32, 0.7, 1.3];
        Activation::Softmax.apply(&mut y, 3);
        let mut g = [2.5f32, 2.5, 2.5];
        Activation::Softmax.backward(&y, &mut g, 3);
        assert!(g.iter().all(|v| v.abs() < 1e-6));
    }

    #[test]
    #[should_panic(expected = "softmax group")]
    fn softmax_invalid_group_panics() {
        let mut v = [1.0, 2.0, 3.0];
        Activation::Softmax.apply(&mut v, 2);
    }

    #[test]
    fn short_names_match_paper_figure_labels() {
        assert_eq!(Activation::Softmax.short_name(), "sftm");
        assert_eq!(Activation::Linear.short_name(), "lin");
    }
}
