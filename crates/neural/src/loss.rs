//! Loss functions.
//!
//! The paper trains its MS networks with mean absolute error ("we used the
//! mean absolute error (MAE) as loss function", §III.A.2) and compares the
//! NMR models by mean squared error.

use serde::{Deserialize, Serialize};

/// A training loss: value plus gradient w.r.t. the prediction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Loss {
    /// Mean absolute error (the paper's MS training loss).
    Mae,
    /// Mean squared error (the paper's NMR comparison metric).
    Mse,
}

impl Loss {
    /// Computes the loss value for one sample.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ or are zero.
    pub fn value(&self, prediction: &[f32], target: &[f32]) -> f32 {
        assert_eq!(prediction.len(), target.len(), "loss length mismatch");
        assert!(!prediction.is_empty(), "loss of empty vectors");
        let n = prediction.len() as f32;
        match self {
            Loss::Mae => {
                prediction
                    .iter()
                    .zip(target)
                    .map(|(p, t)| (p - t).abs())
                    .sum::<f32>()
                    / n
            }
            Loss::Mse => {
                prediction
                    .iter()
                    .zip(target)
                    .map(|(p, t)| (p - t) * (p - t))
                    .sum::<f32>()
                    / n
            }
        }
    }

    /// Computes the gradient of the loss w.r.t. the prediction.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ or are zero.
    pub fn gradient(&self, prediction: &[f32], target: &[f32]) -> Vec<f32> {
        assert_eq!(prediction.len(), target.len(), "loss length mismatch");
        assert!(!prediction.is_empty(), "loss of empty vectors");
        let n = prediction.len() as f32;
        match self {
            Loss::Mae => prediction
                .iter()
                .zip(target)
                .map(|(p, t)| {
                    if p > t {
                        1.0 / n
                    } else if p < t {
                        -1.0 / n
                    } else {
                        0.0
                    }
                })
                .collect(),
            Loss::Mse => prediction
                .iter()
                .zip(target)
                .map(|(p, t)| 2.0 * (p - t) / n)
                .collect(),
        }
    }
}

impl std::fmt::Display for Loss {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Loss::Mae => f.write_str("mae"),
            Loss::Mse => f.write_str("mse"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mae_value_and_gradient() {
        let p = [2.0f32, 0.0];
        let t = [0.0f32, 1.0];
        assert_eq!(Loss::Mae.value(&p, &t), 1.5);
        assert_eq!(Loss::Mae.gradient(&p, &t), vec![0.5, -0.5]);
    }

    #[test]
    fn mse_value_and_gradient() {
        let p = [3.0f32, 0.0];
        let t = [0.0f32, 0.0];
        assert_eq!(Loss::Mse.value(&p, &t), 4.5);
        assert_eq!(Loss::Mse.gradient(&p, &t), vec![3.0, 0.0]);
    }

    #[test]
    fn zero_loss_at_target() {
        let t = [0.3f32, -0.7];
        assert_eq!(Loss::Mae.value(&t, &t), 0.0);
        assert_eq!(Loss::Mse.value(&t, &t), 0.0);
    }

    #[test]
    fn gradient_is_descent_direction() {
        // Moving against the gradient must reduce the loss.
        let p = [1.0f32, -2.0];
        let t = [0.5f32, 0.5];
        for loss in [Loss::Mae, Loss::Mse] {
            let g = loss.gradient(&p, &t);
            let stepped: Vec<f32> = p.iter().zip(&g).map(|(x, gi)| x - 0.1 * gi).collect();
            assert!(loss.value(&stepped, &t) < loss.value(&p, &t), "{loss}");
        }
    }

    #[test]
    fn mse_gradient_matches_numeric() {
        let p = [0.8f32, -0.1, 0.4];
        let t = [1.0f32, 0.0, 0.0];
        let g = Loss::Mse.gradient(&p, &t);
        let eps = 1e-3;
        for i in 0..3 {
            let mut hi = p;
            hi[i] += eps;
            let mut lo = p;
            lo[i] -= eps;
            let num = (Loss::Mse.value(&hi, &t) - Loss::Mse.value(&lo, &t)) / (2.0 * eps);
            assert!((g[i] - num).abs() < 1e-3);
        }
    }
}
