//! Weight initializers.
//!
//! The scheme is chosen per activation: He-normal for ReLU, LeCun-normal
//! for SELU (required for self-normalization), Glorot-uniform otherwise —
//! the same defaults the paper's Keras models would have used.

use rand::Rng;
use rand_chacha::ChaCha8Rng;

use crate::Activation;

/// The weight-initialization scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Init {
    /// He normal: `N(0, sqrt(2 / fan_in))` — for ReLU.
    HeNormal,
    /// LeCun normal: `N(0, sqrt(1 / fan_in))` — for SELU.
    LecunNormal,
    /// Glorot uniform: `U(-l, l)` with `l = sqrt(6 / (fan_in + fan_out))`.
    GlorotUniform,
}

impl Init {
    /// The recommended initializer for a given activation.
    pub fn for_activation(activation: Activation) -> Self {
        match activation {
            Activation::Relu => Init::HeNormal,
            Activation::Selu => Init::LecunNormal,
            _ => Init::GlorotUniform,
        }
    }

    /// Fills `weights` with samples from the scheme.
    pub fn fill(&self, weights: &mut [f32], fan_in: usize, fan_out: usize, rng: &mut ChaCha8Rng) {
        let fan_in = fan_in.max(1) as f32;
        let fan_out = fan_out.max(1) as f32;
        match self {
            Init::HeNormal => {
                let sd = (2.0 / fan_in).sqrt();
                for w in weights.iter_mut() {
                    *w = sd * normal(rng);
                }
            }
            Init::LecunNormal => {
                let sd = (1.0 / fan_in).sqrt();
                for w in weights.iter_mut() {
                    *w = sd * normal(rng);
                }
            }
            Init::GlorotUniform => {
                let limit = (6.0 / (fan_in + fan_out)).sqrt();
                for w in weights.iter_mut() {
                    *w = rng.gen_range(-limit..limit);
                }
            }
        }
    }
}

fn normal(rng: &mut ChaCha8Rng) -> f32 {
    let u1: f64 = rng.gen::<f64>().max(1e-300);
    let u2: f64 = rng.gen();
    ((-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()) as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn stats(values: &[f32]) -> (f32, f32) {
        let mean = values.iter().sum::<f32>() / values.len() as f32;
        let var =
            values.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / values.len() as f32;
        (mean, var.sqrt())
    }

    #[test]
    fn he_normal_variance() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut w = vec![0.0; 50_000];
        Init::HeNormal.fill(&mut w, 100, 50, &mut rng);
        let (mean, sd) = stats(&w);
        assert!(mean.abs() < 0.01);
        assert!((sd - (2.0f32 / 100.0).sqrt()).abs() < 0.01);
    }

    #[test]
    fn lecun_normal_variance() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut w = vec![0.0; 50_000];
        Init::LecunNormal.fill(&mut w, 64, 64, &mut rng);
        let (_, sd) = stats(&w);
        assert!((sd - 0.125).abs() < 0.01);
    }

    #[test]
    fn glorot_is_bounded() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut w = vec![0.0; 10_000];
        Init::GlorotUniform.fill(&mut w, 10, 20, &mut rng);
        let limit = (6.0f32 / 30.0).sqrt();
        assert!(w.iter().all(|v| v.abs() <= limit));
        let (mean, _) = stats(&w);
        assert!(mean.abs() < 0.02);
    }

    #[test]
    fn activation_mapping() {
        assert_eq!(Init::for_activation(Activation::Relu), Init::HeNormal);
        assert_eq!(Init::for_activation(Activation::Selu), Init::LecunNormal);
        assert_eq!(
            Init::for_activation(Activation::Softmax),
            Init::GlorotUniform
        );
    }

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = vec![0.0; 16];
        let mut b = vec![0.0; 16];
        Init::HeNormal.fill(&mut a, 4, 4, &mut ChaCha8Rng::seed_from_u64(9));
        Init::HeNormal.fill(&mut b, 4, 4, &mut ChaCha8Rng::seed_from_u64(9));
        assert_eq!(a, b);
    }
}
