//! Frozen inference plans: immutable, shareable forward-only networks.
//!
//! [`crate::Network`] is a training object — every layer owns gradient
//! buffers and forward caches, so `predict` needs `&mut self` and a
//! network cannot be shared between threads. A [`FrozenPlan`] is the
//! deployment counterpart: compiled once from an exported artifact, it
//! holds nothing but pre-resolved layer shapes and weight tensors, all
//! methods take `&self`, and the plan is `Send + Sync` — one `Arc` serves
//! any number of worker threads (the `serve` crate's engine is built on
//! exactly this property).
//!
//! Every op replicates the corresponding layer's *evaluation-mode*
//! forward arithmetic operation-for-operation (same loop order, same
//! `f32` accumulation), so plan predictions are **bit-identical** to
//! [`crate::Network::predict`] on the same weights. `serve_load` in the
//! bench crate verifies this end to end; [`FrozenPlan::predict_batch`]
//! additionally runs whole micro-batches over one contiguous input block
//! without intermediate reallocation per request hop.
//!
//! # Example
//!
//! ```
//! use neural::export::ExportedNetwork;
//! use neural::plan::FrozenPlan;
//! use neural::spec::{LayerSpec, NetworkSpec};
//! use neural::Activation;
//!
//! # fn main() -> Result<(), neural::NeuralError> {
//! let spec = NetworkSpec::new(4).layer(LayerSpec::Dense {
//!     units: 2,
//!     activation: Activation::Softmax,
//! });
//! let mut net = spec.build(3)?;
//! let exported = ExportedNetwork::from_network(spec, &net, "demo");
//! let plan = FrozenPlan::compile(&exported)?;
//! let x = [0.1, 0.2, 0.3, 0.4];
//! assert_eq!(plan.predict(&x)?, net.predict(&x));
//! # Ok(())
//! # }
//! ```

use crate::export::ExportedNetwork;
use crate::layers::conv_output_len;
use crate::spec::{LayerSpec, NetworkSpec};
use crate::{Activation, NeuralError};

/// One forward-only op of a compiled plan. Weights are owned; shapes are
/// resolved at compile time.
#[derive(Debug, Clone)]
enum PlanOp {
    /// Reshape / Flatten / eval-mode Dropout: identity on data.
    Identity { len: usize },
    /// Fully connected layer.
    Dense {
        input_len: usize,
        units: usize,
        activation: Activation,
        weights: Vec<f32>,
        bias: Vec<f32>,
    },
    /// Strided 1-D convolution (shared kernels, channels-first).
    Conv1d {
        in_channels: usize,
        in_len: usize,
        filters: usize,
        kernel: usize,
        stride: usize,
        out_len: usize,
        activation: Activation,
        weights: Vec<f32>,
        bias: Vec<f32>,
    },
    /// Locally connected 1-D layer (unshared kernels).
    Local1d {
        in_channels: usize,
        in_len: usize,
        filters: usize,
        kernel: usize,
        stride: usize,
        out_len: usize,
        activation: Activation,
        weights: Vec<f32>,
        bias: Vec<f32>,
    },
    /// Max pooling.
    MaxPool {
        channels: usize,
        in_len: usize,
        pool: usize,
        stride: usize,
        out_len: usize,
    },
    /// Average pooling.
    AvgPool {
        channels: usize,
        in_len: usize,
        pool: usize,
        stride: usize,
        out_len: usize,
    },
    /// Highway layer.
    Highway {
        width: usize,
        activation: Activation,
        w_h: Vec<f32>,
        b_h: Vec<f32>,
        w_t: Vec<f32>,
        b_t: Vec<f32>,
    },
    /// Residual dense block.
    ResidualDense {
        width: usize,
        activation: Activation,
        weights: Vec<f32>,
        bias: Vec<f32>,
    },
    /// LSTM returning the last hidden state.
    Lstm {
        timesteps: usize,
        features: usize,
        units: usize,
        w: Vec<f32>,
        u: Vec<f32>,
        b: Vec<f32>,
    },
}

impl PlanOp {
    fn output_len(&self) -> usize {
        match self {
            PlanOp::Identity { len } => *len,
            PlanOp::Dense { units, .. } => *units,
            PlanOp::Conv1d {
                filters, out_len, ..
            }
            | PlanOp::Local1d {
                filters, out_len, ..
            } => filters * out_len,
            PlanOp::MaxPool {
                channels, out_len, ..
            }
            | PlanOp::AvgPool {
                channels, out_len, ..
            } => channels * out_len,
            PlanOp::Highway { width, .. } | PlanOp::ResidualDense { width, .. } => *width,
            PlanOp::Lstm { units, .. } => *units,
        }
    }

    fn param_count(&self) -> usize {
        match self {
            PlanOp::Identity { .. } | PlanOp::MaxPool { .. } | PlanOp::AvgPool { .. } => 0,
            PlanOp::Dense { weights, bias, .. }
            | PlanOp::Conv1d { weights, bias, .. }
            | PlanOp::Local1d { weights, bias, .. }
            | PlanOp::ResidualDense { weights, bias, .. } => weights.len() + bias.len(),
            PlanOp::Highway { w_h, b_h, w_t, b_t, .. } => {
                w_h.len() + b_h.len() + w_t.len() + b_t.len()
            }
            PlanOp::Lstm { w, u, b, .. } => w.len() + u.len() + b.len(),
        }
    }

    /// MAC count per inference, matching
    /// [`crate::Network::macs_per_inference`]'s accounting.
    fn macs(&self) -> u64 {
        let params = self.param_count() as u64;
        match self {
            PlanOp::Conv1d { out_len, .. } => params * *out_len as u64,
            PlanOp::Lstm { timesteps, .. } => params * *timesteps as u64,
            _ => params,
        }
    }

    /// Applies the op to one sample, replicating the layer's eval-mode
    /// forward arithmetic exactly.
    fn apply(&self, input: &[f32]) -> Vec<f32> {
        match self {
            PlanOp::Identity { .. } => input.to_vec(),
            PlanOp::Dense {
                input_len,
                units,
                activation,
                weights,
                bias,
            } => {
                let mut out = bias.clone();
                for (u, slot) in out.iter_mut().enumerate() {
                    let row = &weights[u * input_len..(u + 1) * input_len];
                    let mut acc = 0.0f32;
                    for (w, x) in row.iter().zip(input) {
                        acc += w * x;
                    }
                    *slot += acc;
                }
                activation.apply(&mut out, *units);
                out
            }
            PlanOp::Conv1d {
                in_channels,
                in_len,
                filters,
                kernel,
                stride,
                out_len,
                activation,
                weights,
                bias,
            } => {
                let mut out = vec![0.0f32; filters * out_len];
                for f in 0..*filters {
                    let b = bias[f];
                    for op in 0..*out_len {
                        let start = op * stride;
                        let mut acc = b;
                        for ic in 0..*in_channels {
                            let w_base = (f * in_channels + ic) * kernel;
                            let x_base = ic * in_len + start;
                            let w = &weights[w_base..w_base + kernel];
                            let x = &input[x_base..x_base + kernel];
                            let mut dot = 0.0f32;
                            for (wi, xi) in w.iter().zip(x) {
                                dot += wi * xi;
                            }
                            acc += dot;
                        }
                        out[f * out_len + op] = acc;
                    }
                }
                channelwise_activation(&mut out, *activation, *filters, *out_len);
                out
            }
            PlanOp::Local1d {
                in_channels,
                in_len,
                filters,
                kernel,
                stride,
                out_len,
                activation,
                weights,
                bias,
            } => {
                let mut out = vec![0.0f32; filters * out_len];
                for op in 0..*out_len {
                    let start = op * stride;
                    for f in 0..*filters {
                        let mut acc = bias[op * filters + f];
                        for ic in 0..*in_channels {
                            let w_base = ((op * filters + f) * in_channels + ic) * kernel;
                            let x_base = ic * in_len + start;
                            let w = &weights[w_base..w_base + kernel];
                            let x = &input[x_base..x_base + kernel];
                            for (wi, xi) in w.iter().zip(x) {
                                acc += wi * xi;
                            }
                        }
                        out[f * out_len + op] = acc;
                    }
                }
                channelwise_activation(&mut out, *activation, *filters, *out_len);
                out
            }
            PlanOp::MaxPool {
                channels,
                in_len,
                pool,
                stride,
                out_len,
            } => {
                let mut out = vec![0.0f32; channels * out_len];
                for c in 0..*channels {
                    for op in 0..*out_len {
                        let start = c * in_len + op * stride;
                        let window = &input[start..start + pool];
                        // Panic-free tie-last max, bit-identical to
                        // `MaxPool1d::forward` on finite values.
                        let mut v = f32::NEG_INFINITY;
                        for &x in window {
                            if x >= v {
                                v = x;
                            }
                        }
                        out[c * out_len + op] = v;
                    }
                }
                out
            }
            PlanOp::AvgPool {
                channels,
                in_len,
                pool,
                stride,
                out_len,
            } => {
                let mut out = vec![0.0f32; channels * out_len];
                let inv = 1.0 / *pool as f32;
                for c in 0..*channels {
                    for op in 0..*out_len {
                        let start = c * in_len + op * stride;
                        let sum: f32 = input[start..start + pool].iter().sum();
                        out[c * out_len + op] = sum * inv;
                    }
                }
                out
            }
            PlanOp::Highway {
                width,
                activation,
                w_h,
                b_h,
                w_t,
                b_t,
            } => {
                let mut h = affine(*width, w_h, b_h, input);
                activation.apply(&mut h, *width);
                let mut t = affine(*width, w_t, b_t, input);
                Activation::Sigmoid.apply(&mut t, 1);
                h.iter()
                    .zip(&t)
                    .zip(input)
                    .map(|((&hi, &ti), &xi)| ti * hi + (1.0 - ti) * xi)
                    .collect()
            }
            PlanOp::ResidualDense {
                width,
                activation,
                weights,
                bias,
            } => {
                let mut branch = affine(*width, weights, bias, input);
                activation.apply(&mut branch, *width);
                branch.iter().zip(input).map(|(&b, &x)| b + x).collect()
            }
            PlanOp::Lstm {
                timesteps,
                features,
                units,
                w,
                u,
                b,
            } => {
                let h = *units;
                let d = *features;
                let mut h_prev = vec![0.0f32; h];
                let mut c_prev = vec![0.0f32; h];
                for t in 0..*timesteps {
                    let x_t = &input[t * d..(t + 1) * d];
                    let mut z = b.clone();
                    for (row, slot) in z.iter_mut().enumerate() {
                        let wr = &w[row * d..(row + 1) * d];
                        let mut acc = 0.0f32;
                        for (wi, xi) in wr.iter().zip(x_t) {
                            acc += wi * xi;
                        }
                        let ur = &u[row * h..(row + 1) * h];
                        for (ui, hi) in ur.iter().zip(&h_prev) {
                            acc += ui * hi;
                        }
                        *slot += acc;
                    }
                    let mut h_next = vec![0.0f32; h];
                    let mut c_next = vec![0.0f32; h];
                    for j in 0..h {
                        let i_g = sigmoid(z[j]);
                        let f_g = sigmoid(z[h + j]);
                        let g_g = z[2 * h + j].tanh();
                        let o_g = sigmoid(z[3 * h + j]);
                        let c = f_g * c_prev[j] + i_g * g_g;
                        c_next[j] = c;
                        h_next[j] = o_g * c.tanh();
                    }
                    h_prev = h_next;
                    c_prev = c_next;
                }
                h_prev
            }
        }
    }
}

/// Dense-style affine map `W x + b`, same accumulation order as
/// `Highway::affine` / `ResidualDense::forward`.
fn affine(width: usize, weights: &[f32], bias: &[f32], input: &[f32]) -> Vec<f32> {
    let mut out = bias.to_vec();
    for (u, slot) in out.iter_mut().enumerate() {
        let row = &weights[u * width..(u + 1) * width];
        let mut acc = 0.0f32;
        for (w, x) in row.iter().zip(input) {
            acc += w * x;
        }
        *slot += acc;
    }
    out
}

fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// Applies a conv-style activation: softmax normalizes across channels at
/// each spatial position (regroup, apply, regroup back — exactly as
/// `Conv1d::forward` / `LocallyConnected1d::forward` do), everything else
/// is elementwise.
fn channelwise_activation(out: &mut [f32], activation: Activation, filters: usize, out_len: usize) {
    if activation == Activation::Softmax {
        let mut grouped = vec![0.0f32; out.len()];
        for f in 0..filters {
            for op in 0..out_len {
                grouped[op * filters + f] = out[f * out_len + op];
            }
        }
        activation.apply(&mut grouped, filters);
        for f in 0..filters {
            for op in 0..out_len {
                out[f * out_len + op] = grouped[op * filters + f];
            }
        }
    } else {
        activation.apply(out, 1);
    }
}

/// Expected parameter-tensor lengths for every layer of `spec`, in
/// [`crate::Network::export_weights`] order. Shared by plan compilation
/// and [`ExportedNetwork::validate`].
///
/// # Errors
///
/// Returns [`NeuralError::InvalidSpec`] if the spec itself is
/// inconsistent (same conditions as [`NetworkSpec::build`]).
pub fn expected_tensor_shapes(spec: &NetworkSpec) -> Result<Vec<Vec<usize>>, NeuralError> {
    let mut shapes = Vec::with_capacity(spec.layers.len());
    walk_spec(spec, |_, _, expected| shapes.push(expected))?;
    Ok(shapes)
}

/// Walks a spec layer by layer, resolving the running `channels × len`
/// shape exactly like [`NetworkSpec::build`], and hands each layer's spec,
/// resolved input shape and expected tensor lengths to `visit`.
fn walk_spec(
    spec: &NetworkSpec,
    mut visit: impl FnMut(&LayerSpec, (usize, usize), Vec<usize>),
) -> Result<(usize, usize), NeuralError> {
    if spec.input_len == 0 {
        return Err(NeuralError::InvalidSpec("input length is zero".into()));
    }
    if spec.layers.is_empty() {
        return Err(NeuralError::InvalidSpec("spec has no layers".into()));
    }
    let mut channels = 1usize;
    let mut len = spec.input_len;
    for (i, layer) in spec.layers.iter().enumerate() {
        let invalid = |msg: String| NeuralError::InvalidSpec(format!("layer {i}: {msg}"));
        let in_shape = (channels, len);
        let expected: Vec<usize> = match *layer {
            LayerSpec::Reshape { channels: ch } => {
                let total = channels * len;
                if ch == 0 || !total.is_multiple_of(ch) {
                    return Err(invalid(format!("cannot reshape {total} into {ch} channels")));
                }
                channels = ch;
                len = total / ch;
                Vec::new()
            }
            LayerSpec::Conv1d {
                filters,
                kernel,
                stride,
                ..
            } => {
                if filters == 0 {
                    return Err(invalid("conv1d filters must be non-zero".into()));
                }
                let out_len = conv_output_len(len, kernel, stride).map_err(|e| invalid(e.to_string()))?;
                let w = filters * channels * kernel;
                channels = filters;
                len = out_len;
                vec![w, filters]
            }
            LayerSpec::LocallyConnected1d {
                filters,
                kernel,
                stride,
                ..
            } => {
                if filters == 0 {
                    return Err(invalid("locally connected filters must be non-zero".into()));
                }
                let out_len = conv_output_len(len, kernel, stride).map_err(|e| invalid(e.to_string()))?;
                let w = out_len * filters * channels * kernel;
                let b = out_len * filters;
                channels = filters;
                len = out_len;
                vec![w, b]
            }
            LayerSpec::MaxPool1d { pool, stride } | LayerSpec::AvgPool1d { pool, stride } => {
                len = conv_output_len(len, pool, stride).map_err(|e| invalid(e.to_string()))?;
                Vec::new()
            }
            LayerSpec::Flatten => {
                len *= channels;
                channels = 1;
                Vec::new()
            }
            LayerSpec::Dense { units, .. } => {
                if units == 0 {
                    return Err(invalid("dense units must be non-zero".into()));
                }
                let input = channels * len;
                channels = 1;
                len = units;
                vec![input * units, units]
            }
            LayerSpec::Dropout { rate } => {
                if !(0.0..1.0).contains(&rate) {
                    return Err(invalid(format!("dropout rate {rate} must lie in [0, 1)")));
                }
                len *= channels;
                channels = 1;
                Vec::new()
            }
            LayerSpec::Highway { .. } => {
                let width = channels * len;
                channels = 1;
                len = width;
                vec![width * width, width, width * width, width]
            }
            LayerSpec::ResidualDense { .. } => {
                let width = channels * len;
                channels = 1;
                len = width;
                vec![width * width, width]
            }
            LayerSpec::Lstm { units, timesteps } => {
                let total = channels * len;
                if timesteps == 0 || !total.is_multiple_of(timesteps) {
                    return Err(invalid(format!(
                        "lstm timesteps {timesteps} must divide input {total}"
                    )));
                }
                if units == 0 {
                    return Err(invalid("lstm units must be non-zero".into()));
                }
                let features = total / timesteps;
                channels = 1;
                len = units;
                vec![4 * units * features, 4 * units * units, 4 * units]
            }
        };
        visit(layer, in_shape, expected);
    }
    Ok((channels, len))
}

/// Validates that `weights` (in [`crate::Network::export_weights`] layout)
/// fit `spec` tensor-by-tensor.
///
/// # Errors
///
/// Returns [`NeuralError::InvalidSpec`] if the spec is inconsistent, or
/// [`NeuralError::InvalidWeights`] naming the first offending layer.
pub fn validate_weights(spec: &NetworkSpec, weights: &[Vec<Vec<f32>>]) -> Result<(), NeuralError> {
    let shapes = expected_tensor_shapes(spec)?;
    if weights.len() != shapes.len() {
        return Err(NeuralError::InvalidWeights(format!(
            "expected {} layers, got {}",
            shapes.len(),
            weights.len()
        )));
    }
    for (i, (expected, actual)) in shapes.iter().zip(weights).enumerate() {
        if expected.len() != actual.len() {
            return Err(NeuralError::InvalidWeights(format!(
                "layer {i}: expected {} tensors, got {}",
                expected.len(),
                actual.len()
            )));
        }
        for (t, (&want, have)) in expected.iter().zip(actual).enumerate() {
            if have.len() != want {
                return Err(NeuralError::InvalidWeights(format!(
                    "layer {i} tensor {t}: expected {} values, got {}",
                    want,
                    have.len()
                )));
            }
        }
    }
    Ok(())
}

/// An immutable, forward-only compiled network: pre-resolved shapes, owned
/// weights, no training state. `Send + Sync`; share via `Arc`.
#[derive(Debug, Clone)]
pub struct FrozenPlan {
    name: String,
    input_len: usize,
    output_len: usize,
    ops: Vec<PlanOp>,
    parameter_count: usize,
    macs_per_inference: u64,
}

impl FrozenPlan {
    /// Compiles an exported artifact into a frozen plan, validating the
    /// weights against the spec.
    ///
    /// # Errors
    ///
    /// Returns [`NeuralError::UnsupportedFormat`] for artifacts from a
    /// newer export format, [`NeuralError::InvalidSpec`] /
    /// [`NeuralError::InvalidWeights`] for inconsistent topologies or
    /// tensors.
    pub fn compile(exported: &ExportedNetwork) -> Result<Self, NeuralError> {
        exported.validate()?;
        Self::from_spec_weights(&exported.name, &exported.spec, &exported.weights)
    }

    /// Compiles a spec + weight tensors (in
    /// [`crate::Network::export_weights`] layout) into a frozen plan.
    ///
    /// # Errors
    ///
    /// Returns [`NeuralError::InvalidSpec`] or
    /// [`NeuralError::InvalidWeights`] as for [`FrozenPlan::compile`].
    pub fn from_spec_weights(
        name: &str,
        spec: &NetworkSpec,
        weights: &[Vec<Vec<f32>>],
    ) -> Result<Self, NeuralError> {
        validate_weights(spec, weights)?;
        let mut ops = Vec::with_capacity(spec.layers.len());
        let mut index = 0usize;
        walk_spec(spec, |layer, (channels, len), _| {
            let tensors = &weights[index];
            index += 1;
            let op = match *layer {
                LayerSpec::Reshape { .. } | LayerSpec::Flatten | LayerSpec::Dropout { .. } => {
                    PlanOp::Identity {
                        len: channels * len,
                    }
                }
                LayerSpec::Conv1d {
                    filters,
                    kernel,
                    stride,
                    activation,
                } => PlanOp::Conv1d {
                    in_channels: channels,
                    in_len: len,
                    filters,
                    kernel,
                    stride,
                    out_len: (len - kernel) / stride + 1,
                    activation,
                    weights: tensors[0].clone(),
                    bias: tensors[1].clone(),
                },
                LayerSpec::LocallyConnected1d {
                    filters,
                    kernel,
                    stride,
                    activation,
                } => PlanOp::Local1d {
                    in_channels: channels,
                    in_len: len,
                    filters,
                    kernel,
                    stride,
                    out_len: (len - kernel) / stride + 1,
                    activation,
                    weights: tensors[0].clone(),
                    bias: tensors[1].clone(),
                },
                LayerSpec::MaxPool1d { pool, stride } => PlanOp::MaxPool {
                    channels,
                    in_len: len,
                    pool,
                    stride,
                    out_len: (len - pool) / stride + 1,
                },
                LayerSpec::AvgPool1d { pool, stride } => PlanOp::AvgPool {
                    channels,
                    in_len: len,
                    pool,
                    stride,
                    out_len: (len - pool) / stride + 1,
                },
                LayerSpec::Dense { units, activation } => PlanOp::Dense {
                    input_len: channels * len,
                    units,
                    activation,
                    weights: tensors[0].clone(),
                    bias: tensors[1].clone(),
                },
                LayerSpec::Highway { activation } => PlanOp::Highway {
                    width: channels * len,
                    activation,
                    w_h: tensors[0].clone(),
                    b_h: tensors[1].clone(),
                    w_t: tensors[2].clone(),
                    b_t: tensors[3].clone(),
                },
                LayerSpec::ResidualDense { activation } => PlanOp::ResidualDense {
                    width: channels * len,
                    activation,
                    weights: tensors[0].clone(),
                    bias: tensors[1].clone(),
                },
                LayerSpec::Lstm { units, timesteps } => PlanOp::Lstm {
                    timesteps,
                    features: channels * len / timesteps,
                    units,
                    w: tensors[0].clone(),
                    u: tensors[1].clone(),
                    b: tensors[2].clone(),
                },
            };
            ops.push(op);
        })?;
        let output_len = ops.last().map(PlanOp::output_len).unwrap_or(0);
        let parameter_count = ops.iter().map(PlanOp::param_count).sum();
        let macs_per_inference = ops.iter().map(PlanOp::macs).sum();
        Ok(Self {
            name: name.to_string(),
            input_len: spec.input_len,
            output_len,
            ops,
            parameter_count,
            macs_per_inference,
        })
    }

    /// The model name carried over from the export.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Expected input length.
    pub fn input_len(&self) -> usize {
        self.input_len
    }

    /// Produced output length.
    pub fn output_len(&self) -> usize {
        self.output_len
    }

    /// Total scalar parameters.
    pub fn parameter_count(&self) -> usize {
        self.parameter_count
    }

    /// Multiply–accumulate operations per inference, with the same
    /// accounting as [`crate::Network::macs_per_inference`].
    pub fn macs_per_inference(&self) -> u64 {
        self.macs_per_inference
    }

    /// Runs one sample through the plan.
    ///
    /// # Errors
    ///
    /// Returns [`NeuralError::ShapeMismatch`] if `input` has the wrong
    /// length (the serving path wants an error, not a panic).
    pub fn predict(&self, input: &[f32]) -> Result<Vec<f32>, NeuralError> {
        if input.len() != self.input_len {
            return Err(NeuralError::ShapeMismatch {
                expected: self.input_len,
                actual: input.len(),
            });
        }
        let mut x = input.to_vec();
        let mut tracker = crate::checked::FiniteTracker::new(&x);
        for (i, op) in self.ops.iter().enumerate() {
            x = op.apply(&x);
            tracker.check("FrozenPlan::predict", i, &x);
        }
        Ok(x)
    }

    /// Runs a contiguous block of `inputs.len() / input_len` samples and
    /// appends their outputs contiguously to `outputs`. Returns the batch
    /// size.
    ///
    /// Per-sample arithmetic is identical to [`FrozenPlan::predict`], so
    /// batched results are bit-identical to sequential ones; batching
    /// amortizes dispatch and keeps inputs/outputs in single contiguous
    /// allocations for cache-friendly worker loops.
    ///
    /// # Errors
    ///
    /// Returns [`NeuralError::ShapeMismatch`] if `inputs.len()` is not a
    /// non-zero multiple of [`FrozenPlan::input_len`].
    pub fn predict_batch(
        &self,
        inputs: &[f32],
        outputs: &mut Vec<f32>,
    ) -> Result<usize, NeuralError> {
        if inputs.is_empty() || !inputs.len().is_multiple_of(self.input_len) {
            return Err(NeuralError::ShapeMismatch {
                expected: self.input_len,
                actual: inputs.len(),
            });
        }
        let batch = inputs.len() / self.input_len;
        outputs.reserve(batch * self.output_len);
        for sample in inputs.chunks_exact(self.input_len) {
            let mut x = sample.to_vec();
            let mut tracker = crate::checked::FiniteTracker::new(&x);
            for (i, op) in self.ops.iter().enumerate() {
                x = op.apply(&x);
                tracker.check("FrozenPlan::predict_batch", i, &x);
            }
            outputs.extend_from_slice(&x);
        }
        Ok(batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{LayerSpec, NetworkSpec};

    /// A spec exercising every layer kind with parameters plus pooling,
    /// dropout and shape ops.
    fn kitchen_sink_spec() -> NetworkSpec {
        NetworkSpec::new(24)
            .layer(LayerSpec::Reshape { channels: 2 })
            .layer(LayerSpec::Conv1d {
                filters: 3,
                kernel: 3,
                stride: 1,
                activation: Activation::Selu,
            })
            .layer(LayerSpec::MaxPool1d { pool: 2, stride: 2 })
            .layer(LayerSpec::AvgPool1d { pool: 2, stride: 1 })
            .layer(LayerSpec::LocallyConnected1d {
                filters: 2,
                kernel: 2,
                stride: 1,
                activation: Activation::Softmax,
            })
            .layer(LayerSpec::Flatten)
            .layer(LayerSpec::Dropout { rate: 0.4 })
            .layer(LayerSpec::Highway {
                activation: Activation::Tanh,
            })
            .layer(LayerSpec::ResidualDense {
                activation: Activation::Relu,
            })
            .layer(LayerSpec::Dense {
                units: 4,
                activation: Activation::Softmax,
            })
    }

    fn sample(len: usize) -> Vec<f32> {
        (0..len).map(|i| ((i as f32) * 0.37).sin()).collect()
    }

    #[test]
    fn plan_matches_network_bit_for_bit_on_all_layer_kinds() {
        let spec = kitchen_sink_spec();
        let mut net = spec.build(17).unwrap();
        let plan = FrozenPlan::from_spec_weights("sink", &spec, &net.export_weights()).unwrap();
        for seed in 0..5 {
            let x: Vec<f32> = (0..24)
                .map(|i| (((i + seed * 31) as f32) * 0.21).cos())
                .collect();
            assert_eq!(plan.predict(&x).unwrap(), net.predict(&x));
        }
    }

    #[test]
    fn plan_matches_network_on_lstm() {
        let spec = NetworkSpec::new(20)
            .layer(LayerSpec::Lstm {
                units: 6,
                timesteps: 4,
            })
            .layer(LayerSpec::Dense {
                units: 3,
                activation: Activation::Linear,
            });
        let mut net = spec.build(9).unwrap();
        let plan = FrozenPlan::from_spec_weights("lstm", &spec, &net.export_weights()).unwrap();
        let x = sample(20);
        assert_eq!(plan.predict(&x).unwrap(), net.predict(&x));
    }

    #[test]
    fn batched_prediction_is_bit_identical_to_sequential() {
        let spec = kitchen_sink_spec();
        let mut net = spec.build(3).unwrap();
        let plan = FrozenPlan::from_spec_weights("sink", &spec, &net.export_weights()).unwrap();
        let batch = 7;
        let mut block = Vec::new();
        for s in 0..batch {
            block.extend((0..24).map(|i| (((i * 7 + s * 13) as f32) * 0.11).sin()));
        }
        let mut out = Vec::new();
        assert_eq!(plan.predict_batch(&block, &mut out).unwrap(), batch);
        assert_eq!(out.len(), batch * plan.output_len());
        for s in 0..batch {
            let x = &block[s * 24..(s + 1) * 24];
            assert_eq!(
                &out[s * plan.output_len()..(s + 1) * plan.output_len()],
                net.predict(x).as_slice()
            );
        }
    }

    #[test]
    fn plan_metadata_matches_network() {
        let spec = kitchen_sink_spec();
        let net = spec.build(1).unwrap();
        let plan = FrozenPlan::from_spec_weights("m", &spec, &net.export_weights()).unwrap();
        assert_eq!(plan.input_len(), net.input_len());
        assert_eq!(plan.output_len(), net.output_len());
        assert_eq!(plan.parameter_count(), net.param_count());
        assert_eq!(plan.macs_per_inference(), net.macs_per_inference());
    }

    #[test]
    fn predict_rejects_wrong_shapes() {
        let spec = NetworkSpec::new(4).layer(LayerSpec::Dense {
            units: 2,
            activation: Activation::Linear,
        });
        let net = spec.build(1).unwrap();
        let plan = FrozenPlan::from_spec_weights("m", &spec, &net.export_weights()).unwrap();
        assert!(matches!(
            plan.predict(&[0.0; 3]),
            Err(NeuralError::ShapeMismatch { expected: 4, actual: 3 })
        ));
        let mut out = Vec::new();
        assert!(plan.predict_batch(&[0.0; 7], &mut out).is_err());
        assert!(plan.predict_batch(&[], &mut out).is_err());
    }

    #[test]
    fn validate_weights_names_offending_layer() {
        let spec = kitchen_sink_spec();
        let net = spec.build(1).unwrap();
        let mut weights = net.export_weights();
        // Tamper with the dense layer's bias length.
        let last = weights.last_mut().unwrap();
        last[1].push(0.0);
        let err = validate_weights(&spec, &weights).unwrap_err();
        assert!(matches!(err, NeuralError::InvalidWeights(_)), "{err:?}");
        assert!(err.to_string().contains("layer 9"), "{err}");
    }

    #[test]
    fn validate_weights_rejects_wrong_layer_and_tensor_counts() {
        let spec = NetworkSpec::new(4).layer(LayerSpec::Dense {
            units: 2,
            activation: Activation::Linear,
        });
        let net = spec.build(1).unwrap();
        let mut weights = net.export_weights();
        weights.pop();
        assert!(validate_weights(&spec, &weights).is_err());
        let mut weights = net.export_weights();
        weights[0].pop();
        assert!(validate_weights(&spec, &weights).is_err());
    }

    #[test]
    fn plan_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<FrozenPlan>();
    }

    #[test]
    fn expected_shapes_cover_every_layer() {
        let spec = kitchen_sink_spec();
        let shapes = expected_tensor_shapes(&spec).unwrap();
        assert_eq!(shapes.len(), spec.layers.len());
        let net = spec.build(1).unwrap();
        let exported = net.export_weights();
        for (expected, actual) in shapes.iter().zip(&exported) {
            assert_eq!(expected.len(), actual.len());
            for (want, have) in expected.iter().zip(actual) {
                assert_eq!(*want, have.len());
            }
        }
    }
}
