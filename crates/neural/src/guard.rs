//! Fault-tolerant training: divergence guards, checkpoint/rollback with
//! learning-rate backoff, and deterministic save/resume.
//!
//! [`GuardedTrainer`] wraps the plain [`crate::train::Trainer`] loop with
//! a recovery layer:
//!
//! * **Divergence detection** — every batch loss is checked for
//!   non-finite values and (optionally) an explosion threshold, and the
//!   accumulated gradient norm can be bounded before each optimizer step.
//! * **Checkpoint / rollback** — weights, optimizer state and history are
//!   snapshotted on a configurable epoch cadence; on divergence the run
//!   rolls back to the last good checkpoint and retries with the learning
//!   rate scaled down by [`GuardConfig::lr_backoff`]. Retries are bounded;
//!   exhausting them yields [`NeuralError::TrainingDiverged`] carrying the
//!   full [`RecoveryEvent`] history.
//! * **Deterministic resume** — [`Checkpoint`]s serialize to JSON with
//!   exact float round-tripping, so a run interrupted at an epoch boundary
//!   and resumed from disk produces bit-identical weights to an
//!   uninterrupted run of the same seed (for dropout-free networks; see
//!   *Determinism* below).
//! * **Fault injection** — a [`faultsim::FaultPlan`] can poison chosen
//!   batches with NaN inputs to exercise the recovery path end to end.
//!
//! # Determinism
//!
//! Epoch shuffles are derived statelessly from `seed + epoch`, weights
//! and optimizer moments are captured exactly, so resume is bit-exact —
//! except for [`crate::layers::Dropout`], whose internal RNG stream is
//! not part of the checkpoint. The paper's Table 1 MS network contains no
//! dropout and resumes exactly.

use std::path::Path;
use std::sync::Arc;

use faultsim::FaultPlan;
use serde::{Deserialize, Serialize};

use crate::optim::{Optimizer, OptimizerState};
use crate::train::{Dataset, History, TrainConfig};
use crate::{Network, NeuralError};

/// Divergence-guard and checkpoint policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GuardConfig {
    /// Epochs between weight/optimizer snapshots (≥ 1).
    pub checkpoint_every: usize,
    /// Rollback attempts before giving up with
    /// [`NeuralError::TrainingDiverged`].
    pub max_retries: usize,
    /// Learning-rate multiplier applied on every rollback, in `(0, 1]`.
    pub lr_backoff: f32,
    /// Treat any batch loss above this value as divergence.
    pub max_loss: Option<f32>,
    /// Treat any accumulated gradient norm above this value as divergence
    /// (checked per batch, before the optimizer step).
    pub max_grad_norm: Option<f32>,
}

impl Default for GuardConfig {
    fn default() -> Self {
        Self {
            checkpoint_every: 5,
            max_retries: 3,
            lr_backoff: 0.5,
            max_loss: None,
            max_grad_norm: None,
        }
    }
}

/// What triggered a divergence.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DivergenceCause {
    /// A batch produced a NaN/infinite loss.
    NonFiniteLoss,
    /// A batch loss exceeded [`GuardConfig::max_loss`].
    LossExplosion {
        /// The configured threshold that was exceeded.
        limit: f32,
    },
    /// The accumulated gradient norm exceeded
    /// [`GuardConfig::max_grad_norm`] (or was non-finite).
    GradientExplosion {
        /// The configured threshold that was exceeded.
        limit: f32,
    },
    /// The validation loss came back non-finite.
    NonFiniteValidation,
}

/// One recovery action taken by the guard.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryEvent {
    /// Epoch in which the divergence was detected.
    pub epoch: usize,
    /// Batch index within the epoch (`None` for validation-time
    /// divergence).
    pub batch: Option<usize>,
    /// What triggered the divergence.
    pub cause: DivergenceCause,
    /// Epoch of the checkpoint the run rolled back to.
    pub rolled_back_to: usize,
    /// Learning rate in effect after the backoff.
    pub learning_rate: f32,
}

/// A serializable training snapshot: everything needed to continue a run
/// exactly where it stopped.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Checkpoint {
    /// Number of completed epochs.
    pub epochs_done: usize,
    /// Network weights at the snapshot.
    pub weights: Vec<Vec<Vec<f32>>>,
    /// Optimizer state at the snapshot.
    pub optimizer: OptimizerState,
    /// Learning rate in effect (reflects any backoff so far).
    pub learning_rate: f32,
    /// Training-loss history up to the snapshot.
    pub train_loss: Vec<f32>,
    /// Validation-loss history up to the snapshot.
    pub val_loss: Vec<f32>,
    /// Best validation epoch so far, if tracked.
    pub best_epoch: Option<usize>,
    /// Best validation loss so far, if tracked.
    pub best_val: Option<f32>,
    /// Weights of the best validation epoch, if tracked.
    pub best_weights: Option<Vec<Vec<Vec<f32>>>>,
}

impl Checkpoint {
    /// Atomically writes the checkpoint as JSON (`path.tmp` + rename), so
    /// an interrupted save never leaves a truncated checkpoint behind.
    ///
    /// # Errors
    ///
    /// Returns [`NeuralError::Io`] on filesystem failure.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), NeuralError> {
        let path = path.as_ref();
        let text =
            serde_json::to_string(self).map_err(|e| NeuralError::Serde(e.to_string()))?;
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = std::path::PathBuf::from(tmp);
        std::fs::write(&tmp, text).map_err(|e| NeuralError::Io(e.to_string()))?;
        std::fs::rename(&tmp, path).map_err(|e| NeuralError::Io(e.to_string()))
    }

    /// Loads a checkpoint previously written by [`Checkpoint::save`].
    ///
    /// # Errors
    ///
    /// Returns [`NeuralError::Io`] if the file cannot be read, or
    /// [`NeuralError::Serde`] if it does not parse as a checkpoint.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, NeuralError> {
        let text = std::fs::read_to_string(path.as_ref())
            .map_err(|e| NeuralError::Io(e.to_string()))?;
        serde_json::from_str(&text).map_err(|e| NeuralError::Serde(e.to_string()))
    }
}

/// Result of a guarded training run.
#[derive(Debug, Clone, PartialEq)]
pub struct GuardedOutcome {
    /// Per-epoch loss history (post-rollback epochs overwrite the rolled
    /// back ones, like the uninterrupted history they replay).
    pub history: History,
    /// Every rollback the guard performed, in order.
    pub recovery: Vec<RecoveryEvent>,
    /// Number of snapshots taken (periodic plus the final one).
    pub checkpoints_taken: usize,
    /// Snapshot of the finished run — resume from here to train further,
    /// or persist it with [`Checkpoint::save`].
    pub checkpoint: Checkpoint,
}

struct EpochDivergence {
    batch: usize,
    cause: DivergenceCause,
}

struct RunState {
    epochs_done: usize,
    optimizer: Box<dyn Optimizer>,
    history: History,
    best_val: Option<f32>,
    best_weights: Option<Vec<Vec<Vec<f32>>>>,
    retries: usize,
    recovery: Vec<RecoveryEvent>,
    checkpoint: Checkpoint,
    checkpoints_taken: usize,
}

/// A [`crate::train::Trainer`] with divergence guards and
/// checkpoint/rollback recovery.
#[derive(Debug, Clone)]
pub struct GuardedTrainer {
    config: TrainConfig,
    guard: GuardConfig,
    plan: Option<Arc<FaultPlan>>,
}

impl GuardedTrainer {
    /// Creates a guarded trainer.
    ///
    /// # Errors
    ///
    /// Returns [`NeuralError::InvalidSpec`] if `guard.checkpoint_every`
    /// is zero or `guard.lr_backoff` is outside `(0, 1]`.
    pub fn new(config: TrainConfig, guard: GuardConfig) -> Result<Self, NeuralError> {
        if guard.checkpoint_every == 0 {
            return Err(NeuralError::InvalidSpec(
                "checkpoint_every must be at least 1".into(),
            ));
        }
        if !(guard.lr_backoff > 0.0 && guard.lr_backoff <= 1.0) {
            return Err(NeuralError::InvalidSpec(format!(
                "lr_backoff must be in (0, 1], got {}",
                guard.lr_backoff
            )));
        }
        Ok(Self {
            config,
            guard,
            plan: None,
        })
    }

    /// Attaches a fault-injection plan (testing aid: poisons scheduled
    /// batches with NaN inputs).
    pub fn with_fault_plan(mut self, plan: Arc<FaultPlan>) -> Self {
        self.plan = Some(plan);
        self
    }

    /// The training configuration.
    pub fn config(&self) -> &TrainConfig {
        &self.config
    }

    /// The guard configuration.
    pub fn guard(&self) -> &GuardConfig {
        &self.guard
    }

    /// Trains `network` for the configured number of epochs, recovering
    /// from divergence by checkpoint rollback + learning-rate backoff.
    ///
    /// # Errors
    ///
    /// [`NeuralError::ShapeMismatch`] on dataset/network mismatch;
    /// [`NeuralError::TrainingDiverged`] once
    /// [`GuardConfig::max_retries`] rollbacks have been exhausted.
    pub fn fit(
        &self,
        network: &mut Network,
        train: &Dataset,
        validation: Option<&Dataset>,
    ) -> Result<GuardedOutcome, NeuralError> {
        self.check_shapes(network, train)?;
        let state = self.fresh_state(network);
        self.run(network, train, validation, state, self.config.epochs, true)
    }

    /// Trains for `stop_after` epochs only, simulating an interrupted
    /// run: best-epoch weight restoration is skipped so the returned
    /// [`GuardedOutcome::checkpoint`] continues the run exactly.
    ///
    /// # Errors
    ///
    /// As for [`GuardedTrainer::fit`].
    pub fn fit_interrupted(
        &self,
        network: &mut Network,
        train: &Dataset,
        validation: Option<&Dataset>,
        stop_after: usize,
    ) -> Result<GuardedOutcome, NeuralError> {
        self.check_shapes(network, train)?;
        let state = self.fresh_state(network);
        let until = stop_after.min(self.config.epochs);
        self.run(network, train, validation, state, until, false)
    }

    /// Continues a run from `checkpoint` to the configured epoch count,
    /// restoring weights, optimizer state, learning rate and history.
    ///
    /// # Errors
    ///
    /// As for [`GuardedTrainer::fit`], plus
    /// [`NeuralError::InvalidWeights`] if the checkpoint does not match
    /// the network or optimizer kind.
    pub fn resume(
        &self,
        network: &mut Network,
        train: &Dataset,
        validation: Option<&Dataset>,
        checkpoint: &Checkpoint,
    ) -> Result<GuardedOutcome, NeuralError> {
        self.check_shapes(network, train)?;
        network.import_weights(&checkpoint.weights)?;
        let mut optimizer = self.config.optimizer.build();
        optimizer.import_state(&checkpoint.optimizer)?;
        optimizer.set_learning_rate(checkpoint.learning_rate);
        let state = RunState {
            epochs_done: checkpoint.epochs_done,
            optimizer,
            history: History {
                train_loss: checkpoint.train_loss.clone(),
                val_loss: checkpoint.val_loss.clone(),
                best_epoch: checkpoint.best_epoch,
            },
            best_val: checkpoint.best_val,
            best_weights: checkpoint.best_weights.clone(),
            retries: 0,
            recovery: Vec::new(),
            checkpoint: checkpoint.clone(),
            checkpoints_taken: 0,
        };
        self.run(network, train, validation, state, self.config.epochs, true)
    }

    fn check_shapes(&self, network: &Network, train: &Dataset) -> Result<(), NeuralError> {
        if train.input_width() != network.input_len() {
            return Err(NeuralError::ShapeMismatch {
                expected: network.input_len(),
                actual: train.input_width(),
            });
        }
        if train.target_width() != network.output_len() {
            return Err(NeuralError::ShapeMismatch {
                expected: network.output_len(),
                actual: train.target_width(),
            });
        }
        Ok(())
    }

    fn fresh_state(&self, network: &Network) -> RunState {
        let optimizer = self.config.optimizer.build();
        let checkpoint = Checkpoint {
            epochs_done: 0,
            weights: network.export_weights(),
            optimizer: optimizer.export_state(),
            learning_rate: optimizer.learning_rate(),
            train_loss: Vec::new(),
            val_loss: Vec::new(),
            best_epoch: None,
            best_val: None,
            best_weights: None,
        };
        RunState {
            epochs_done: 0,
            optimizer,
            history: History {
                train_loss: Vec::new(),
                val_loss: Vec::new(),
                best_epoch: None,
            },
            best_val: None,
            best_weights: None,
            retries: 0,
            recovery: Vec::new(),
            checkpoint,
            checkpoints_taken: 0,
        }
    }

    fn snapshot(&self, network: &Network, state: &RunState) -> Checkpoint {
        Checkpoint {
            epochs_done: state.epochs_done,
            weights: network.export_weights(),
            optimizer: state.optimizer.export_state(),
            learning_rate: state.optimizer.learning_rate(),
            train_loss: state.history.train_loss.clone(),
            val_loss: state.history.val_loss.clone(),
            best_epoch: state.history.best_epoch,
            best_val: state.best_val,
            best_weights: state.best_weights.clone(),
        }
    }

    fn run(
        &self,
        network: &mut Network,
        train: &Dataset,
        validation: Option<&Dataset>,
        mut state: RunState,
        until: usize,
        restore_best: bool,
    ) -> Result<GuardedOutcome, NeuralError> {
        while state.epochs_done < until {
            if state.epochs_done.is_multiple_of(self.guard.checkpoint_every) {
                state.checkpoint = self.snapshot(network, &state);
                state.checkpoints_taken += 1;
            }
            let epoch = state.epochs_done;
            match self.run_epoch(network, &mut state.optimizer, train, epoch) {
                Ok(mean_loss) => {
                    state.history.train_loss.push(mean_loss);
                }
                Err(divergence) => {
                    self.rollback(
                        network,
                        &mut state,
                        epoch,
                        Some(divergence.batch),
                        divergence.cause,
                    )?;
                    continue;
                }
            }

            let mut stop_early = false;
            if let Some(val) = validation {
                let v = val.evaluate(network, self.config.loss);
                if !v.is_finite() {
                    // The pushed train loss belongs to the diverged epoch;
                    // rollback restores the checkpointed history anyway.
                    self.rollback(
                        network,
                        &mut state,
                        epoch,
                        None,
                        DivergenceCause::NonFiniteValidation,
                    )?;
                    continue;
                }
                state.history.val_loss.push(v);
                let improved = state.best_val.is_none_or(|b| v < b);
                if improved {
                    state.best_val = Some(v);
                    state.best_weights = Some(network.export_weights());
                    state.history.best_epoch = Some(epoch);
                }
                if let Some(target) = self.config.stop_at_val_loss {
                    if v <= target {
                        stop_early = true;
                    }
                }
            }
            state.epochs_done += 1;
            if stop_early {
                break;
            }
        }

        // Final snapshot of the running state (pre best-restore), so the
        // outcome's checkpoint resumes exactly where this run stopped.
        state.checkpoint = self.snapshot(network, &state);
        state.checkpoints_taken += 1;

        if restore_best && self.config.restore_best {
            if let Some(weights) = &state.best_weights {
                network.import_weights(weights)?;
            }
        }
        Ok(GuardedOutcome {
            history: state.history,
            recovery: state.recovery,
            checkpoints_taken: state.checkpoints_taken,
            checkpoint: state.checkpoint,
        })
    }

    fn run_epoch(
        &self,
        network: &mut Network,
        optimizer: &mut Box<dyn Optimizer>,
        train: &Dataset,
        epoch: usize,
    ) -> Result<f32, EpochDivergence> {
        let data = if self.config.shuffle {
            train.shuffled(self.config.seed.wrapping_add(epoch as u64))
        } else {
            train.clone()
        };
        let mut epoch_loss = 0.0f64;
        let mut processed = 0usize;
        let mut batch_idx = 0usize;
        while processed < data.len() {
            let end = (processed + self.config.batch_size).min(data.len());
            let poisoned = self
                .plan
                .as_deref()
                .is_some_and(|p| p.poison_batch(epoch, batch_idx));
            network.zero_grads();
            for i in processed..end {
                let value = if poisoned && i == processed {
                    let nan_input = vec![f32::NAN; data.input_width()];
                    network.train_step(&nan_input, &data.targets()[i], self.config.loss)
                } else {
                    network.train_step(&data.inputs()[i], &data.targets()[i], self.config.loss)
                };
                if !value.is_finite() {
                    return Err(EpochDivergence {
                        batch: batch_idx,
                        cause: DivergenceCause::NonFiniteLoss,
                    });
                }
                if let Some(limit) = self.guard.max_loss {
                    if value > limit {
                        return Err(EpochDivergence {
                            batch: batch_idx,
                            cause: DivergenceCause::LossExplosion { limit },
                        });
                    }
                }
                epoch_loss += f64::from(value);
            }
            if let Some(limit) = self.guard.max_grad_norm {
                let norm = network.grad_norm();
                if !norm.is_finite() || norm > limit {
                    return Err(EpochDivergence {
                        batch: batch_idx,
                        cause: DivergenceCause::GradientExplosion { limit },
                    });
                }
            }
            network.apply_gradients(optimizer.as_mut(), end - processed);
            processed = end;
            batch_idx += 1;
        }
        Ok((epoch_loss / data.len() as f64) as f32)
    }

    fn rollback(
        &self,
        network: &mut Network,
        state: &mut RunState,
        epoch: usize,
        batch: Option<usize>,
        cause: DivergenceCause,
    ) -> Result<(), NeuralError> {
        if state.retries >= self.guard.max_retries {
            return Err(NeuralError::TrainingDiverged {
                epoch,
                retries: state.retries,
                recovery: state.recovery.clone(),
            });
        }
        state.retries += 1;
        let checkpoint = &state.checkpoint;
        network.import_weights(&checkpoint.weights)?;
        let mut optimizer = self.config.optimizer.build();
        optimizer.import_state(&checkpoint.optimizer)?;
        let lr = checkpoint.learning_rate * self.guard.lr_backoff;
        optimizer.set_learning_rate(lr);
        state.optimizer = optimizer;
        state.history = History {
            train_loss: checkpoint.train_loss.clone(),
            val_loss: checkpoint.val_loss.clone(),
            best_epoch: checkpoint.best_epoch,
        };
        state.best_val = checkpoint.best_val;
        state.best_weights = checkpoint.best_weights.clone();
        state.epochs_done = checkpoint.epochs_done;
        state.recovery.push(RecoveryEvent {
            epoch,
            batch,
            cause,
            rolled_back_to: checkpoint.epochs_done,
            learning_rate: lr,
        });
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{LayerSpec, NetworkSpec};
    use crate::{Activation, Loss};

    fn linear_dataset(n: usize) -> Dataset {
        let inputs: Vec<Vec<f32>> = (0..n)
            .map(|i| {
                let a = (i % 10) as f32 / 10.0;
                let b = ((i / 10) % 10) as f32 / 10.0;
                vec![a, b]
            })
            .collect();
        let targets = inputs
            .iter()
            .map(|v| vec![0.5 * v[0] + 0.2 * v[1]])
            .collect();
        Dataset::new(inputs, targets).unwrap()
    }

    fn small_net() -> Network {
        NetworkSpec::new(2)
            .layer(LayerSpec::Dense {
                units: 1,
                activation: Activation::Linear,
            })
            .build(1)
            .unwrap()
    }

    fn config(epochs: usize) -> TrainConfig {
        TrainConfig {
            epochs,
            batch_size: 16,
            loss: Loss::Mse,
            optimizer: crate::optim::OptimizerSpec::Adam { lr: 0.01 },
            ..TrainConfig::default()
        }
    }

    fn guard() -> GuardConfig {
        GuardConfig {
            checkpoint_every: 1,
            max_retries: 3,
            lr_backoff: 0.5,
            ..GuardConfig::default()
        }
    }

    #[test]
    fn config_validation() {
        let bad = GuardConfig {
            checkpoint_every: 0,
            ..GuardConfig::default()
        };
        assert!(GuardedTrainer::new(config(1), bad).is_err());
        let bad = GuardConfig {
            lr_backoff: 0.0,
            ..GuardConfig::default()
        };
        assert!(GuardedTrainer::new(config(1), bad).is_err());
        let bad = GuardConfig {
            lr_backoff: 1.5,
            ..GuardConfig::default()
        };
        assert!(GuardedTrainer::new(config(1), bad).is_err());
    }

    #[test]
    fn clean_run_matches_plain_trainer() {
        let data = linear_dataset(100);
        let mut guarded_net = small_net();
        let outcome = GuardedTrainer::new(config(30), guard())
            .unwrap()
            .fit(&mut guarded_net, &data, None)
            .unwrap();
        let mut plain_net = small_net();
        let history = crate::train::Trainer::new(config(30))
            .fit(&mut plain_net, &data, None)
            .unwrap();
        assert!(outcome.recovery.is_empty());
        assert_eq!(outcome.history.train_loss, history.train_loss);
        assert_eq!(guarded_net.export_weights(), plain_net.export_weights());
    }

    #[test]
    fn injected_nan_batch_triggers_rollback_and_backoff() {
        let data = linear_dataset(100);
        let mut net = small_net();
        let plan = Arc::new(FaultPlan::new().with_nan_batch(3, 1));
        let trainer = GuardedTrainer::new(config(60), guard())
            .unwrap()
            .with_fault_plan(Arc::clone(&plan));
        let outcome = trainer.fit(&mut net, &data, None).unwrap();
        assert_eq!(outcome.recovery.len(), 1);
        let event = &outcome.recovery[0];
        assert_eq!(event.epoch, 3);
        assert_eq!(event.batch, Some(1));
        assert_eq!(event.cause, DivergenceCause::NonFiniteLoss);
        assert_eq!(event.rolled_back_to, 3);
        assert_eq!(plan.events().len(), 1);
        // Training still converges after recovery.
        assert!(outcome.history.final_train_loss() < 1e-2);
    }

    #[test]
    fn exhausted_retries_yield_structured_error() {
        let data = linear_dataset(50);
        let mut net = small_net();
        // A max_loss of zero makes every epoch "diverge" immediately.
        let hopeless = GuardConfig {
            max_loss: Some(0.0),
            max_retries: 2,
            ..guard()
        };
        let err = GuardedTrainer::new(config(10), hopeless)
            .unwrap()
            .fit(&mut net, &data, None)
            .unwrap_err();
        match err {
            NeuralError::TrainingDiverged {
                epoch,
                retries,
                recovery,
            } => {
                assert_eq!(epoch, 0);
                assert_eq!(retries, 2);
                assert_eq!(recovery.len(), 2);
                // Backoff compounds across retries.
                assert!(recovery[1].learning_rate < recovery[0].learning_rate);
            }
            other => panic!("expected TrainingDiverged, got {other:?}"),
        }
    }

    #[test]
    fn gradient_norm_guard_fires() {
        let data = linear_dataset(50);
        let mut net = small_net();
        let strict = GuardConfig {
            max_grad_norm: Some(1e-12),
            max_retries: 1,
            ..guard()
        };
        let err = GuardedTrainer::new(config(5), strict)
            .unwrap()
            .fit(&mut net, &data, None)
            .unwrap_err();
        match err {
            NeuralError::TrainingDiverged { recovery, .. } => {
                assert!(matches!(
                    recovery[0].cause,
                    DivergenceCause::GradientExplosion { .. }
                ));
            }
            other => panic!("expected TrainingDiverged, got {other:?}"),
        }
    }

    #[test]
    fn checkpoint_file_roundtrip() {
        let data = linear_dataset(60);
        let mut net = small_net();
        let outcome = GuardedTrainer::new(config(4), guard())
            .unwrap()
            .fit_interrupted(&mut net, &data, None, 4)
            .unwrap();
        let dir = std::env::temp_dir().join(format!(
            "neural-guard-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ckpt.json");
        outcome.checkpoint.save(&path).unwrap();
        let loaded = Checkpoint::load(&path).unwrap();
        assert_eq!(loaded, outcome.checkpoint);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn validation_best_restore_matches_plain_trainer() {
        let all = linear_dataset(100);
        let (train, val) = all.split(0.8).unwrap();
        let mut guarded_net = small_net();
        let outcome = GuardedTrainer::new(config(20), guard())
            .unwrap()
            .fit(&mut guarded_net, &train, Some(&val))
            .unwrap();
        let mut plain_net = small_net();
        let history = crate::train::Trainer::new(config(20))
            .fit(&mut plain_net, &train, Some(&val))
            .unwrap();
        assert_eq!(outcome.history.best_epoch, history.best_epoch);
        assert_eq!(outcome.history.val_loss, history.val_loss);
        assert_eq!(guarded_net.export_weights(), plain_net.export_weights());
    }
}
