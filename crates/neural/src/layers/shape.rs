//! Shape-bookkeeping layers: flatten and reshape.
//!
//! Our samples are flat `f32` slices, so these layers are data no-ops —
//! they exist so that network specs and summaries mirror the paper's
//! Table 1 (which lists explicit Reshape and Flatten rows) and so the
//! shape metadata (channels × length) flows correctly between layers.

use crate::layers::{Layer, LayerSummary};
use crate::NeuralError;

/// Flattens `channels × length` into a single vector (identity on data).
#[derive(Debug, Clone)]
pub struct Flatten {
    channels: usize,
    len: usize,
}

impl Flatten {
    /// Creates a flatten layer for a `channels × length` input.
    ///
    /// # Errors
    ///
    /// Returns [`NeuralError::InvalidSpec`] if either dimension is zero.
    pub fn new(channels: usize, len: usize) -> Result<Self, NeuralError> {
        if channels == 0 || len == 0 {
            return Err(NeuralError::InvalidSpec(
                "flatten dimensions must be non-zero".into(),
            ));
        }
        Ok(Self { channels, len })
    }
}

impl Layer for Flatten {
    fn kind(&self) -> &'static str {
        "Flatten"
    }

    fn input_len(&self) -> usize {
        self.channels * self.len
    }

    fn output_len(&self) -> usize {
        self.channels * self.len
    }

    fn forward(&mut self, input: &[f32], _training: bool) -> Vec<f32> {
        assert_eq!(input.len(), self.input_len(), "flatten input length");
        input.to_vec()
    }

    fn backward(&mut self, grad_output: &[f32]) -> Vec<f32> {
        assert_eq!(grad_output.len(), self.output_len(), "flatten grad length");
        grad_output.to_vec()
    }

    fn summary(&self) -> LayerSummary {
        LayerSummary {
            kind: "Flatten".into(),
            output_shape: format!("{}", self.channels * self.len),
            config: format!("{} x {}", self.channels, self.len),
            activation: String::new(),
            parameters: 0,
        }
    }
}

/// Reshapes a flat vector into `channels × length` (identity on data) —
/// the paper's layer 2 that turns the raw spectrum into a 1-channel
/// sequence for the first convolution.
#[derive(Debug, Clone)]
pub struct Reshape {
    channels: usize,
    len: usize,
}

impl Reshape {
    /// Creates a reshape layer producing `channels × length`.
    ///
    /// # Errors
    ///
    /// Returns [`NeuralError::InvalidSpec`] if either dimension is zero.
    pub fn new(channels: usize, len: usize) -> Result<Self, NeuralError> {
        if channels == 0 || len == 0 {
            return Err(NeuralError::InvalidSpec(
                "reshape dimensions must be non-zero".into(),
            ));
        }
        Ok(Self { channels, len })
    }
}

impl Layer for Reshape {
    fn kind(&self) -> &'static str {
        "Reshape"
    }

    fn input_len(&self) -> usize {
        self.channels * self.len
    }

    fn output_len(&self) -> usize {
        self.channels * self.len
    }

    fn forward(&mut self, input: &[f32], _training: bool) -> Vec<f32> {
        assert_eq!(input.len(), self.input_len(), "reshape input length");
        input.to_vec()
    }

    fn backward(&mut self, grad_output: &[f32]) -> Vec<f32> {
        assert_eq!(grad_output.len(), self.output_len(), "reshape grad length");
        grad_output.to_vec()
    }

    fn summary(&self) -> LayerSummary {
        LayerSummary {
            kind: "Reshape".into(),
            output_shape: format!("{} x {}", self.channels, self.len),
            config: String::new(),
            activation: String::new(),
            parameters: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flatten_is_identity_on_data() {
        let mut layer = Flatten::new(2, 3).unwrap();
        let x = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        assert_eq!(layer.forward(&x, false), x.to_vec());
        assert_eq!(layer.backward(&x), x.to_vec());
    }

    #[test]
    fn reshape_is_identity_on_data() {
        let mut layer = Reshape::new(1, 4).unwrap();
        let x = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(layer.forward(&x, false), x.to_vec());
    }

    #[test]
    fn summaries_describe_shapes() {
        let f = Flatten::new(15, 10).unwrap();
        assert_eq!(f.summary().output_shape, "150");
        let r = Reshape::new(1, 397).unwrap();
        assert_eq!(r.summary().output_shape, "1 x 397");
    }

    #[test]
    fn zero_dims_rejected() {
        assert!(Flatten::new(0, 3).is_err());
        assert!(Reshape::new(3, 0).is_err());
    }
}
