//! Locally connected 1-D layer (unshared convolution weights).
//!
//! The paper's best NMR model is "a single, locally connected 1-D
//! convolutional layer" (§III.B.2/3) — convolution geometry, but with an
//! independent kernel per output position. With 4 filters, kernel 9 and
//! stride 9 on a 1700-point spectrum this layer plus a Dense(4) head has
//! exactly the paper's 10 532 trainable parameters.

use rand_chacha::ChaCha8Rng;

use crate::init::Init;
use crate::layers::{conv_output_len, import_into, Layer, LayerSummary};
use crate::{Activation, NeuralError};

/// A locally connected 1-D layer: like [`crate::layers::Conv1d`] but with
/// unshared weights per output position.
///
/// Layout: input `in_channels × in_len` channels-first; output
/// `filters × out_len` channels-first. Weights are
/// `weights[op][f][ic][k]` flattened; biases are `bias[op][f]`.
#[derive(Debug, Clone)]
pub struct LocallyConnected1d {
    in_channels: usize,
    in_len: usize,
    filters: usize,
    kernel: usize,
    stride: usize,
    out_len: usize,
    activation: Activation,
    weights: Vec<f32>,
    bias: Vec<f32>,
    grad_weights: Vec<f32>,
    grad_bias: Vec<f32>,
    cached_input: Vec<f32>,
    cached_output: Vec<f32>,
}

impl LocallyConnected1d {
    /// Creates a locally connected layer.
    ///
    /// # Errors
    ///
    /// Returns [`NeuralError::InvalidSpec`] if any dimension is zero or
    /// the kernel exceeds the input length.
    pub fn new(
        in_channels: usize,
        in_len: usize,
        filters: usize,
        kernel: usize,
        stride: usize,
        activation: Activation,
        rng: &mut ChaCha8Rng,
    ) -> Result<Self, NeuralError> {
        if in_channels == 0 || filters == 0 {
            return Err(NeuralError::InvalidSpec(
                "locally connected channels and filters must be non-zero".into(),
            ));
        }
        let out_len = conv_output_len(in_len, kernel, stride)?;
        let fan_in = in_channels * kernel;
        let mut weights = vec![0.0; out_len * filters * in_channels * kernel];
        Init::for_activation(activation).fill(&mut weights, fan_in, filters, rng);
        Ok(Self {
            in_channels,
            in_len,
            filters,
            kernel,
            stride,
            out_len,
            activation,
            grad_weights: vec![0.0; weights.len()],
            weights,
            bias: vec![0.0; out_len * filters],
            grad_bias: vec![0.0; out_len * filters],
            cached_input: Vec::new(),
            cached_output: Vec::new(),
        })
    }

    /// Spatial output length.
    pub fn out_len(&self) -> usize {
        self.out_len
    }

    fn w_index(&self, op: usize, f: usize, ic: usize, k: usize) -> usize {
        ((op * self.filters + f) * self.in_channels + ic) * self.kernel + k
    }
}

impl Layer for LocallyConnected1d {
    fn kind(&self) -> &'static str {
        "LocallyConnected1D"
    }

    fn input_len(&self) -> usize {
        self.in_channels * self.in_len
    }

    fn output_len(&self) -> usize {
        self.filters * self.out_len
    }

    fn forward(&mut self, input: &[f32], _training: bool) -> Vec<f32> {
        assert_eq!(input.len(), self.input_len(), "local1d input length");
        let mut out = vec![0.0f32; self.output_len()];
        for op in 0..self.out_len {
            let start = op * self.stride;
            for f in 0..self.filters {
                let mut acc = self.bias[op * self.filters + f];
                for ic in 0..self.in_channels {
                    let w_base = self.w_index(op, f, ic, 0);
                    let x_base = ic * self.in_len + start;
                    let w = &self.weights[w_base..w_base + self.kernel];
                    let x = &input[x_base..x_base + self.kernel];
                    for (wi, xi) in w.iter().zip(x) {
                        acc += wi * xi;
                    }
                }
                out[f * self.out_len + op] = acc;
            }
        }
        if self.activation == Activation::Softmax {
            let mut grouped = vec![0.0f32; out.len()];
            for f in 0..self.filters {
                for op in 0..self.out_len {
                    grouped[op * self.filters + f] = out[f * self.out_len + op];
                }
            }
            self.activation.apply(&mut grouped, self.filters);
            for f in 0..self.filters {
                for op in 0..self.out_len {
                    out[f * self.out_len + op] = grouped[op * self.filters + f];
                }
            }
        } else {
            self.activation.apply(&mut out, 1);
        }
        self.cached_input = input.to_vec();
        self.cached_output = out.clone();
        out
    }

    fn backward(&mut self, grad_output: &[f32]) -> Vec<f32> {
        assert_eq!(grad_output.len(), self.output_len(), "local1d grad length");
        assert!(
            !self.cached_input.is_empty(),
            "backward called before forward"
        );
        let mut dz = grad_output.to_vec();
        if self.activation == Activation::Softmax {
            let mut g_grouped = vec![0.0f32; dz.len()];
            let mut y_grouped = vec![0.0f32; dz.len()];
            for f in 0..self.filters {
                for op in 0..self.out_len {
                    g_grouped[op * self.filters + f] = dz[f * self.out_len + op];
                    y_grouped[op * self.filters + f] = self.cached_output[f * self.out_len + op];
                }
            }
            self.activation
                .backward(&y_grouped, &mut g_grouped, self.filters);
            for f in 0..self.filters {
                for op in 0..self.out_len {
                    dz[f * self.out_len + op] = g_grouped[op * self.filters + f];
                }
            }
        } else {
            self.activation.backward(&self.cached_output, &mut dz, 1);
        }

        let mut grad_in = vec![0.0f32; self.input_len()];
        for op in 0..self.out_len {
            let start = op * self.stride;
            for f in 0..self.filters {
                let g = dz[f * self.out_len + op];
                if g == 0.0 {
                    continue;
                }
                self.grad_bias[op * self.filters + f] += g;
                for ic in 0..self.in_channels {
                    let w_base = self.w_index(op, f, ic, 0);
                    let x_base = ic * self.in_len + start;
                    let gw = &mut self.grad_weights[w_base..w_base + self.kernel];
                    let x = &self.cached_input[x_base..x_base + self.kernel];
                    for (gwk, &xk) in gw.iter_mut().zip(x) {
                        *gwk += g * xk;
                    }
                    let gi = &mut grad_in[x_base..x_base + self.kernel];
                    let w = &self.weights[w_base..w_base + self.kernel];
                    for (gik, &wk) in gi.iter_mut().zip(w) {
                        *gik += g * wk;
                    }
                }
            }
        }
        grad_in
    }

    fn param_count(&self) -> usize {
        self.weights.len() + self.bias.len()
    }

    fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut [f32], &mut [f32])) {
        visitor(&mut self.weights, &mut self.grad_weights);
        visitor(&mut self.bias, &mut self.grad_bias);
    }

    fn zero_grads(&mut self) {
        self.grad_weights.iter_mut().for_each(|g| *g = 0.0);
        self.grad_bias.iter_mut().for_each(|g| *g = 0.0);
    }

    fn summary(&self) -> LayerSummary {
        LayerSummary {
            kind: "LocallyConnected1D".into(),
            output_shape: format!("{} x {}", self.filters, self.out_len),
            config: format!(
                "filters={} kernel={} stride={}",
                self.filters, self.kernel, self.stride
            ),
            activation: self.activation.short_name().into(),
            parameters: self.param_count(),
        }
    }

    fn export_params(&self) -> Vec<Vec<f32>> {
        vec![self.weights.clone(), self.bias.clone()]
    }

    fn import_params(&mut self, params: &[Vec<f32>]) -> Result<(), NeuralError> {
        let Self { weights, bias, .. } = self;
        import_into("LocallyConnected1D", &mut [weights, bias], params)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(17)
    }

    #[test]
    fn paper_parameter_count_is_exact() {
        // DESIGN.md §5: 1700 input, 4 filters, k=9, s=9 -> out_len 188,
        // params 188*4*(9+1) = 7520; plus Dense(188*4 -> 4) = 3012;
        // total 10532, matching the paper exactly.
        let layer =
            LocallyConnected1d::new(1, 1700, 4, 9, 9, Activation::Relu, &mut rng()).unwrap();
        assert_eq!(layer.out_len(), 188);
        assert_eq!(layer.param_count(), 7_520);
        let dense_params = (188 * 4) * 4 + 4;
        assert_eq!(layer.param_count() + dense_params, 10_532);
    }

    #[test]
    fn unshared_weights_differ_from_conv() {
        // A locally connected layer has out_len times the weights of the
        // equivalent conv layer.
        let local = LocallyConnected1d::new(1, 20, 2, 4, 4, Activation::Linear, &mut rng()).unwrap();
        assert_eq!(local.param_count(), 5 * (2 * 4) + 5 * 2);
    }

    #[test]
    fn forward_uses_position_specific_kernels() {
        let mut layer =
            LocallyConnected1d::new(1, 4, 1, 2, 2, Activation::Linear, &mut rng()).unwrap();
        // Two output positions; kernel at position 0 = [1, 0], at 1 = [0, 1].
        layer
            .import_params(&[vec![1.0, 0.0, 0.0, 1.0], vec![0.0, 0.0]])
            .unwrap();
        let out = layer.forward(&[5.0, 6.0, 7.0, 8.0], false);
        assert_eq!(out, vec![5.0, 8.0]);
    }

    #[test]
    fn backward_matches_numeric_gradients() {
        let mut layer =
            LocallyConnected1d::new(1, 10, 2, 3, 3, Activation::Tanh, &mut rng()).unwrap();
        let input: Vec<f32> = (0..10).map(|i| ((i as f32) * 0.43).sin()).collect();
        let upstream: Vec<f32> = (0..layer.output_len())
            .map(|i| 1.0 - 0.3 * i as f32)
            .collect();
        layer.forward(&input, true);
        layer.zero_grads();
        let grad_in = layer.backward(&upstream);

        let loss = |l: &mut LocallyConnected1d, x: &[f32]| -> f32 {
            l.forward(x, false)
                .iter()
                .zip(&upstream)
                .map(|(y, u)| y * u)
                .sum()
        };
        let eps = 1e-3;
        for i in 0..input.len() {
            let mut hi = input.clone();
            hi[i] += eps;
            let mut lo = input.clone();
            lo[i] -= eps;
            let num = (loss(&mut layer, &hi) - loss(&mut layer, &lo)) / (2.0 * eps);
            assert!(
                (grad_in[i] - num).abs() < 1e-2,
                "input grad {i}: analytic {} numeric {num}",
                grad_in[i]
            );
        }
    }

    #[test]
    fn import_export_roundtrip() {
        let mut a =
            LocallyConnected1d::new(1, 12, 2, 3, 3, Activation::Relu, &mut rng()).unwrap();
        let mut b = LocallyConnected1d::new(
            1,
            12,
            2,
            3,
            3,
            Activation::Relu,
            &mut ChaCha8Rng::seed_from_u64(1234),
        )
        .unwrap();
        b.import_params(&a.export_params()).unwrap();
        let x: Vec<f32> = (0..12).map(|i| i as f32 * 0.1).collect();
        assert_eq!(a.forward(&x, false), b.forward(&x, false));
    }

    #[test]
    fn rejects_invalid_spec() {
        assert!(LocallyConnected1d::new(1, 5, 0, 2, 1, Activation::Linear, &mut rng()).is_err());
        assert!(LocallyConnected1d::new(1, 5, 1, 6, 1, Activation::Linear, &mut rng()).is_err());
    }
}
