//! 1-D convolution with stride (valid padding, channels-first layout).

use rand_chacha::ChaCha8Rng;

use crate::init::Init;
use crate::layers::{conv_output_len, import_into, Layer, LayerSummary};
use crate::{Activation, NeuralError};

/// A strided 1-D convolution, `valid` padding, shared weights.
///
/// Data layout is channels-first: input is `in_channels × in_len` flattened
/// as `input[ch * in_len + pos]`; output is `filters × out_len` likewise.
/// Softmax activation normalizes across filters at each output position
/// (Keras channels-last softmax semantics — see [`Activation`]).
#[derive(Debug, Clone)]
pub struct Conv1d {
    in_channels: usize,
    in_len: usize,
    filters: usize,
    kernel: usize,
    stride: usize,
    out_len: usize,
    activation: Activation,
    /// `weights[f][ic][k]` flattened as `((f * in_channels) + ic) * kernel + k`.
    weights: Vec<f32>,
    bias: Vec<f32>,
    grad_weights: Vec<f32>,
    grad_bias: Vec<f32>,
    cached_input: Vec<f32>,
    cached_output: Vec<f32>,
}

impl Conv1d {
    /// Creates a convolutional layer.
    ///
    /// # Errors
    ///
    /// Returns [`NeuralError::InvalidSpec`] if any dimension is zero or
    /// the kernel exceeds the input length.
    pub fn new(
        in_channels: usize,
        in_len: usize,
        filters: usize,
        kernel: usize,
        stride: usize,
        activation: Activation,
        rng: &mut ChaCha8Rng,
    ) -> Result<Self, NeuralError> {
        if in_channels == 0 || filters == 0 {
            return Err(NeuralError::InvalidSpec(
                "conv1d channels and filters must be non-zero".into(),
            ));
        }
        let out_len = conv_output_len(in_len, kernel, stride)?;
        let fan_in = in_channels * kernel;
        let mut weights = vec![0.0; filters * in_channels * kernel];
        Init::for_activation(activation).fill(&mut weights, fan_in, filters, rng);
        Ok(Self {
            in_channels,
            in_len,
            filters,
            kernel,
            stride,
            out_len,
            activation,
            grad_weights: vec![0.0; weights.len()],
            weights,
            bias: vec![0.0; filters],
            grad_bias: vec![0.0; filters],
            cached_input: Vec::new(),
            cached_output: Vec::new(),
        })
    }

    /// Spatial output length.
    pub fn out_len(&self) -> usize {
        self.out_len
    }

    /// Number of filters (output channels).
    pub fn filters(&self) -> usize {
        self.filters
    }

}

impl Layer for Conv1d {
    fn kind(&self) -> &'static str {
        "Conv1D"
    }

    fn input_len(&self) -> usize {
        self.in_channels * self.in_len
    }

    fn output_len(&self) -> usize {
        self.filters * self.out_len
    }

    fn forward(&mut self, input: &[f32], _training: bool) -> Vec<f32> {
        assert_eq!(input.len(), self.input_len(), "conv1d input length");
        let mut out = vec![0.0f32; self.output_len()];
        for f in 0..self.filters {
            let bias = self.bias[f];
            for op in 0..self.out_len {
                let start = op * self.stride;
                let mut acc = bias;
                for ic in 0..self.in_channels {
                    let w_base = (f * self.in_channels + ic) * self.kernel;
                    let x_base = ic * self.in_len + start;
                    let w = &self.weights[w_base..w_base + self.kernel];
                    let x = &input[x_base..x_base + self.kernel];
                    let mut dot = 0.0f32;
                    for (wi, xi) in w.iter().zip(x) {
                        dot += wi * xi;
                    }
                    acc += dot;
                }
                out[f * self.out_len + op] = acc;
            }
        }
        // Softmax across channels at each position: regroup to
        // position-major, apply, regroup back.
        if self.activation == Activation::Softmax {
            let mut grouped = vec![0.0f32; out.len()];
            for f in 0..self.filters {
                for op in 0..self.out_len {
                    grouped[op * self.filters + f] = out[f * self.out_len + op];
                }
            }
            self.activation.apply(&mut grouped, self.filters);
            for f in 0..self.filters {
                for op in 0..self.out_len {
                    out[f * self.out_len + op] = grouped[op * self.filters + f];
                }
            }
        } else {
            self.activation.apply(&mut out, 1);
        }
        self.cached_input = input.to_vec();
        self.cached_output = out.clone();
        out
    }

    fn backward(&mut self, grad_output: &[f32]) -> Vec<f32> {
        assert_eq!(grad_output.len(), self.output_len(), "conv1d grad length");
        assert!(
            !self.cached_input.is_empty(),
            "backward called before forward"
        );
        // Activation backward.
        let mut dz = grad_output.to_vec();
        if self.activation == Activation::Softmax {
            let mut g_grouped = vec![0.0f32; dz.len()];
            let mut y_grouped = vec![0.0f32; dz.len()];
            for f in 0..self.filters {
                for op in 0..self.out_len {
                    g_grouped[op * self.filters + f] = dz[f * self.out_len + op];
                    y_grouped[op * self.filters + f] = self.cached_output[f * self.out_len + op];
                }
            }
            self.activation
                .backward(&y_grouped, &mut g_grouped, self.filters);
            for f in 0..self.filters {
                for op in 0..self.out_len {
                    dz[f * self.out_len + op] = g_grouped[op * self.filters + f];
                }
            }
        } else {
            self.activation.backward(&self.cached_output, &mut dz, 1);
        }

        let mut grad_in = vec![0.0f32; self.input_len()];
        for f in 0..self.filters {
            for op in 0..self.out_len {
                let g = dz[f * self.out_len + op];
                if g == 0.0 {
                    continue;
                }
                self.grad_bias[f] += g;
                let start = op * self.stride;
                for ic in 0..self.in_channels {
                    let w_base = (f * self.in_channels + ic) * self.kernel;
                    let x_base = ic * self.in_len + start;
                    let gw = &mut self.grad_weights[w_base..w_base + self.kernel];
                    let x = &self.cached_input[x_base..x_base + self.kernel];
                    for (gwk, &xk) in gw.iter_mut().zip(x) {
                        *gwk += g * xk;
                    }
                    let gi = &mut grad_in[x_base..x_base + self.kernel];
                    let w = &self.weights[w_base..w_base + self.kernel];
                    for (gik, &wk) in gi.iter_mut().zip(w) {
                        *gik += g * wk;
                    }
                }
            }
        }
        grad_in
    }

    fn param_count(&self) -> usize {
        self.weights.len() + self.bias.len()
    }

    fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut [f32], &mut [f32])) {
        visitor(&mut self.weights, &mut self.grad_weights);
        visitor(&mut self.bias, &mut self.grad_bias);
    }

    fn zero_grads(&mut self) {
        self.grad_weights.iter_mut().for_each(|g| *g = 0.0);
        self.grad_bias.iter_mut().for_each(|g| *g = 0.0);
    }

    fn summary(&self) -> LayerSummary {
        LayerSummary {
            kind: "Conv1D".into(),
            output_shape: format!("{} x {}", self.filters, self.out_len),
            config: format!(
                "filters={} kernel={} stride={}",
                self.filters, self.kernel, self.stride
            ),
            activation: self.activation.short_name().into(),
            parameters: self.param_count(),
        }
    }

    fn export_params(&self) -> Vec<Vec<f32>> {
        vec![self.weights.clone(), self.bias.clone()]
    }

    fn import_params(&mut self, params: &[Vec<f32>]) -> Result<(), NeuralError> {
        let Self { weights, bias, .. } = self;
        import_into("Conv1D", &mut [weights, bias], params)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(5)
    }

    #[test]
    fn output_shape_matches_formula() {
        let layer = Conv1d::new(1, 397, 25, 20, 1, Activation::Selu, &mut rng()).unwrap();
        assert_eq!(layer.out_len(), 378);
        assert_eq!(layer.output_len(), 25 * 378);
        assert_eq!(layer.param_count(), 25 * 20 + 25);
    }

    #[test]
    fn paper_table1_parameter_counts() {
        // Layer 3: Conv1D(25, k20, s1) on 1 channel: 25*1*20+25 = 525.
        let l3 = Conv1d::new(1, 397, 25, 20, 1, Activation::Selu, &mut rng()).unwrap();
        assert_eq!(l3.param_count(), 525);
        // Layer 4: Conv1D(25, k20, s3) on 25 channels: 25*25*20+25 = 12525.
        let l4 = Conv1d::new(25, 378, 25, 20, 3, Activation::Selu, &mut rng()).unwrap();
        assert_eq!(l4.param_count(), 12_525);
    }

    #[test]
    fn identity_kernel_passes_signal() {
        let mut layer = Conv1d::new(1, 5, 1, 1, 1, Activation::Linear, &mut rng()).unwrap();
        layer.import_params(&[vec![1.0], vec![0.0]]).unwrap();
        let out = layer.forward(&[1.0, 2.0, 3.0, 4.0, 5.0], false);
        assert_eq!(out, vec![1.0, 2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn stride_subsamples() {
        let mut layer = Conv1d::new(1, 6, 1, 2, 2, Activation::Linear, &mut rng()).unwrap();
        layer.import_params(&[vec![1.0, 1.0], vec![0.0]]).unwrap();
        let out = layer.forward(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], false);
        assert_eq!(out, vec![3.0, 7.0, 11.0]);
    }

    #[test]
    fn multi_channel_sums_contributions() {
        let mut layer = Conv1d::new(2, 3, 1, 1, 1, Activation::Linear, &mut rng()).unwrap();
        // w[f=0][ic=0][0] = 1, w[f=0][ic=1][0] = 10.
        layer.import_params(&[vec![1.0, 10.0], vec![0.0]]).unwrap();
        // channel 0 = [1,2,3], channel 1 = [4,5,6].
        let out = layer.forward(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], false);
        assert_eq!(out, vec![41.0, 52.0, 63.0]);
    }

    #[test]
    fn softmax_normalizes_across_filters_per_position() {
        let mut layer = Conv1d::new(1, 4, 3, 2, 1, Activation::Softmax, &mut rng()).unwrap();
        let out = layer.forward(&[0.5, -0.3, 0.8, 0.1], false);
        let out_len = layer.out_len();
        for op in 0..out_len {
            let sum: f32 = (0..3).map(|f| out[f * out_len + op]).sum();
            assert!((sum - 1.0).abs() < 1e-5, "position {op} sums to {sum}");
        }
    }

    #[test]
    fn backward_matches_numeric_gradients() {
        let mut layer = Conv1d::new(2, 6, 3, 3, 2, Activation::Selu, &mut rng()).unwrap();
        let input: Vec<f32> = (0..12).map(|i| (i as f32 * 0.37).sin()).collect();
        let upstream: Vec<f32> = (0..layer.output_len())
            .map(|i| ((i as f32) * 0.71).cos())
            .collect();

        layer.forward(&input, true);
        layer.zero_grads();
        let grad_in = layer.backward(&upstream);

        let loss = |layer: &mut Conv1d, x: &[f32]| -> f32 {
            layer
                .forward(x, false)
                .iter()
                .zip(&upstream)
                .map(|(y, u)| y * u)
                .sum()
        };

        let eps = 1e-3;
        for i in 0..input.len() {
            let mut hi = input.clone();
            hi[i] += eps;
            let mut lo = input.clone();
            lo[i] -= eps;
            let num = (loss(&mut layer, &hi) - loss(&mut layer, &lo)) / (2.0 * eps);
            assert!(
                (grad_in[i] - num).abs() < 2e-2,
                "input grad {i}: analytic {} numeric {num}",
                grad_in[i]
            );
        }

        // Spot-check a few weight gradients numerically.
        layer.forward(&input, true);
        layer.zero_grads();
        layer.backward(&upstream);
        let mut analytic = Vec::new();
        layer.visit_params(&mut |_p, g| analytic.push(g.to_vec()));
        let mut exported = layer.export_params();
        for idx in [0usize, 5, 11] {
            let orig = exported[0][idx];
            exported[0][idx] = orig + eps;
            layer.import_params(&exported).unwrap();
            let f_hi = loss(&mut layer, &input);
            exported[0][idx] = orig - eps;
            layer.import_params(&exported).unwrap();
            let f_lo = loss(&mut layer, &input);
            exported[0][idx] = orig;
            layer.import_params(&exported).unwrap();
            let num = (f_hi - f_lo) / (2.0 * eps);
            assert!(
                (analytic[0][idx] - num).abs() < 2e-2,
                "weight grad {idx}: analytic {} numeric {num}",
                analytic[0][idx]
            );
        }
    }

    #[test]
    fn softmax_backward_matches_numeric() {
        let mut layer = Conv1d::new(1, 5, 2, 2, 1, Activation::Softmax, &mut rng()).unwrap();
        let input = [0.2f32, -0.4, 0.9, 0.3, -0.6];
        let upstream: Vec<f32> = (0..layer.output_len()).map(|i| 0.5 - 0.2 * i as f32).collect();
        layer.forward(&input, true);
        layer.zero_grads();
        let grad_in = layer.backward(&upstream);
        let eps = 1e-3;
        for i in 0..input.len() {
            let mut hi = input;
            hi[i] += eps;
            let mut lo = input;
            lo[i] -= eps;
            let f = |l: &mut Conv1d, x: &[f32]| -> f32 {
                l.forward(x, false)
                    .iter()
                    .zip(&upstream)
                    .map(|(y, u)| y * u)
                    .sum()
            };
            let num = (f(&mut layer, &hi) - f(&mut layer, &lo)) / (2.0 * eps);
            assert!(
                (grad_in[i] - num).abs() < 1e-2,
                "softmax conv grad {i}: analytic {} numeric {num}",
                grad_in[i]
            );
        }
    }

    #[test]
    fn rejects_invalid_spec() {
        assert!(Conv1d::new(0, 10, 1, 3, 1, Activation::Linear, &mut rng()).is_err());
        assert!(Conv1d::new(1, 10, 0, 3, 1, Activation::Linear, &mut rng()).is_err());
        assert!(Conv1d::new(1, 10, 1, 11, 1, Activation::Linear, &mut rng()).is_err());
        assert!(Conv1d::new(1, 10, 1, 3, 0, Activation::Linear, &mut rng()).is_err());
    }
}
