//! Fully connected layer.

use rand_chacha::ChaCha8Rng;

use crate::init::Init;
use crate::layers::{import_into, Layer, LayerSummary};
use crate::{Activation, NeuralError};

/// A fully connected (dense) layer `y = act(W x + b)`.
///
/// Weights are stored row-major: `weights[out * input_len + in]`.
#[derive(Debug, Clone)]
pub struct Dense {
    input_len: usize,
    units: usize,
    activation: Activation,
    weights: Vec<f32>,
    bias: Vec<f32>,
    grad_weights: Vec<f32>,
    grad_bias: Vec<f32>,
    cached_input: Vec<f32>,
    cached_output: Vec<f32>,
}

impl Dense {
    /// Creates a dense layer with activation-appropriate initialization.
    ///
    /// # Errors
    ///
    /// Returns [`NeuralError::InvalidSpec`] if `input_len` or `units` is
    /// zero.
    pub fn new(
        input_len: usize,
        units: usize,
        activation: Activation,
        rng: &mut ChaCha8Rng,
    ) -> Result<Self, NeuralError> {
        if input_len == 0 || units == 0 {
            return Err(NeuralError::InvalidSpec(format!(
                "dense layer needs non-zero dimensions, got {input_len} -> {units}"
            )));
        }
        let mut weights = vec![0.0; units * input_len];
        Init::for_activation(activation).fill(&mut weights, input_len, units, rng);
        Ok(Self {
            input_len,
            units,
            activation,
            grad_weights: vec![0.0; weights.len()],
            weights,
            bias: vec![0.0; units],
            grad_bias: vec![0.0; units],
            cached_input: Vec::new(),
            cached_output: Vec::new(),
        })
    }

    /// The layer's activation function.
    pub fn activation(&self) -> Activation {
        self.activation
    }

    /// Number of output units.
    pub fn units(&self) -> usize {
        self.units
    }
}

impl Layer for Dense {
    fn kind(&self) -> &'static str {
        "Dense"
    }

    fn input_len(&self) -> usize {
        self.input_len
    }

    fn output_len(&self) -> usize {
        self.units
    }

    fn forward(&mut self, input: &[f32], _training: bool) -> Vec<f32> {
        assert_eq!(input.len(), self.input_len, "dense input length");
        let mut out = self.bias.clone();
        for (u, slot) in out.iter_mut().enumerate() {
            let row = &self.weights[u * self.input_len..(u + 1) * self.input_len];
            let mut acc = 0.0f32;
            for (w, x) in row.iter().zip(input) {
                acc += w * x;
            }
            *slot += acc;
        }
        self.activation.apply(&mut out, self.units);
        self.cached_input = input.to_vec();
        self.cached_output = out.clone();
        out
    }

    fn backward(&mut self, grad_output: &[f32]) -> Vec<f32> {
        assert_eq!(grad_output.len(), self.units, "dense grad length");
        assert!(
            !self.cached_input.is_empty(),
            "backward called before forward"
        );
        let mut dz = grad_output.to_vec();
        self.activation
            .backward(&self.cached_output, &mut dz, self.units);
        let mut grad_in = vec![0.0f32; self.input_len];
        for (u, &g) in dz.iter().enumerate() {
            self.grad_bias[u] += g;
            let row = &self.weights[u * self.input_len..(u + 1) * self.input_len];
            let grad_row = &mut self.grad_weights[u * self.input_len..(u + 1) * self.input_len];
            for ((gw, gi), (&w, &x)) in grad_row
                .iter_mut()
                .zip(grad_in.iter_mut())
                .zip(row.iter().zip(self.cached_input.iter()))
            {
                *gw += g * x;
                *gi += g * w;
            }
        }
        grad_in
    }

    fn param_count(&self) -> usize {
        self.weights.len() + self.bias.len()
    }

    fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut [f32], &mut [f32])) {
        visitor(&mut self.weights, &mut self.grad_weights);
        visitor(&mut self.bias, &mut self.grad_bias);
    }

    fn zero_grads(&mut self) {
        self.grad_weights.iter_mut().for_each(|g| *g = 0.0);
        self.grad_bias.iter_mut().for_each(|g| *g = 0.0);
    }

    fn summary(&self) -> LayerSummary {
        LayerSummary {
            kind: "Dense".into(),
            output_shape: format!("{}", self.units),
            config: format!("units={}", self.units),
            activation: self.activation.short_name().into(),
            parameters: self.param_count(),
        }
    }

    fn export_params(&self) -> Vec<Vec<f32>> {
        vec![self.weights.clone(), self.bias.clone()]
    }

    fn import_params(&mut self, params: &[Vec<f32>]) -> Result<(), NeuralError> {
        let Self { weights, bias, .. } = self;
        import_into("Dense", &mut [weights, bias], params)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(11)
    }

    #[test]
    fn construction_validates() {
        assert!(Dense::new(0, 3, Activation::Linear, &mut rng()).is_err());
        assert!(Dense::new(3, 0, Activation::Linear, &mut rng()).is_err());
    }

    #[test]
    fn forward_computes_affine_map() {
        let mut layer = Dense::new(2, 2, Activation::Linear, &mut rng()).unwrap();
        layer
            .import_params(&[vec![1.0, 2.0, 3.0, 4.0], vec![0.5, -0.5]])
            .unwrap();
        let out = layer.forward(&[1.0, 1.0], false);
        assert_eq!(out, vec![3.5, 6.5]);
    }

    #[test]
    fn param_count_is_w_plus_b() {
        let layer = Dense::new(150, 8, Activation::Softmax, &mut rng()).unwrap();
        assert_eq!(layer.param_count(), 150 * 8 + 8);
    }

    #[test]
    fn backward_gradients_match_numeric() {
        let mut layer = Dense::new(3, 2, Activation::Tanh, &mut rng()).unwrap();
        let input = [0.3f32, -0.7, 0.9];
        let upstream = [1.0f32, -2.0];

        let out = layer.forward(&input, true);
        let _ = out;
        layer.zero_grads();
        let grad_in = layer.backward(&upstream);

        // Numeric input gradient.
        let eps = 1e-3;
        for i in 0..3 {
            let mut hi = input;
            hi[i] += eps;
            let mut lo = input;
            lo[i] -= eps;
            let f_hi: f32 = layer
                .forward(&hi, false)
                .iter()
                .zip(&upstream)
                .map(|(y, u)| y * u)
                .sum();
            let f_lo: f32 = layer
                .forward(&lo, false)
                .iter()
                .zip(&upstream)
                .map(|(y, u)| y * u)
                .sum();
            let num = (f_hi - f_lo) / (2.0 * eps);
            assert!(
                (grad_in[i] - num).abs() < 1e-2,
                "input grad {i}: analytic {} numeric {num}",
                grad_in[i]
            );
        }

        // Numeric weight gradient (first weight).
        let mut exported = layer.export_params();
        let orig = exported[0][0];
        let analytic_gw = {
            let mut cap = Vec::new();
            layer.forward(&input, true);
            layer.zero_grads();
            layer.backward(&upstream);
            layer.visit_params(&mut |_p, g| cap.push(g.to_vec()));
            cap[0][0]
        };
        exported[0][0] = orig + eps;
        layer.import_params(&exported).unwrap();
        let f_hi: f32 = layer
            .forward(&input, false)
            .iter()
            .zip(&upstream)
            .map(|(y, u)| y * u)
            .sum();
        exported[0][0] = orig - eps;
        layer.import_params(&exported).unwrap();
        let f_lo: f32 = layer
            .forward(&input, false)
            .iter()
            .zip(&upstream)
            .map(|(y, u)| y * u)
            .sum();
        let num = (f_hi - f_lo) / (2.0 * eps);
        assert!(
            (analytic_gw - num).abs() < 1e-2,
            "weight grad: analytic {analytic_gw} numeric {num}"
        );
    }

    #[test]
    fn gradients_accumulate_until_zeroed() {
        let mut layer = Dense::new(2, 1, Activation::Linear, &mut rng()).unwrap();
        layer.forward(&[1.0, 1.0], true);
        layer.backward(&[1.0]);
        layer.forward(&[1.0, 1.0], true);
        layer.backward(&[1.0]);
        let mut bias_grad = 0.0;
        layer.visit_params(&mut |_p, g| {
            if g.len() == 1 {
                bias_grad = g[0];
            }
        });
        assert_eq!(bias_grad, 2.0);
        layer.zero_grads();
        layer.visit_params(&mut |_p, g| assert!(g.iter().all(|&v| v == 0.0)));
    }

    #[test]
    fn import_rejects_wrong_shapes() {
        let mut layer = Dense::new(2, 2, Activation::Linear, &mut rng()).unwrap();
        assert!(layer.import_params(&[vec![0.0; 3], vec![0.0; 2]]).is_err());
        assert!(layer.import_params(&[vec![0.0; 4]]).is_err());
    }

    #[test]
    fn export_import_roundtrip() {
        let mut a = Dense::new(4, 3, Activation::Relu, &mut rng()).unwrap();
        let mut b = Dense::new(4, 3, Activation::Relu, &mut ChaCha8Rng::seed_from_u64(99)).unwrap();
        b.import_params(&a.export_params()).unwrap();
        let x = [0.1, 0.2, 0.3, 0.4];
        assert_eq!(a.forward(&x, false), b.forward(&x, false));
    }
}
