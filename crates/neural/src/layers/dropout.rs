//! Inverted dropout.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::layers::{Layer, LayerSummary};
use crate::NeuralError;

/// Inverted dropout: during training each unit is zeroed with probability
/// `rate` and survivors are scaled by `1 / (1 - rate)`; at inference the
/// layer is the identity.
#[derive(Debug, Clone)]
pub struct Dropout {
    len: usize,
    rate: f32,
    rng: ChaCha8Rng,
    cached_mask: Vec<f32>,
}

impl Dropout {
    /// Creates a dropout layer.
    ///
    /// # Errors
    ///
    /// Returns [`NeuralError::InvalidSpec`] if `rate` is outside `[0, 1)`
    /// or `len` is zero.
    pub fn new(len: usize, rate: f32, seed: u64) -> Result<Self, NeuralError> {
        if len == 0 {
            return Err(NeuralError::InvalidSpec("dropout needs a length".into()));
        }
        if !(0.0..1.0).contains(&rate) {
            return Err(NeuralError::InvalidSpec(format!(
                "dropout rate {rate} must lie in [0, 1)"
            )));
        }
        Ok(Self {
            len,
            rate,
            rng: ChaCha8Rng::seed_from_u64(seed),
            cached_mask: Vec::new(),
        })
    }
}

impl Layer for Dropout {
    fn kind(&self) -> &'static str {
        "Dropout"
    }

    fn input_len(&self) -> usize {
        self.len
    }

    fn output_len(&self) -> usize {
        self.len
    }

    fn forward(&mut self, input: &[f32], training: bool) -> Vec<f32> {
        assert_eq!(input.len(), self.len, "dropout input length");
        if !training || self.rate == 0.0 {
            self.cached_mask = vec![1.0; self.len];
            return input.to_vec();
        }
        let keep = 1.0 - self.rate;
        let scale = 1.0 / keep;
        self.cached_mask = (0..self.len)
            .map(|_| {
                if self.rng.gen::<f32>() < keep {
                    scale
                } else {
                    0.0
                }
            })
            .collect();
        input
            .iter()
            .zip(&self.cached_mask)
            .map(|(x, m)| x * m)
            .collect()
    }

    fn backward(&mut self, grad_output: &[f32]) -> Vec<f32> {
        assert_eq!(grad_output.len(), self.len, "dropout grad length");
        assert!(
            !self.cached_mask.is_empty(),
            "backward called before forward"
        );
        grad_output
            .iter()
            .zip(&self.cached_mask)
            .map(|(g, m)| g * m)
            .collect()
    }

    fn summary(&self) -> LayerSummary {
        LayerSummary {
            kind: "Dropout".into(),
            output_shape: format!("{}", self.len),
            config: format!("rate={}", self.rate),
            activation: String::new(),
            parameters: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inference_is_identity() {
        let mut layer = Dropout::new(4, 0.5, 1).unwrap();
        let x = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(layer.forward(&x, false), x.to_vec());
    }

    #[test]
    fn training_zeroes_roughly_rate_fraction() {
        let mut layer = Dropout::new(10_000, 0.3, 2).unwrap();
        let x = vec![1.0; 10_000];
        let out = layer.forward(&x, true);
        let zeroed = out.iter().filter(|&&v| v == 0.0).count();
        assert!((zeroed as f64 / 10_000.0 - 0.3).abs() < 0.03);
        // Survivors are scaled to preserve the expectation.
        let survivors: Vec<f32> = out.iter().copied().filter(|&v| v != 0.0).collect();
        assert!(survivors.iter().all(|&v| (v - 1.0 / 0.7).abs() < 1e-6));
    }

    #[test]
    fn backward_uses_same_mask() {
        let mut layer = Dropout::new(64, 0.5, 3).unwrap();
        let x = vec![1.0; 64];
        let out = layer.forward(&x, true);
        let grad = layer.backward(&vec![1.0; 64]);
        for (o, g) in out.iter().zip(&grad) {
            assert_eq!(o, g);
        }
    }

    #[test]
    fn invalid_rate_rejected() {
        assert!(Dropout::new(4, 1.0, 0).is_err());
        assert!(Dropout::new(4, -0.1, 0).is_err());
        assert!(Dropout::new(0, 0.5, 0).is_err());
    }
}
