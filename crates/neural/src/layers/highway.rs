//! Highway and residual dense layers.
//!
//! The paper's preliminary architecture study "included Multi-Layer
//! Perceptron (MLP) networks, the ResNet and Highway network
//! architectures, and Convolutional Neural Networks" before settling on
//! CNNs (§III.A.2, citing Srivastava et al., "Highway networks"). These
//! layers let the workspace rerun that comparison (see the
//! `arch_explore` harness).

use rand_chacha::ChaCha8Rng;

use crate::init::Init;
use crate::layers::{import_into, Layer, LayerSummary};
use crate::{Activation, NeuralError};

/// A highway layer: `y = T(x) ⊙ H(x) + (1 - T(x)) ⊙ x` with transform
/// gate `T(x) = σ(W_T x + b_T)` and candidate `H(x) = act(W_H x + b_H)`.
/// Input and output widths are equal by construction.
#[derive(Debug, Clone)]
pub struct Highway {
    width: usize,
    activation: Activation,
    w_h: Vec<f32>,
    b_h: Vec<f32>,
    w_t: Vec<f32>,
    b_t: Vec<f32>,
    grad_w_h: Vec<f32>,
    grad_b_h: Vec<f32>,
    grad_w_t: Vec<f32>,
    grad_b_t: Vec<f32>,
    cached_input: Vec<f32>,
    cached_h: Vec<f32>,
    cached_t: Vec<f32>,
}

impl Highway {
    /// Creates a highway layer of the given width.
    ///
    /// The transform-gate bias starts at `-1` (Srivastava et al.'s
    /// recommendation) so early training favours the carry path.
    ///
    /// # Errors
    ///
    /// Returns [`NeuralError::InvalidSpec`] if `width` is zero.
    pub fn new(
        width: usize,
        activation: Activation,
        rng: &mut ChaCha8Rng,
    ) -> Result<Self, NeuralError> {
        if width == 0 {
            return Err(NeuralError::InvalidSpec("highway width is zero".into()));
        }
        let mut w_h = vec![0.0; width * width];
        let mut w_t = vec![0.0; width * width];
        Init::for_activation(activation).fill(&mut w_h, width, width, rng);
        Init::GlorotUniform.fill(&mut w_t, width, width, rng);
        Ok(Self {
            width,
            activation,
            grad_w_h: vec![0.0; w_h.len()],
            grad_w_t: vec![0.0; w_t.len()],
            w_h,
            w_t,
            b_h: vec![0.0; width],
            b_t: vec![-1.0; width],
            grad_b_h: vec![0.0; width],
            grad_b_t: vec![0.0; width],
            cached_input: Vec::new(),
            cached_h: Vec::new(),
            cached_t: Vec::new(),
        })
    }

    fn affine(&self, weights: &[f32], bias: &[f32], input: &[f32]) -> Vec<f32> {
        let mut out = bias.to_vec();
        for (u, slot) in out.iter_mut().enumerate() {
            let row = &weights[u * self.width..(u + 1) * self.width];
            let mut acc = 0.0f32;
            for (w, x) in row.iter().zip(input) {
                acc += w * x;
            }
            *slot += acc;
        }
        out
    }
}

impl Layer for Highway {
    fn kind(&self) -> &'static str {
        "Highway"
    }

    fn input_len(&self) -> usize {
        self.width
    }

    fn output_len(&self) -> usize {
        self.width
    }

    fn forward(&mut self, input: &[f32], _training: bool) -> Vec<f32> {
        assert_eq!(input.len(), self.width, "highway input length");
        let mut h = self.affine(&self.w_h, &self.b_h, input);
        self.activation.apply(&mut h, self.width);
        let mut t = self.affine(&self.w_t, &self.b_t, input);
        Activation::Sigmoid.apply(&mut t, 1);
        let out: Vec<f32> = h
            .iter()
            .zip(&t)
            .zip(input)
            .map(|((&hi, &ti), &xi)| ti * hi + (1.0 - ti) * xi)
            .collect();
        self.cached_input = input.to_vec();
        self.cached_h = h;
        self.cached_t = t;
        out
    }

    fn backward(&mut self, grad_output: &[f32]) -> Vec<f32> {
        assert_eq!(grad_output.len(), self.width, "highway grad length");
        assert!(
            !self.cached_input.is_empty(),
            "backward called before forward"
        );
        let x = &self.cached_input;
        let h = &self.cached_h;
        let t = &self.cached_t;
        // dL/dh = g * t ; dL/dt = g * (h - x) ; carry term dL/dx += g * (1 - t).
        let mut dh: Vec<f32> = grad_output.iter().zip(t).map(|(&g, &ti)| g * ti).collect();
        self.activation.backward(h, &mut dh, self.width);
        let mut dt: Vec<f32> = grad_output
            .iter()
            .zip(h.iter().zip(x))
            .map(|(&g, (&hi, &xi))| g * (hi - xi))
            .collect();
        Activation::Sigmoid.backward(t, &mut dt, 1);

        let mut grad_in: Vec<f32> = grad_output
            .iter()
            .zip(t)
            .map(|(&g, &ti)| g * (1.0 - ti))
            .collect();
        for (u, (&dhu, &dtu)) in dh.iter().zip(&dt).enumerate() {
            self.grad_b_h[u] += dhu;
            self.grad_b_t[u] += dtu;
            let row_h = &self.w_h[u * self.width..(u + 1) * self.width];
            let row_t = &self.w_t[u * self.width..(u + 1) * self.width];
            let gw_h = &mut self.grad_w_h[u * self.width..(u + 1) * self.width];
            let gw_t = &mut self.grad_w_t[u * self.width..(u + 1) * self.width];
            for k in 0..self.width {
                gw_h[k] += dhu * x[k];
                gw_t[k] += dtu * x[k];
                grad_in[k] += dhu * row_h[k] + dtu * row_t[k];
            }
        }
        grad_in
    }

    fn param_count(&self) -> usize {
        self.w_h.len() + self.b_h.len() + self.w_t.len() + self.b_t.len()
    }

    fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut [f32], &mut [f32])) {
        visitor(&mut self.w_h, &mut self.grad_w_h);
        visitor(&mut self.b_h, &mut self.grad_b_h);
        visitor(&mut self.w_t, &mut self.grad_w_t);
        visitor(&mut self.b_t, &mut self.grad_b_t);
    }

    fn zero_grads(&mut self) {
        for g in [
            &mut self.grad_w_h,
            &mut self.grad_b_h,
            &mut self.grad_w_t,
            &mut self.grad_b_t,
        ] {
            g.iter_mut().for_each(|v| *v = 0.0);
        }
    }

    fn summary(&self) -> LayerSummary {
        LayerSummary {
            kind: "Highway".into(),
            output_shape: format!("{}", self.width),
            config: format!("width={}", self.width),
            activation: self.activation.short_name().into(),
            parameters: self.param_count(),
        }
    }

    fn export_params(&self) -> Vec<Vec<f32>> {
        vec![
            self.w_h.clone(),
            self.b_h.clone(),
            self.w_t.clone(),
            self.b_t.clone(),
        ]
    }

    fn import_params(&mut self, params: &[Vec<f32>]) -> Result<(), NeuralError> {
        let Self {
            w_h, b_h, w_t, b_t, ..
        } = self;
        import_into("Highway", &mut [w_h, b_h, w_t, b_t], params)
    }
}

/// A residual dense block: `y = act(W x + b) + x` (ResNet-style skip for
/// equal widths).
#[derive(Debug, Clone)]
pub struct ResidualDense {
    width: usize,
    activation: Activation,
    weights: Vec<f32>,
    bias: Vec<f32>,
    grad_weights: Vec<f32>,
    grad_bias: Vec<f32>,
    cached_input: Vec<f32>,
    cached_branch: Vec<f32>,
}

impl ResidualDense {
    /// Creates a residual dense block of the given width.
    ///
    /// # Errors
    ///
    /// Returns [`NeuralError::InvalidSpec`] if `width` is zero.
    pub fn new(
        width: usize,
        activation: Activation,
        rng: &mut ChaCha8Rng,
    ) -> Result<Self, NeuralError> {
        if width == 0 {
            return Err(NeuralError::InvalidSpec("residual width is zero".into()));
        }
        let mut weights = vec![0.0; width * width];
        Init::for_activation(activation).fill(&mut weights, width, width, rng);
        Ok(Self {
            width,
            activation,
            grad_weights: vec![0.0; weights.len()],
            weights,
            bias: vec![0.0; width],
            grad_bias: vec![0.0; width],
            cached_input: Vec::new(),
            cached_branch: Vec::new(),
        })
    }
}

impl Layer for ResidualDense {
    fn kind(&self) -> &'static str {
        "ResidualDense"
    }

    fn input_len(&self) -> usize {
        self.width
    }

    fn output_len(&self) -> usize {
        self.width
    }

    fn forward(&mut self, input: &[f32], _training: bool) -> Vec<f32> {
        assert_eq!(input.len(), self.width, "residual input length");
        let mut branch = self.bias.clone();
        for (u, slot) in branch.iter_mut().enumerate() {
            let row = &self.weights[u * self.width..(u + 1) * self.width];
            let mut acc = 0.0f32;
            for (w, x) in row.iter().zip(input) {
                acc += w * x;
            }
            *slot += acc;
        }
        self.activation.apply(&mut branch, self.width);
        let out: Vec<f32> = branch.iter().zip(input).map(|(&b, &x)| b + x).collect();
        self.cached_input = input.to_vec();
        self.cached_branch = branch;
        out
    }

    fn backward(&mut self, grad_output: &[f32]) -> Vec<f32> {
        assert_eq!(grad_output.len(), self.width, "residual grad length");
        assert!(
            !self.cached_input.is_empty(),
            "backward called before forward"
        );
        let mut dz = grad_output.to_vec();
        self.activation
            .backward(&self.cached_branch, &mut dz, self.width);
        // Skip connection passes the gradient straight through.
        let mut grad_in = grad_output.to_vec();
        for (u, &g) in dz.iter().enumerate() {
            self.grad_bias[u] += g;
            let row = &self.weights[u * self.width..(u + 1) * self.width];
            let gw = &mut self.grad_weights[u * self.width..(u + 1) * self.width];
            for k in 0..self.width {
                gw[k] += g * self.cached_input[k];
                grad_in[k] += g * row[k];
            }
        }
        grad_in
    }

    fn param_count(&self) -> usize {
        self.weights.len() + self.bias.len()
    }

    fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut [f32], &mut [f32])) {
        visitor(&mut self.weights, &mut self.grad_weights);
        visitor(&mut self.bias, &mut self.grad_bias);
    }

    fn zero_grads(&mut self) {
        self.grad_weights.iter_mut().for_each(|g| *g = 0.0);
        self.grad_bias.iter_mut().for_each(|g| *g = 0.0);
    }

    fn summary(&self) -> LayerSummary {
        LayerSummary {
            kind: "ResidualDense".into(),
            output_shape: format!("{}", self.width),
            config: format!("width={}", self.width),
            activation: self.activation.short_name().into(),
            parameters: self.param_count(),
        }
    }

    fn export_params(&self) -> Vec<Vec<f32>> {
        vec![self.weights.clone(), self.bias.clone()]
    }

    fn import_params(&mut self, params: &[Vec<f32>]) -> Result<(), NeuralError> {
        let Self { weights, bias, .. } = self;
        import_into("ResidualDense", &mut [weights, bias], params)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(31)
    }

    #[test]
    fn highway_initially_prefers_carry() {
        // With the gate bias at -1 and small weights, the output should
        // stay close to the input.
        let mut layer = Highway::new(6, Activation::Tanh, &mut rng()).unwrap();
        let x: Vec<f32> = (0..6).map(|i| 0.3 * i as f32 - 0.9).collect();
        let y = layer.forward(&x, false);
        let drift: f32 = y.iter().zip(&x).map(|(a, b)| (a - b).abs()).sum();
        assert!(drift < 1.5, "drift {drift}");
    }

    #[test]
    fn highway_param_count() {
        let layer = Highway::new(8, Activation::Relu, &mut rng()).unwrap();
        assert_eq!(layer.param_count(), 2 * (8 * 8 + 8));
    }

    #[test]
    fn highway_backward_matches_numeric() {
        let mut layer = Highway::new(4, Activation::Tanh, &mut rng()).unwrap();
        let input = [0.2f32, -0.5, 0.8, 0.1];
        let upstream = [1.0f32, -0.5, 0.3, 2.0];
        layer.forward(&input, true);
        layer.zero_grads();
        let grad_in = layer.backward(&upstream);
        let loss = |l: &mut Highway, x: &[f32]| -> f32 {
            l.forward(x, false)
                .iter()
                .zip(&upstream)
                .map(|(y, u)| y * u)
                .sum()
        };
        let eps = 1e-3;
        for i in 0..4 {
            let mut hi = input;
            hi[i] += eps;
            let mut lo = input;
            lo[i] -= eps;
            let num = (loss(&mut layer, &hi) - loss(&mut layer, &lo)) / (2.0 * eps);
            assert!(
                (grad_in[i] - num).abs() < 1e-2,
                "grad {i}: analytic {} numeric {num}",
                grad_in[i]
            );
        }
    }

    #[test]
    fn residual_passes_identity_at_zero_weights() {
        let mut layer = ResidualDense::new(3, Activation::Relu, &mut rng()).unwrap();
        layer
            .import_params(&[vec![0.0; 9], vec![0.0; 3]])
            .unwrap();
        let x = [1.0, -2.0, 3.0];
        assert_eq!(layer.forward(&x, false), x.to_vec());
    }

    #[test]
    fn residual_backward_matches_numeric() {
        let mut layer = ResidualDense::new(3, Activation::Selu, &mut rng()).unwrap();
        let input = [0.4f32, -0.2, 0.7];
        let upstream = [1.5f32, -1.0, 0.5];
        layer.forward(&input, true);
        layer.zero_grads();
        let grad_in = layer.backward(&upstream);
        let loss = |l: &mut ResidualDense, x: &[f32]| -> f32 {
            l.forward(x, false)
                .iter()
                .zip(&upstream)
                .map(|(y, u)| y * u)
                .sum()
        };
        let eps = 1e-3;
        for i in 0..3 {
            let mut hi = input;
            hi[i] += eps;
            let mut lo = input;
            lo[i] -= eps;
            let num = (loss(&mut layer, &hi) - loss(&mut layer, &lo)) / (2.0 * eps);
            assert!(
                (grad_in[i] - num).abs() < 1e-2,
                "grad {i}: analytic {} numeric {num}",
                grad_in[i]
            );
        }
    }

    #[test]
    fn zero_width_rejected() {
        assert!(Highway::new(0, Activation::Relu, &mut rng()).is_err());
        assert!(ResidualDense::new(0, Activation::Relu, &mut rng()).is_err());
    }

    #[test]
    fn export_import_roundtrip() {
        let mut a = Highway::new(5, Activation::Relu, &mut rng()).unwrap();
        let mut b = Highway::new(5, Activation::Relu, &mut ChaCha8Rng::seed_from_u64(77)).unwrap();
        b.import_params(&a.export_params()).unwrap();
        let x = [0.1, 0.2, 0.3, 0.4, 0.5];
        assert_eq!(a.forward(&x, false), b.forward(&x, false));
    }
}
