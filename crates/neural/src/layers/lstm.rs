//! Long short-term memory layer.
//!
//! The paper's second NMR model analyses the time series of spectra with
//! an LSTM of 32 units over five timesteps (§III.B.2/3). With a
//! 1700-point spectrum per timestep, the layer holds
//! `4·32·(1700 + 32 + 1) = 221 824` parameters; a Dense(4) head adds 132
//! for the paper's exact total of 221 956.

use rand_chacha::ChaCha8Rng;

use crate::init::Init;
use crate::layers::{import_into, Layer, LayerSummary};
use crate::{Activation, NeuralError};

/// An LSTM over a fixed-length sequence, returning the last hidden state.
///
/// Input layout: `timesteps × features`, flattened time-major
/// (`input[t * features + d]`). Output: the final hidden state (`units`
/// values). Gate order in the stacked weight matrices is `[i, f, g, o]`.
#[derive(Debug, Clone)]
pub struct Lstm {
    features: usize,
    units: usize,
    timesteps: usize,
    /// Input weights `W`, shape `4*units × features`.
    w: Vec<f32>,
    /// Recurrent weights `U`, shape `4*units × units`.
    u: Vec<f32>,
    /// Bias, `4*units` (forget-gate slice initialized to 1.0).
    b: Vec<f32>,
    grad_w: Vec<f32>,
    grad_u: Vec<f32>,
    grad_b: Vec<f32>,
    // Forward caches, one entry per timestep.
    cached_input: Vec<f32>,
    cached_gates: Vec<f32>,  // post-nonlinearity gates, t * 4*units
    cached_cell: Vec<f32>,   // c_t, t * units
    cached_hidden: Vec<f32>, // h_t, t * units
}

impl Lstm {
    /// Creates an LSTM layer.
    ///
    /// # Errors
    ///
    /// Returns [`NeuralError::InvalidSpec`] if any dimension is zero.
    pub fn new(
        timesteps: usize,
        features: usize,
        units: usize,
        rng: &mut ChaCha8Rng,
    ) -> Result<Self, NeuralError> {
        if timesteps == 0 || features == 0 || units == 0 {
            return Err(NeuralError::InvalidSpec(format!(
                "lstm needs non-zero dims, got T={timesteps} D={features} H={units}"
            )));
        }
        let mut w = vec![0.0; 4 * units * features];
        let mut u = vec![0.0; 4 * units * units];
        Init::GlorotUniform.fill(&mut w, features, units, rng);
        Init::GlorotUniform.fill(&mut u, units, units, rng);
        let mut b = vec![0.0; 4 * units];
        // Standard trick: forget-gate bias = 1 so early training remembers.
        for v in b[units..2 * units].iter_mut() {
            *v = 1.0;
        }
        Ok(Self {
            features,
            units,
            timesteps,
            grad_w: vec![0.0; w.len()],
            grad_u: vec![0.0; u.len()],
            grad_b: vec![0.0; b.len()],
            w,
            u,
            b,
            cached_input: Vec::new(),
            cached_gates: Vec::new(),
            cached_cell: Vec::new(),
            cached_hidden: Vec::new(),
        })
    }

    /// Number of hidden units.
    pub fn units(&self) -> usize {
        self.units
    }

    /// Number of timesteps the layer expects.
    pub fn timesteps(&self) -> usize {
        self.timesteps
    }

    fn sigmoid(x: f32) -> f32 {
        1.0 / (1.0 + (-x).exp())
    }
}

impl Layer for Lstm {
    fn kind(&self) -> &'static str {
        "LSTM"
    }

    fn input_len(&self) -> usize {
        self.timesteps * self.features
    }

    fn output_len(&self) -> usize {
        self.units
    }

    fn forward(&mut self, input: &[f32], _training: bool) -> Vec<f32> {
        assert_eq!(input.len(), self.input_len(), "lstm input length");
        let h = self.units;
        let d = self.features;
        let t_max = self.timesteps;
        self.cached_input = input.to_vec();
        self.cached_gates = vec![0.0; t_max * 4 * h];
        self.cached_cell = vec![0.0; t_max * h];
        self.cached_hidden = vec![0.0; t_max * h];

        let mut h_prev = vec![0.0f32; h];
        let mut c_prev = vec![0.0f32; h];
        for t in 0..t_max {
            let x_t = &input[t * d..(t + 1) * d];
            // z = W x + U h_prev + b, z has 4h entries.
            let mut z = self.b.clone();
            for (row, slot) in z.iter_mut().enumerate() {
                let wr = &self.w[row * d..(row + 1) * d];
                let mut acc = 0.0f32;
                for (wi, xi) in wr.iter().zip(x_t) {
                    acc += wi * xi;
                }
                let ur = &self.u[row * h..(row + 1) * h];
                for (ui, hi) in ur.iter().zip(&h_prev) {
                    acc += ui * hi;
                }
                *slot += acc;
            }
            // Gates: [i, f, g, o].
            let gates = &mut self.cached_gates[t * 4 * h..(t + 1) * 4 * h];
            for j in 0..h {
                let i_g = Self::sigmoid(z[j]);
                let f_g = Self::sigmoid(z[h + j]);
                let g_g = z[2 * h + j].tanh();
                let o_g = Self::sigmoid(z[3 * h + j]);
                gates[j] = i_g;
                gates[h + j] = f_g;
                gates[2 * h + j] = g_g;
                gates[3 * h + j] = o_g;
                let c = f_g * c_prev[j] + i_g * g_g;
                self.cached_cell[t * h + j] = c;
                self.cached_hidden[t * h + j] = o_g * c.tanh();
            }
            h_prev.copy_from_slice(&self.cached_hidden[t * h..(t + 1) * h]);
            c_prev.copy_from_slice(&self.cached_cell[t * h..(t + 1) * h]);
        }
        h_prev
    }

    fn backward(&mut self, grad_output: &[f32]) -> Vec<f32> {
        assert_eq!(grad_output.len(), self.units, "lstm grad length");
        assert!(
            !self.cached_input.is_empty(),
            "backward called before forward"
        );
        let h = self.units;
        let d = self.features;
        let t_max = self.timesteps;
        let mut grad_in = vec![0.0f32; self.input_len()];
        let mut dh = grad_output.to_vec();
        let mut dc = vec![0.0f32; h];
        let mut dz = vec![0.0f32; 4 * h];

        for t in (0..t_max).rev() {
            let gates = &self.cached_gates[t * 4 * h..(t + 1) * 4 * h];
            let c_t = &self.cached_cell[t * h..(t + 1) * h];
            let (h_prev, c_prev): (&[f32], &[f32]) = if t == 0 {
                (&[], &[])
            } else {
                (
                    &self.cached_hidden[(t - 1) * h..t * h],
                    &self.cached_cell[(t - 1) * h..t * h],
                )
            };
            for j in 0..h {
                let i_g = gates[j];
                let f_g = gates[h + j];
                let g_g = gates[2 * h + j];
                let o_g = gates[3 * h + j];
                let tanh_c = c_t[j].tanh();
                let do_g = dh[j] * tanh_c;
                let dct = dc[j] + dh[j] * o_g * (1.0 - tanh_c * tanh_c);
                let di = dct * g_g;
                let dg = dct * i_g;
                let cp = if t == 0 { 0.0 } else { c_prev[j] };
                let df = dct * cp;
                dz[j] = di * i_g * (1.0 - i_g);
                dz[h + j] = df * f_g * (1.0 - f_g);
                dz[2 * h + j] = dg * (1.0 - g_g * g_g);
                dz[3 * h + j] = do_g * o_g * (1.0 - o_g);
                dc[j] = dct * f_g;
            }
            // Accumulate parameter gradients and propagate to x_t, h_{t-1}.
            let x_t = &self.cached_input[t * d..(t + 1) * d];
            let mut dh_prev = vec![0.0f32; h];
            for (row, &g) in dz.iter().enumerate() {
                if g == 0.0 {
                    continue;
                }
                self.grad_b[row] += g;
                let gw = &mut self.grad_w[row * d..(row + 1) * d];
                let gx = &mut grad_in[t * d..(t + 1) * d];
                let wr_base = row * d;
                for k in 0..d {
                    gw[k] += g * x_t[k];
                    gx[k] += g * self.w[wr_base + k];
                }
                if t > 0 {
                    let gu = &mut self.grad_u[row * h..(row + 1) * h];
                    let ur_base = row * h;
                    for k in 0..h {
                        gu[k] += g * h_prev[k];
                        dh_prev[k] += g * self.u[ur_base + k];
                    }
                }
            }
            dh = dh_prev;
        }
        grad_in
    }

    fn param_count(&self) -> usize {
        self.w.len() + self.u.len() + self.b.len()
    }

    fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut [f32], &mut [f32])) {
        visitor(&mut self.w, &mut self.grad_w);
        visitor(&mut self.u, &mut self.grad_u);
        visitor(&mut self.b, &mut self.grad_b);
    }

    fn zero_grads(&mut self) {
        self.grad_w.iter_mut().for_each(|g| *g = 0.0);
        self.grad_u.iter_mut().for_each(|g| *g = 0.0);
        self.grad_b.iter_mut().for_each(|g| *g = 0.0);
    }

    fn summary(&self) -> LayerSummary {
        LayerSummary {
            kind: "LSTM".into(),
            output_shape: format!("{}", self.units),
            config: format!(
                "units={} timesteps={} features={}",
                self.units, self.timesteps, self.features
            ),
            activation: Activation::Tanh.short_name().into(),
            parameters: self.param_count(),
        }
    }

    fn export_params(&self) -> Vec<Vec<f32>> {
        vec![self.w.clone(), self.u.clone(), self.b.clone()]
    }

    fn import_params(&mut self, params: &[Vec<f32>]) -> Result<(), NeuralError> {
        let Self { w, u, b, .. } = self;
        import_into("LSTM", &mut [w, u, b], params)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(23)
    }

    #[test]
    fn paper_parameter_count_is_exact() {
        let layer = Lstm::new(5, 1700, 32, &mut rng()).unwrap();
        assert_eq!(layer.param_count(), 221_824);
        // Plus Dense(32 -> 4): 132 => 221 956 (paper §III.B.3).
        assert_eq!(layer.param_count() + 32 * 4 + 4, 221_956);
    }

    #[test]
    fn output_is_units_long() {
        let mut layer = Lstm::new(3, 4, 5, &mut rng()).unwrap();
        let out = layer.forward(&[0.1; 12], false);
        assert_eq!(out.len(), 5);
        assert!(out.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn hidden_state_is_bounded() {
        // h = o * tanh(c): |h| <= 1.
        let mut layer = Lstm::new(10, 3, 4, &mut rng()).unwrap();
        let input: Vec<f32> = (0..30).map(|i| (i as f32 * 1.3).sin() * 10.0).collect();
        let out = layer.forward(&input, false);
        assert!(out.iter().all(|v| v.abs() <= 1.0));
    }

    #[test]
    fn constant_input_converges_towards_fixed_point() {
        let mut short = Lstm::new(2, 2, 3, &mut rng()).unwrap();
        let mut long = Lstm::new(40, 2, 3, &mut rng()).unwrap();
        long.import_params(&short.export_params()).unwrap();
        let x2: Vec<f32> = [0.5, -0.5].repeat(2);
        let x40: Vec<f32> = [0.5, -0.5].repeat(40);
        let out_short = short.forward(&x2, false);
        let out_long_a = long.forward(&x40, false);
        // Running even longer barely changes the state.
        let mut longer = Lstm::new(41, 2, 3, &mut rng()).unwrap();
        longer.import_params(&short.export_params()).unwrap();
        let x41: Vec<f32> = [0.5, -0.5].repeat(41);
        let out_long_b = longer.forward(&x41, false);
        let drift: f32 = out_long_a
            .iter()
            .zip(&out_long_b)
            .map(|(a, b)| (a - b).abs())
            .sum();
        let initial_motion: f32 = out_short
            .iter()
            .zip(&out_long_a)
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(drift < 0.05 * (initial_motion + 0.1), "drift {drift}");
    }

    #[test]
    fn backward_matches_numeric_input_gradients() {
        let mut layer = Lstm::new(4, 3, 3, &mut rng()).unwrap();
        let input: Vec<f32> = (0..12).map(|i| ((i as f32) * 0.7).sin()).collect();
        let upstream = [0.5f32, -1.0, 1.5];
        layer.forward(&input, true);
        layer.zero_grads();
        let grad_in = layer.backward(&upstream);

        let loss = |l: &mut Lstm, x: &[f32]| -> f32 {
            l.forward(x, false)
                .iter()
                .zip(&upstream)
                .map(|(y, u)| y * u)
                .sum()
        };
        let eps = 1e-3;
        for i in 0..input.len() {
            let mut hi = input.clone();
            hi[i] += eps;
            let mut lo = input.clone();
            lo[i] -= eps;
            let num = (loss(&mut layer, &hi) - loss(&mut layer, &lo)) / (2.0 * eps);
            assert!(
                (grad_in[i] - num).abs() < 1e-2,
                "input grad {i}: analytic {} numeric {num}",
                grad_in[i]
            );
        }
    }

    #[test]
    fn backward_matches_numeric_weight_gradients() {
        let mut layer = Lstm::new(3, 2, 2, &mut rng()).unwrap();
        let input: Vec<f32> = (0..6).map(|i| 0.3 * i as f32 - 0.8).collect();
        let upstream = [1.0f32, -0.5];
        layer.forward(&input, true);
        layer.zero_grads();
        layer.backward(&upstream);
        let mut analytic = Vec::new();
        layer.visit_params(&mut |_p, g| analytic.push(g.to_vec()));

        let loss = |l: &mut Lstm, x: &[f32]| -> f32 {
            l.forward(x, false)
                .iter()
                .zip(&upstream)
                .map(|(y, u)| y * u)
                .sum()
        };
        let eps = 1e-3;
        let mut exported = layer.export_params();
        // Check a spread of W, U and b entries.
        for (tensor, idx) in [(0usize, 0usize), (0, 7), (1, 3), (2, 1), (2, 5)] {
            let orig = exported[tensor][idx];
            exported[tensor][idx] = orig + eps;
            layer.import_params(&exported).unwrap();
            let f_hi = loss(&mut layer, &input);
            exported[tensor][idx] = orig - eps;
            layer.import_params(&exported).unwrap();
            let f_lo = loss(&mut layer, &input);
            exported[tensor][idx] = orig;
            layer.import_params(&exported).unwrap();
            let num = (f_hi - f_lo) / (2.0 * eps);
            assert!(
                (analytic[tensor][idx] - num).abs() < 1e-2,
                "tensor {tensor} idx {idx}: analytic {} numeric {num}",
                analytic[tensor][idx]
            );
        }
    }

    #[test]
    fn order_of_timesteps_matters() {
        let mut layer = Lstm::new(3, 2, 4, &mut rng()).unwrap();
        let fwd = layer.forward(&[1.0, 0.0, 0.0, 1.0, -1.0, 0.5], false);
        let rev = layer.forward(&[-1.0, 0.5, 0.0, 1.0, 1.0, 0.0], false);
        let diff: f32 = fwd.iter().zip(&rev).map(|(a, b)| (a - b).abs()).sum();
        assert!(diff > 1e-4, "LSTM ignored sequence order");
    }

    #[test]
    fn rejects_zero_dims() {
        assert!(Lstm::new(0, 3, 3, &mut rng()).is_err());
        assert!(Lstm::new(3, 0, 3, &mut rng()).is_err());
        assert!(Lstm::new(3, 3, 0, &mut rng()).is_err());
    }
}
