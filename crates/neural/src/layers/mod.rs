//! Network layers.
//!
//! Every layer processes one sample at a time on flat `f32` slices; the
//! shape semantics (channels × length for convolutional layers, timesteps
//! × features for the LSTM) are documented per layer. Batching is done by
//! the trainer, which accumulates gradients across the samples of a batch
//! before an optimizer step.

mod conv1d;
mod dense;
mod dropout;
mod highway;
mod local1d;
mod lstm;
mod pool;
mod shape;

pub use conv1d::Conv1d;
pub use dense::Dense;
pub use dropout::Dropout;
pub use highway::{Highway, ResidualDense};
pub use local1d::LocallyConnected1d;
pub use lstm::Lstm;
pub use pool::{AvgPool1d, MaxPool1d};
pub use shape::{Flatten, Reshape};

use serde::{Deserialize, Serialize};

use crate::NeuralError;

/// One row of a network summary (the shape of the paper's Table 1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerSummary {
    /// Layer kind, e.g. `"Conv1D"`.
    pub kind: String,
    /// Human-readable output shape, e.g. `"25 x 120"`.
    pub output_shape: String,
    /// Configuration detail, e.g. `"filters=25 kernel=20 stride=3"`.
    pub config: String,
    /// Activation short name (empty for shape-only layers).
    pub activation: String,
    /// Number of trainable parameters.
    pub parameters: usize,
}

/// A neural-network layer: single-sample forward/backward with internal
/// caching and gradient accumulation.
///
/// Contract:
/// * `forward` caches whatever `backward` needs; calling `backward`
///   without a preceding `forward` is a programming error and may panic;
/// * `backward` *accumulates* into the parameter gradients (the trainer
///   zeroes them per batch via [`Layer::zero_grads`]) and returns the
///   gradient w.r.t. the layer input;
/// * `visit_params` exposes `(params, grads)` tensor pairs in a stable
///   order for the optimizer.
pub trait Layer: std::fmt::Debug + Send {
    /// Static layer kind name, e.g. `"Dense"`.
    fn kind(&self) -> &'static str;

    /// Expected input length (flattened).
    fn input_len(&self) -> usize;

    /// Produced output length (flattened).
    fn output_len(&self) -> usize;

    /// Computes the layer output for one sample. `training` enables
    /// train-only behaviour (dropout).
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != self.input_len()`.
    fn forward(&mut self, input: &[f32], training: bool) -> Vec<f32>;

    /// Back-propagates `grad_output` (w.r.t. this layer's output) through
    /// the most recent `forward`, accumulating parameter gradients, and
    /// returns the gradient w.r.t. the input.
    ///
    /// # Panics
    ///
    /// Panics if `grad_output.len() != self.output_len()` or no forward
    /// pass has been run.
    fn backward(&mut self, grad_output: &[f32]) -> Vec<f32>;

    /// Number of trainable parameters.
    fn param_count(&self) -> usize {
        0
    }

    /// Visits `(params, grads)` tensor pairs in a stable order.
    fn visit_params(&mut self, _visitor: &mut dyn FnMut(&mut [f32], &mut [f32])) {}

    /// Zeroes all accumulated gradients.
    fn zero_grads(&mut self) {}

    /// A summary row for [`crate::Network::summary`].
    fn summary(&self) -> LayerSummary;

    /// Exports parameter tensors (same order as `visit_params`).
    fn export_params(&self) -> Vec<Vec<f32>> {
        Vec::new()
    }

    /// Imports parameter tensors previously produced by `export_params`.
    ///
    /// # Errors
    ///
    /// Returns [`NeuralError::InvalidWeights`] if tensor count or sizes
    /// do not match.
    fn import_params(&mut self, params: &[Vec<f32>]) -> Result<(), NeuralError> {
        if params.is_empty() {
            Ok(())
        } else {
            Err(NeuralError::InvalidWeights(format!(
                "layer {} has no parameters but {} tensors were provided",
                self.kind(),
                params.len()
            )))
        }
    }
}

/// Helper: import `src` tensors into `dst` slices, validating sizes.
pub(crate) fn import_into(
    kind: &str,
    dst: &mut [&mut Vec<f32>],
    src: &[Vec<f32>],
) -> Result<(), NeuralError> {
    if dst.len() != src.len() {
        return Err(NeuralError::InvalidWeights(format!(
            "layer {kind}: expected {} tensors, got {}",
            dst.len(),
            src.len()
        )));
    }
    for (d, s) in dst.iter_mut().zip(src) {
        if d.len() != s.len() {
            return Err(NeuralError::InvalidWeights(format!(
                "layer {kind}: tensor size {} does not match {}",
                s.len(),
                d.len()
            )));
        }
        d.copy_from_slice(s);
    }
    Ok(())
}

/// Output length of a valid (no padding) 1-D convolution.
///
/// # Errors
///
/// Returns [`NeuralError::InvalidSpec`] if the kernel exceeds the input
/// length, or kernel/stride are zero.
pub fn conv_output_len(input_len: usize, kernel: usize, stride: usize) -> Result<usize, NeuralError> {
    if kernel == 0 || stride == 0 {
        return Err(NeuralError::InvalidSpec(format!(
            "kernel ({kernel}) and stride ({stride}) must be non-zero"
        )));
    }
    if kernel > input_len {
        return Err(NeuralError::InvalidSpec(format!(
            "kernel {kernel} exceeds input length {input_len}"
        )));
    }
    Ok((input_len - kernel) / stride + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_output_len_matches_paper_table1() {
        // Paper Table 1 stack on a 397-point input:
        let l1 = conv_output_len(397, 20, 1).unwrap();
        assert_eq!(l1, 378);
        let l2 = conv_output_len(l1, 20, 3).unwrap();
        assert_eq!(l2, 120);
        let l3 = conv_output_len(l2, 15, 2).unwrap();
        assert_eq!(l3, 53);
        let l4 = conv_output_len(l3, 15, 4).unwrap();
        assert_eq!(l4, 10);
    }

    #[test]
    fn conv_output_len_rejects_bad_params() {
        assert!(conv_output_len(10, 0, 1).is_err());
        assert!(conv_output_len(10, 3, 0).is_err());
        assert!(conv_output_len(10, 11, 1).is_err());
    }

    #[test]
    fn locally_connected_output_matches_design() {
        // DESIGN.md §5: 1700-point input, kernel 9, stride 9 -> 188.
        assert_eq!(conv_output_len(1700, 9, 9).unwrap(), 188);
    }
}
