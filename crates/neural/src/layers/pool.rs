//! 1-D pooling layers (channels-first layout, valid padding).

use crate::layers::{conv_output_len, Layer, LayerSummary};
use crate::NeuralError;

/// Max pooling over non-overlapping or strided windows.
#[derive(Debug, Clone)]
pub struct MaxPool1d {
    channels: usize,
    in_len: usize,
    pool: usize,
    stride: usize,
    out_len: usize,
    /// Argmax index per output element, for backward routing.
    cached_argmax: Vec<usize>,
}

impl MaxPool1d {
    /// Creates a max-pooling layer.
    ///
    /// # Errors
    ///
    /// Returns [`NeuralError::InvalidSpec`] on zero dimensions or a pool
    /// window larger than the input.
    pub fn new(channels: usize, in_len: usize, pool: usize, stride: usize) -> Result<Self, NeuralError> {
        if channels == 0 {
            return Err(NeuralError::InvalidSpec("pooling needs channels".into()));
        }
        let out_len = conv_output_len(in_len, pool, stride)?;
        Ok(Self {
            channels,
            in_len,
            pool,
            stride,
            out_len,
            cached_argmax: Vec::new(),
        })
    }
}

impl Layer for MaxPool1d {
    fn kind(&self) -> &'static str {
        "MaxPool1D"
    }

    fn input_len(&self) -> usize {
        self.channels * self.in_len
    }

    fn output_len(&self) -> usize {
        self.channels * self.out_len
    }

    fn forward(&mut self, input: &[f32], _training: bool) -> Vec<f32> {
        assert_eq!(input.len(), self.input_len(), "maxpool input length");
        let mut out = vec![0.0f32; self.output_len()];
        self.cached_argmax = vec![0; self.output_len()];
        for c in 0..self.channels {
            for op in 0..self.out_len {
                let start = c * self.in_len + op * self.stride;
                let window = &input[start..start + self.pool];
                // Panic-free tie-last max (same selection as
                // `max_by(partial_cmp)` on finite values; non-finite
                // entries are skipped instead of panicking).
                let mut k = 0usize;
                let mut v = f32::NEG_INFINITY;
                for (j, &x) in window.iter().enumerate() {
                    if x >= v {
                        v = x;
                        k = j;
                    }
                }
                out[c * self.out_len + op] = v;
                self.cached_argmax[c * self.out_len + op] = start + k;
            }
        }
        out
    }

    fn backward(&mut self, grad_output: &[f32]) -> Vec<f32> {
        assert_eq!(grad_output.len(), self.output_len(), "maxpool grad length");
        assert!(
            !self.cached_argmax.is_empty(),
            "backward called before forward"
        );
        let mut grad_in = vec![0.0f32; self.input_len()];
        for (g, &src) in grad_output.iter().zip(&self.cached_argmax) {
            grad_in[src] += g;
        }
        grad_in
    }

    fn summary(&self) -> LayerSummary {
        LayerSummary {
            kind: "MaxPool1D".into(),
            output_shape: format!("{} x {}", self.channels, self.out_len),
            config: format!("pool={} stride={}", self.pool, self.stride),
            activation: String::new(),
            parameters: 0,
        }
    }
}

/// Average pooling over strided windows.
#[derive(Debug, Clone)]
pub struct AvgPool1d {
    channels: usize,
    in_len: usize,
    pool: usize,
    stride: usize,
    out_len: usize,
    ran_forward: bool,
}

impl AvgPool1d {
    /// Creates an average-pooling layer.
    ///
    /// # Errors
    ///
    /// Returns [`NeuralError::InvalidSpec`] on zero dimensions or a pool
    /// window larger than the input.
    pub fn new(channels: usize, in_len: usize, pool: usize, stride: usize) -> Result<Self, NeuralError> {
        if channels == 0 {
            return Err(NeuralError::InvalidSpec("pooling needs channels".into()));
        }
        let out_len = conv_output_len(in_len, pool, stride)?;
        Ok(Self {
            channels,
            in_len,
            pool,
            stride,
            out_len,
            ran_forward: false,
        })
    }
}

impl Layer for AvgPool1d {
    fn kind(&self) -> &'static str {
        "AvgPool1D"
    }

    fn input_len(&self) -> usize {
        self.channels * self.in_len
    }

    fn output_len(&self) -> usize {
        self.channels * self.out_len
    }

    fn forward(&mut self, input: &[f32], _training: bool) -> Vec<f32> {
        assert_eq!(input.len(), self.input_len(), "avgpool input length");
        self.ran_forward = true;
        let mut out = vec![0.0f32; self.output_len()];
        let inv = 1.0 / self.pool as f32;
        for c in 0..self.channels {
            for op in 0..self.out_len {
                let start = c * self.in_len + op * self.stride;
                let sum: f32 = input[start..start + self.pool].iter().sum();
                out[c * self.out_len + op] = sum * inv;
            }
        }
        out
    }

    fn backward(&mut self, grad_output: &[f32]) -> Vec<f32> {
        assert_eq!(grad_output.len(), self.output_len(), "avgpool grad length");
        assert!(self.ran_forward, "backward called before forward");
        let mut grad_in = vec![0.0f32; self.input_len()];
        let inv = 1.0 / self.pool as f32;
        for c in 0..self.channels {
            for op in 0..self.out_len {
                let g = grad_output[c * self.out_len + op] * inv;
                let start = c * self.in_len + op * self.stride;
                for slot in grad_in[start..start + self.pool].iter_mut() {
                    *slot += g;
                }
            }
        }
        grad_in
    }

    fn summary(&self) -> LayerSummary {
        LayerSummary {
            kind: "AvgPool1D".into(),
            output_shape: format!("{} x {}", self.channels, self.out_len),
            config: format!("pool={} stride={}", self.pool, self.stride),
            activation: String::new(),
            parameters: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maxpool_picks_maxima() {
        let mut layer = MaxPool1d::new(1, 6, 2, 2).unwrap();
        let out = layer.forward(&[1.0, 5.0, 2.0, 2.0, 9.0, 3.0], false);
        assert_eq!(out, vec![5.0, 2.0, 9.0]);
    }

    #[test]
    fn maxpool_backward_routes_to_argmax() {
        let mut layer = MaxPool1d::new(1, 4, 2, 2).unwrap();
        layer.forward(&[1.0, 5.0, 7.0, 2.0], false);
        let grad = layer.backward(&[1.0, 2.0]);
        assert_eq!(grad, vec![0.0, 1.0, 2.0, 0.0]);
    }

    #[test]
    fn maxpool_multi_channel() {
        let mut layer = MaxPool1d::new(2, 4, 2, 2).unwrap();
        let out = layer.forward(&[1.0, 2.0, 3.0, 4.0, 8.0, 7.0, 6.0, 5.0], false);
        assert_eq!(out, vec![2.0, 4.0, 8.0, 6.0]);
    }

    #[test]
    fn avgpool_averages() {
        let mut layer = AvgPool1d::new(1, 4, 2, 2).unwrap();
        let out = layer.forward(&[1.0, 3.0, 5.0, 7.0], false);
        assert_eq!(out, vec![2.0, 6.0]);
    }

    #[test]
    fn avgpool_backward_spreads_evenly() {
        let mut layer = AvgPool1d::new(1, 4, 2, 2).unwrap();
        layer.forward(&[1.0, 3.0, 5.0, 7.0], false);
        let grad = layer.backward(&[2.0, 4.0]);
        assert_eq!(grad, vec![1.0, 1.0, 2.0, 2.0]);
    }

    #[test]
    fn overlapping_stride_counts_twice() {
        let mut layer = AvgPool1d::new(1, 3, 2, 1).unwrap();
        layer.forward(&[1.0, 2.0, 3.0], false);
        let grad = layer.backward(&[2.0, 2.0]);
        // Middle sample belongs to both windows.
        assert_eq!(grad, vec![1.0, 2.0, 1.0]);
    }

    #[test]
    fn pools_have_no_params() {
        let max = MaxPool1d::new(2, 8, 2, 2).unwrap();
        let avg = AvgPool1d::new(2, 8, 2, 2).unwrap();
        assert_eq!(max.param_count(), 0);
        assert_eq!(avg.param_count(), 0);
    }

    #[test]
    fn invalid_specs_rejected() {
        assert!(MaxPool1d::new(0, 8, 2, 2).is_err());
        assert!(MaxPool1d::new(1, 2, 3, 1).is_err());
        assert!(AvgPool1d::new(1, 8, 2, 0).is_err());
    }
}
