//! Optimizers: SGD with momentum, and Adam.
//!
//! Optimizers keep per-tensor state addressed by a stable *slot* index,
//! which [`crate::Network::apply_gradients`] assigns by visiting layer
//! parameter tensors in order.

use serde::{Deserialize, Serialize};

use crate::NeuralError;

/// A first-order optimizer stepping one parameter tensor at a time.
pub trait Optimizer: std::fmt::Debug + Send {
    /// Applies one update to `params` given `grads`. `slot` identifies
    /// the tensor so stateful optimizers can keep per-tensor moments.
    fn step(&mut self, slot: usize, params: &mut [f32], grads: &[f32]);

    /// The configured learning rate.
    fn learning_rate(&self) -> f32;

    /// Overrides the learning rate (e.g. for decay schedules).
    fn set_learning_rate(&mut self, lr: f32);

    /// Snapshots the internal per-slot state (for checkpointing).
    fn export_state(&self) -> OptimizerState;

    /// Restores state previously produced by [`Optimizer::export_state`].
    ///
    /// # Errors
    ///
    /// Returns [`NeuralError::InvalidWeights`] if `state` belongs to a
    /// different optimizer kind.
    fn import_state(&mut self, state: &OptimizerState) -> Result<(), NeuralError>;
}

/// Serializable snapshot of an optimizer's mutable state, captured in
/// training checkpoints so a resumed run reproduces the uninterrupted one
/// bit for bit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum OptimizerState {
    /// State of [`Sgd`]: per-slot velocity tensors.
    Sgd {
        /// Momentum buffers, indexed by slot.
        velocity: Vec<Vec<f32>>,
    },
    /// State of [`Adam`]: step count plus per-slot moment tensors.
    Adam {
        /// Number of optimization passes taken so far.
        step: u64,
        /// First-moment (mean) buffers, indexed by slot.
        first_moments: Vec<Vec<f32>>,
        /// Second-moment (uncentred variance) buffers, indexed by slot.
        second_moments: Vec<Vec<f32>>,
    },
}

/// Serializable optimizer choice for config-driven training.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum OptimizerSpec {
    /// Stochastic gradient descent with momentum.
    Sgd {
        /// Learning rate.
        lr: f32,
        /// Momentum coefficient in `[0, 1)`.
        momentum: f32,
    },
    /// Adam with the usual defaults.
    Adam {
        /// Learning rate.
        lr: f32,
    },
}

impl OptimizerSpec {
    /// Builds the optimizer.
    pub fn build(&self) -> Box<dyn Optimizer> {
        match *self {
            OptimizerSpec::Sgd { lr, momentum } => Box::new(Sgd::new(lr, momentum)),
            OptimizerSpec::Adam { lr } => Box::new(Adam::new(lr)),
        }
    }
}

impl Default for OptimizerSpec {
    fn default() -> Self {
        OptimizerSpec::Adam { lr: 1e-3 }
    }
}

/// SGD with classical momentum.
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    velocity: Vec<Vec<f32>>,
}

impl Sgd {
    /// Creates an SGD optimizer.
    pub fn new(lr: f32, momentum: f32) -> Self {
        Self {
            lr,
            momentum,
            velocity: Vec::new(),
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, slot: usize, params: &mut [f32], grads: &[f32]) {
        assert_eq!(params.len(), grads.len(), "sgd shape mismatch");
        while self.velocity.len() <= slot {
            self.velocity.push(Vec::new());
        }
        let v = &mut self.velocity[slot];
        if v.len() != params.len() {
            *v = vec![0.0; params.len()];
        }
        for ((p, &g), vi) in params.iter_mut().zip(grads).zip(v.iter_mut()) {
            *vi = self.momentum * *vi - self.lr * g;
            *p += *vi;
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }

    fn export_state(&self) -> OptimizerState {
        OptimizerState::Sgd {
            velocity: self.velocity.clone(),
        }
    }

    fn import_state(&mut self, state: &OptimizerState) -> Result<(), NeuralError> {
        match state {
            OptimizerState::Sgd { velocity } => {
                self.velocity = velocity.clone();
                Ok(())
            }
            other => Err(NeuralError::InvalidWeights(format!(
                "cannot import {other:?} state into Sgd"
            ))),
        }
    }
}

/// Adam (Kingma & Ba) with bias correction.
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    epsilon: f32,
    t: u64,
    moments: Vec<(Vec<f32>, Vec<f32>)>,
}

impl Adam {
    /// Creates Adam with standard betas (0.9, 0.999) and eps `1e-8`.
    pub fn new(lr: f32) -> Self {
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            epsilon: 1e-8,
            t: 0,
            moments: Vec::new(),
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, slot: usize, params: &mut [f32], grads: &[f32]) {
        assert_eq!(params.len(), grads.len(), "adam shape mismatch");
        while self.moments.len() <= slot {
            self.moments.push((Vec::new(), Vec::new()));
        }
        // Advance time once per optimization pass: slot 0 marks a new pass.
        if slot == 0 {
            self.t += 1;
        }
        let t = self.t.max(1);
        let (m, v) = &mut self.moments[slot];
        if m.len() != params.len() {
            *m = vec![0.0; params.len()];
            *v = vec![0.0; params.len()];
        }
        let bc1 = 1.0 - self.beta1.powi(t as i32);
        let bc2 = 1.0 - self.beta2.powi(t as i32);
        for (((p, &g), mi), vi) in params
            .iter_mut()
            .zip(grads)
            .zip(m.iter_mut())
            .zip(v.iter_mut())
        {
            *mi = self.beta1 * *mi + (1.0 - self.beta1) * g;
            *vi = self.beta2 * *vi + (1.0 - self.beta2) * g * g;
            let m_hat = *mi / bc1;
            let v_hat = *vi / bc2;
            *p -= self.lr * m_hat / (v_hat.sqrt() + self.epsilon);
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }

    fn export_state(&self) -> OptimizerState {
        OptimizerState::Adam {
            step: self.t,
            first_moments: self.moments.iter().map(|(m, _)| m.clone()).collect(),
            second_moments: self.moments.iter().map(|(_, v)| v.clone()).collect(),
        }
    }

    fn import_state(&mut self, state: &OptimizerState) -> Result<(), NeuralError> {
        match state {
            OptimizerState::Adam {
                step,
                first_moments,
                second_moments,
            } => {
                if first_moments.len() != second_moments.len() {
                    return Err(NeuralError::InvalidWeights(format!(
                        "adam state has {} first moments but {} second moments",
                        first_moments.len(),
                        second_moments.len()
                    )));
                }
                self.t = *step;
                self.moments = first_moments
                    .iter()
                    .cloned()
                    .zip(second_moments.iter().cloned())
                    .collect();
                Ok(())
            }
            other => Err(NeuralError::InvalidWeights(format!(
                "cannot import {other:?} state into Adam"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimizes f(x) = (x - 3)^2 and returns the final x.
    fn minimize(optimizer: &mut dyn Optimizer, steps: usize) -> f32 {
        let mut x = vec![0.0f32];
        for _ in 0..steps {
            let grad = vec![2.0 * (x[0] - 3.0)];
            optimizer.step(0, &mut x, &grad);
        }
        x[0]
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut opt = Sgd::new(0.1, 0.0);
        let x = minimize(&mut opt, 100);
        assert!((x - 3.0).abs() < 1e-3, "x = {x}");
    }

    #[test]
    fn sgd_momentum_accelerates() {
        let mut plain = Sgd::new(0.01, 0.0);
        let mut momentum = Sgd::new(0.01, 0.9);
        let x_plain = minimize(&mut plain, 30);
        let x_momentum = minimize(&mut momentum, 30);
        assert!((x_momentum - 3.0).abs() < (x_plain - 3.0).abs());
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut opt = Adam::new(0.1);
        let x = minimize(&mut opt, 300);
        assert!((x - 3.0).abs() < 1e-2, "x = {x}");
    }

    #[test]
    fn adam_handles_multiple_slots_independently() {
        let mut opt = Adam::new(0.05);
        let mut a = vec![0.0f32];
        let mut b = vec![0.0f32];
        for _ in 0..500 {
            let ga = vec![2.0 * (a[0] - 1.0)];
            let gb = vec![2.0 * (b[0] + 2.0)];
            opt.step(0, &mut a, &ga);
            opt.step(1, &mut b, &gb);
        }
        assert!((a[0] - 1.0).abs() < 0.05, "a = {}", a[0]);
        assert!((b[0] + 2.0).abs() < 0.05, "b = {}", b[0]);
    }

    #[test]
    fn spec_builds_expected_kind() {
        let sgd = OptimizerSpec::Sgd {
            lr: 0.1,
            momentum: 0.5,
        }
        .build();
        assert_eq!(sgd.learning_rate(), 0.1);
        let adam = OptimizerSpec::Adam { lr: 0.002 }.build();
        assert_eq!(adam.learning_rate(), 0.002);
    }

    #[test]
    fn learning_rate_can_be_decayed() {
        let mut opt = Adam::new(0.01);
        opt.set_learning_rate(0.001);
        assert_eq!(opt.learning_rate(), 0.001);
    }

    #[test]
    fn state_roundtrip_resumes_identically() {
        // Drive two copies: one stepping straight through, one exported
        // and re-imported mid-run. Their trajectories must match exactly.
        for spec in [
            OptimizerSpec::Sgd {
                lr: 0.05,
                momentum: 0.9,
            },
            OptimizerSpec::Adam { lr: 0.05 },
        ] {
            let mut straight = spec.build();
            let mut resumed = spec.build();
            let mut x_straight = vec![0.0f32, 4.0];
            let mut x_resumed = x_straight.clone();
            for _ in 0..10 {
                let g: Vec<f32> = x_straight.iter().map(|x| 2.0 * (x - 3.0)).collect();
                straight.step(0, &mut x_straight, &g);
                let g: Vec<f32> = x_resumed.iter().map(|x| 2.0 * (x - 3.0)).collect();
                resumed.step(0, &mut x_resumed, &g);
            }
            let snapshot = resumed.export_state();
            let mut fresh = spec.build();
            fresh.import_state(&snapshot).unwrap();
            for _ in 0..10 {
                let g: Vec<f32> = x_straight.iter().map(|x| 2.0 * (x - 3.0)).collect();
                straight.step(0, &mut x_straight, &g);
                let g: Vec<f32> = x_resumed.iter().map(|x| 2.0 * (x - 3.0)).collect();
                fresh.step(0, &mut x_resumed, &g);
            }
            assert_eq!(x_straight, x_resumed, "{spec:?}");
        }
    }

    #[test]
    fn state_import_rejects_kind_mismatch() {
        let mut sgd = Sgd::new(0.1, 0.9);
        let adam_state = Adam::new(0.1).export_state();
        assert!(sgd.import_state(&adam_state).is_err());
        let mut adam = Adam::new(0.1);
        let sgd_state = Sgd::new(0.1, 0.9).export_state();
        assert!(adam.import_state(&sgd_state).is_err());
    }
}
