//! A from-scratch `f32` neural-network framework.
//!
//! This crate substitutes for the TensorFlow/Keras stack of the paper
//! (DESIGN.md §2). It implements exactly the ingredients the paper's
//! networks need — nothing more, nothing speculative:
//!
//! * layers: [`layers::Dense`], [`layers::Conv1d`],
//!   [`layers::LocallyConnected1d`], [`layers::Lstm`],
//!   [`layers::MaxPool1d`], [`layers::AvgPool1d`], [`layers::Dropout`],
//!   [`layers::Flatten`], [`layers::Reshape`];
//! * activations: ReLU, SELU, Softmax, Linear, Sigmoid, Tanh
//!   ([`Activation`]);
//! * losses: mean absolute error (the paper's MS training loss) and mean
//!   squared error ([`Loss`]);
//! * optimizers: SGD with momentum and Adam ([`optim`]);
//! * config-driven topologies ([`spec::NetworkSpec`]) so that networks can
//!   be defined "without modifying the source code" (paper §III.A.2);
//! * training with validation tracking ([`train::Trainer`]) and JSON
//!   weight export for embedded deployment ([`export`]).
//!
//! # Example
//!
//! Train a tiny regression network:
//!
//! ```
//! use neural::spec::{LayerSpec, NetworkSpec};
//! use neural::train::{Dataset, TrainConfig, Trainer};
//! use neural::{Activation, Loss};
//!
//! # fn main() -> Result<(), neural::NeuralError> {
//! let spec = NetworkSpec::new(2)
//!     .layer(LayerSpec::Dense { units: 8, activation: Activation::Relu })
//!     .layer(LayerSpec::Dense { units: 1, activation: Activation::Linear });
//! let mut network = spec.build(42)?;
//!
//! // Learn f(a, b) = a + b.
//! let inputs: Vec<Vec<f32>> = (0..64)
//!     .map(|i| vec![(i % 8) as f32 / 8.0, (i / 8) as f32 / 8.0])
//!     .collect();
//! let targets: Vec<Vec<f32>> = inputs.iter().map(|v| vec![v[0] + v[1]]).collect();
//! let data = Dataset::new(inputs, targets)?;
//!
//! let config = TrainConfig { epochs: 200, batch_size: 8, ..TrainConfig::default() };
//! let history = Trainer::new(config).fit(&mut network, &data, None)?;
//! assert!(history.final_train_loss() < 0.05);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod activation;
mod checked;
pub mod export;
pub mod guard;
pub mod init;
pub mod layers;
pub mod loss;
pub mod network;
pub mod optim;
pub mod plan;
pub mod spec;
pub mod train;

mod error;

pub use activation::Activation;
pub use error::NeuralError;
pub use loss::Loss;
pub use network::Network;
