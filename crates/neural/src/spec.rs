//! Config-driven network topologies.
//!
//! The paper's Tool 4 "allow[s] the definition of one or more network
//! topologies ... without modifying the source code" (§III.A.2). A
//! [`NetworkSpec`] is a serde-serializable description that builds a
//! [`Network`]; specs travel through the datastore and the export format.

use serde::{Deserialize, Serialize};

use crate::layers::{
    AvgPool1d, Conv1d, Dense, Dropout, Flatten, Highway, Layer, LocallyConnected1d, Lstm,
    MaxPool1d, Reshape, ResidualDense,
};
use crate::{Activation, Network, NeuralError};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// One layer of a [`NetworkSpec`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LayerSpec {
    /// Reinterpret the flat input as `channels × (len / channels)`.
    Reshape {
        /// Number of channels.
        channels: usize,
    },
    /// Strided 1-D convolution.
    Conv1d {
        /// Output channels.
        filters: usize,
        /// Kernel width.
        kernel: usize,
        /// Stride.
        stride: usize,
        /// Activation.
        activation: Activation,
    },
    /// Locally connected 1-D layer (unshared kernels).
    LocallyConnected1d {
        /// Output channels.
        filters: usize,
        /// Kernel width.
        kernel: usize,
        /// Stride.
        stride: usize,
        /// Activation.
        activation: Activation,
    },
    /// Max pooling.
    MaxPool1d {
        /// Window size.
        pool: usize,
        /// Stride.
        stride: usize,
    },
    /// Average pooling.
    AvgPool1d {
        /// Window size.
        pool: usize,
        /// Stride.
        stride: usize,
    },
    /// Flatten `channels × len` to a vector.
    Flatten,
    /// Fully connected layer.
    Dense {
        /// Output units.
        units: usize,
        /// Activation.
        activation: Activation,
    },
    /// Inverted dropout.
    Dropout {
        /// Drop probability in `[0, 1)`.
        rate: f32,
    },
    /// Highway layer (width = current flat length).
    Highway {
        /// Candidate-branch activation.
        activation: Activation,
    },
    /// Residual dense block (width = current flat length).
    ResidualDense {
        /// Branch activation.
        activation: Activation,
    },
    /// LSTM over `timesteps`, each of `len / timesteps` features,
    /// returning the last hidden state.
    Lstm {
        /// Hidden units.
        units: usize,
        /// Sequence length.
        timesteps: usize,
    },
}

/// A complete, buildable network description.
///
/// # Example
///
/// The paper's Table 1 network for an 8-substance measurement task:
///
/// ```
/// use neural::spec::{LayerSpec, NetworkSpec};
/// use neural::Activation;
///
/// # fn main() -> Result<(), neural::NeuralError> {
/// let spec = NetworkSpec::new(397)
///     .layer(LayerSpec::Reshape { channels: 1 })
///     .layer(LayerSpec::Conv1d { filters: 25, kernel: 20, stride: 1, activation: Activation::Selu })
///     .layer(LayerSpec::Conv1d { filters: 25, kernel: 20, stride: 3, activation: Activation::Selu })
///     .layer(LayerSpec::Conv1d { filters: 25, kernel: 15, stride: 2, activation: Activation::Selu })
///     .layer(LayerSpec::Conv1d { filters: 15, kernel: 15, stride: 4, activation: Activation::Softmax })
///     .layer(LayerSpec::Flatten)
///     .layer(LayerSpec::Dense { units: 8, activation: Activation::Softmax });
/// let net = spec.build(42)?;
/// assert_eq!(net.output_len(), 8);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkSpec {
    /// Flat input length.
    pub input_len: usize,
    /// Ordered layer specifications.
    pub layers: Vec<LayerSpec>,
}

impl NetworkSpec {
    /// Starts a spec for inputs of `input_len` values.
    pub fn new(input_len: usize) -> Self {
        Self {
            input_len,
            layers: Vec::new(),
        }
    }

    /// Appends a layer (builder style).
    #[must_use]
    pub fn layer(mut self, layer: LayerSpec) -> Self {
        self.layers.push(layer);
        self
    }

    /// Builds the network with weights seeded by `seed`.
    ///
    /// # Errors
    ///
    /// Returns [`NeuralError::InvalidSpec`] if any layer is inconsistent
    /// with the running shape (e.g. reshape channels not dividing the
    /// length, kernel larger than input, LSTM timesteps not dividing).
    pub fn build(&self, seed: u64) -> Result<Network, NeuralError> {
        if self.input_len == 0 {
            return Err(NeuralError::InvalidSpec("input length is zero".into()));
        }
        if self.layers.is_empty() {
            return Err(NeuralError::InvalidSpec("spec has no layers".into()));
        }
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut network = Network::new();
        // Running shape: channels × len (flat = 1 × len).
        let mut channels = 1usize;
        let mut len = self.input_len;
        for (i, layer) in self.layers.iter().enumerate() {
            let invalid = |msg: String| NeuralError::InvalidSpec(format!("layer {i}: {msg}"));
            match *layer {
                LayerSpec::Reshape { channels: ch } => {
                    let total = channels * len;
                    if ch == 0 || !total.is_multiple_of(ch) {
                        return Err(invalid(format!("cannot reshape {total} into {ch} channels")));
                    }
                    channels = ch;
                    len = total / ch;
                    network
                        .push(Box::new(Reshape::new(channels, len)?))
                        .expect("shape-checked");
                }
                LayerSpec::Conv1d {
                    filters,
                    kernel,
                    stride,
                    activation,
                } => {
                    let conv =
                        Conv1d::new(channels, len, filters, kernel, stride, activation, &mut rng)
                            .map_err(|e| invalid(e.to_string()))?;
                    channels = filters;
                    len = conv.out_len();
                    network.push(Box::new(conv)).expect("shape-checked");
                }
                LayerSpec::LocallyConnected1d {
                    filters,
                    kernel,
                    stride,
                    activation,
                } => {
                    let local = LocallyConnected1d::new(
                        channels, len, filters, kernel, stride, activation, &mut rng,
                    )
                    .map_err(|e| invalid(e.to_string()))?;
                    channels = filters;
                    len = local.out_len();
                    network.push(Box::new(local)).expect("shape-checked");
                }
                LayerSpec::MaxPool1d { pool, stride } => {
                    let layer = MaxPool1d::new(channels, len, pool, stride)
                        .map_err(|e| invalid(e.to_string()))?;
                    len = layer.output_len() / channels;
                    network.push(Box::new(layer)).expect("shape-checked");
                }
                LayerSpec::AvgPool1d { pool, stride } => {
                    let layer = AvgPool1d::new(channels, len, pool, stride)
                        .map_err(|e| invalid(e.to_string()))?;
                    len = layer.output_len() / channels;
                    network.push(Box::new(layer)).expect("shape-checked");
                }
                LayerSpec::Flatten => {
                    network
                        .push(Box::new(Flatten::new(channels, len)?))
                        .expect("shape-checked");
                    len *= channels;
                    channels = 1;
                }
                LayerSpec::Dense { units, activation } => {
                    let input = channels * len;
                    let dense = Dense::new(input, units, activation, &mut rng)
                        .map_err(|e| invalid(e.to_string()))?;
                    network.push(Box::new(dense)).expect("shape-checked");
                    channels = 1;
                    len = units;
                }
                LayerSpec::Highway { activation } => {
                    let layer = Highway::new(channels * len, activation, &mut rng)
                        .map_err(|e| invalid(e.to_string()))?;
                    network.push(Box::new(layer)).expect("shape-checked");
                    len *= channels;
                    channels = 1;
                }
                LayerSpec::ResidualDense { activation } => {
                    let layer = ResidualDense::new(channels * len, activation, &mut rng)
                        .map_err(|e| invalid(e.to_string()))?;
                    network.push(Box::new(layer)).expect("shape-checked");
                    len *= channels;
                    channels = 1;
                }
                LayerSpec::Dropout { rate } => {
                    let layer = Dropout::new(channels * len, rate, seed ^ (i as u64))
                        .map_err(|e| invalid(e.to_string()))?;
                    network.push(Box::new(layer)).expect("shape-checked");
                }
                LayerSpec::Lstm { units, timesteps } => {
                    let total = channels * len;
                    if timesteps == 0 || !total.is_multiple_of(timesteps) {
                        return Err(invalid(format!(
                            "lstm timesteps {timesteps} must divide input {total}"
                        )));
                    }
                    let features = total / timesteps;
                    let lstm = Lstm::new(timesteps, features, units, &mut rng)
                        .map_err(|e| invalid(e.to_string()))?;
                    network.push(Box::new(lstm)).expect("shape-checked");
                    channels = 1;
                    len = units;
                }
            }
        }
        Ok(network)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table1_spec(outputs: usize) -> NetworkSpec {
        NetworkSpec::new(397)
            .layer(LayerSpec::Reshape { channels: 1 })
            .layer(LayerSpec::Conv1d {
                filters: 25,
                kernel: 20,
                stride: 1,
                activation: Activation::Selu,
            })
            .layer(LayerSpec::Conv1d {
                filters: 25,
                kernel: 20,
                stride: 3,
                activation: Activation::Selu,
            })
            .layer(LayerSpec::Conv1d {
                filters: 25,
                kernel: 15,
                stride: 2,
                activation: Activation::Selu,
            })
            .layer(LayerSpec::Conv1d {
                filters: 15,
                kernel: 15,
                stride: 4,
                activation: Activation::Softmax,
            })
            .layer(LayerSpec::Flatten)
            .layer(LayerSpec::Dense {
                units: outputs,
                activation: Activation::Softmax,
            })
    }

    #[test]
    fn table1_network_builds_with_paper_shapes() {
        let net = table1_spec(8).build(1).unwrap();
        let rows = net.summary();
        // rows: [Reshape, Conv, Conv, Conv, Conv, Flatten, Dense]
        assert_eq!(rows[1].output_shape, "25 x 378");
        assert_eq!(rows[2].output_shape, "25 x 120");
        assert_eq!(rows[3].output_shape, "25 x 53");
        assert_eq!(rows[4].output_shape, "15 x 10");
        assert_eq!(rows[5].output_shape, "150");
        assert_eq!(rows[6].output_shape, "8");
    }

    #[test]
    fn nmr_cnn_has_exactly_10532_params() {
        let net = NetworkSpec::new(1700)
            .layer(LayerSpec::LocallyConnected1d {
                filters: 4,
                kernel: 9,
                stride: 9,
                activation: Activation::Relu,
            })
            .layer(LayerSpec::Flatten)
            .layer(LayerSpec::Dense {
                units: 4,
                activation: Activation::Linear,
            })
            .build(1)
            .unwrap();
        assert_eq!(net.param_count(), 10_532);
    }

    #[test]
    fn nmr_lstm_has_exactly_221956_params() {
        let net = NetworkSpec::new(5 * 1700)
            .layer(LayerSpec::Lstm {
                units: 32,
                timesteps: 5,
            })
            .layer(LayerSpec::Dense {
                units: 4,
                activation: Activation::Linear,
            })
            .build(1)
            .unwrap();
        assert_eq!(net.param_count(), 221_956);
    }

    #[test]
    fn forward_through_built_network() {
        let mut net = table1_spec(8).build(2).unwrap();
        let out = net.predict(&vec![0.1; 397]);
        assert_eq!(out.len(), 8);
        let sum: f32 = out.iter().sum();
        assert!((sum - 1.0).abs() < 1e-5, "softmax output sums to {sum}");
    }

    #[test]
    fn build_is_deterministic_per_seed() {
        let mut a = table1_spec(4).build(9).unwrap();
        let mut b = table1_spec(4).build(9).unwrap();
        let x = vec![0.05; 397];
        assert_eq!(a.predict(&x), b.predict(&x));
        let mut c = table1_spec(4).build(10).unwrap();
        assert_ne!(a.predict(&x), c.predict(&x));
    }

    #[test]
    fn invalid_specs_are_rejected() {
        assert!(NetworkSpec::new(0).layer(LayerSpec::Flatten).build(1).is_err());
        assert!(NetworkSpec::new(4).build(1).is_err());
        // Reshape that does not divide.
        assert!(NetworkSpec::new(5)
            .layer(LayerSpec::Reshape { channels: 2 })
            .build(1)
            .is_err());
        // LSTM timesteps not dividing.
        assert!(NetworkSpec::new(10)
            .layer(LayerSpec::Lstm {
                units: 4,
                timesteps: 3
            })
            .build(1)
            .is_err());
        // Kernel larger than input.
        assert!(NetworkSpec::new(5)
            .layer(LayerSpec::Conv1d {
                filters: 1,
                kernel: 9,
                stride: 1,
                activation: Activation::Linear
            })
            .build(1)
            .is_err());
    }

    #[test]
    fn spec_json_roundtrip() {
        let spec = table1_spec(8);
        let json = serde_json::to_string(&spec).unwrap();
        let back: NetworkSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(spec, back);
    }

    #[test]
    fn pooling_layers_build() {
        let net = NetworkSpec::new(16)
            .layer(LayerSpec::Reshape { channels: 1 })
            .layer(LayerSpec::Conv1d {
                filters: 2,
                kernel: 3,
                stride: 1,
                activation: Activation::Relu,
            })
            .layer(LayerSpec::MaxPool1d { pool: 2, stride: 2 })
            .layer(LayerSpec::AvgPool1d { pool: 2, stride: 2 })
            .layer(LayerSpec::Flatten)
            .layer(LayerSpec::Dropout { rate: 0.2 })
            .layer(LayerSpec::Dense {
                units: 3,
                activation: Activation::Softmax,
            })
            .build(5)
            .unwrap();
        assert_eq!(net.output_len(), 3);
    }
}
