use std::fmt;

use crate::guard::RecoveryEvent;

/// Error type for network construction, training and serialization.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum NeuralError {
    /// A layer specification was inconsistent (e.g. kernel larger than the
    /// input, zero units).
    InvalidSpec(String),
    /// Input data did not match the network's expected shapes.
    ShapeMismatch {
        /// What was expected.
        expected: usize,
        /// What was provided.
        actual: usize,
    },
    /// A dataset was empty or inconsistent.
    InvalidDataset(String),
    /// Training produced a non-finite loss (diverged).
    Diverged {
        /// The epoch at which divergence was detected.
        epoch: usize,
    },
    /// Guarded training exhausted its recovery budget: every rollback +
    /// learning-rate backoff attempt diverged again. Carries the full
    /// recovery history for diagnosis.
    TrainingDiverged {
        /// The epoch at which the final divergence was detected.
        epoch: usize,
        /// Number of rollback attempts that were made.
        retries: usize,
        /// Every recovery action taken before giving up.
        recovery: Vec<RecoveryEvent>,
    },
    /// Weight import failed (wrong tensor count or sizes).
    InvalidWeights(String),
    /// An exported artifact was written by a newer export format than this
    /// build understands (forward-compatibility guard).
    UnsupportedFormat {
        /// Format version found in the artifact.
        found: u32,
        /// Newest format version this build supports.
        supported: u32,
    },
    /// JSON (de)serialization failed.
    Serde(String),
    /// A filesystem operation failed (checkpoint persistence).
    Io(String),
}

impl fmt::Display for NeuralError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NeuralError::InvalidSpec(msg) => write!(f, "invalid layer spec: {msg}"),
            NeuralError::ShapeMismatch { expected, actual } => {
                write!(f, "shape mismatch: expected {expected}, got {actual}")
            }
            NeuralError::InvalidDataset(msg) => write!(f, "invalid dataset: {msg}"),
            NeuralError::Diverged { epoch } => {
                write!(f, "training diverged at epoch {epoch}")
            }
            NeuralError::TrainingDiverged {
                epoch,
                retries,
                recovery,
            } => write!(
                f,
                "training diverged at epoch {epoch} after {retries} rollback attempts \
                 ({} recovery events)",
                recovery.len()
            ),
            NeuralError::InvalidWeights(msg) => write!(f, "invalid weights: {msg}"),
            NeuralError::UnsupportedFormat { found, supported } => write!(
                f,
                "unsupported export format version {found} (this build supports up to {supported})"
            ),
            NeuralError::Serde(msg) => write!(f, "serialization error: {msg}"),
            NeuralError::Io(msg) => write!(f, "io error: {msg}"),
        }
    }
}

impl std::error::Error for NeuralError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(NeuralError::InvalidSpec("x".into()).to_string().contains("x"));
        assert_eq!(
            NeuralError::ShapeMismatch {
                expected: 4,
                actual: 2
            }
            .to_string(),
            "shape mismatch: expected 4, got 2"
        );
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NeuralError>();
    }
}
