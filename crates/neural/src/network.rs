//! A feed-forward network: an ordered stack of layers.

use crate::layers::{Layer, LayerSummary};
use crate::optim::Optimizer;
use crate::{Loss, NeuralError};

/// A sequential neural network.
///
/// Networks are usually built from a [`crate::spec::NetworkSpec`]; direct
/// construction via [`Network::new`] + [`Network::push`] is available for
/// custom stacks.
///
/// # Example
///
/// ```
/// use neural::spec::{LayerSpec, NetworkSpec};
/// use neural::Activation;
///
/// # fn main() -> Result<(), neural::NeuralError> {
/// let net = NetworkSpec::new(4)
///     .layer(LayerSpec::Dense { units: 3, activation: Activation::Softmax })
///     .build(7)?;
/// let out = net.summary();
/// assert_eq!(out.len(), 1);
/// assert_eq!(net.param_count(), 4 * 3 + 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Network {
    layers: Vec<Box<dyn Layer>>,
}

impl Network {
    /// An empty network.
    pub fn new() -> Self {
        Self { layers: Vec::new() }
    }

    /// Appends a layer.
    ///
    /// # Errors
    ///
    /// Returns [`NeuralError::ShapeMismatch`] if the layer's input length
    /// does not match the current output length.
    pub fn push(&mut self, layer: Box<dyn Layer>) -> Result<(), NeuralError> {
        if let Some(last) = self.layers.last() {
            if last.output_len() != layer.input_len() {
                return Err(NeuralError::ShapeMismatch {
                    expected: last.output_len(),
                    actual: layer.input_len(),
                });
            }
        }
        self.layers.push(layer);
        Ok(())
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Returns `true` if the network has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Expected input length.
    ///
    /// # Panics
    ///
    /// Panics if the network is empty.
    pub fn input_len(&self) -> usize {
        self.layers.first().expect("non-empty network").input_len()
    }

    /// Produced output length.
    ///
    /// # Panics
    ///
    /// Panics if the network is empty.
    pub fn output_len(&self) -> usize {
        self.layers.last().expect("non-empty network").output_len()
    }

    /// Total trainable parameters.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(|l| l.param_count()).sum()
    }

    /// Forward pass for one sample (training mode caches activations and
    /// enables dropout).
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != self.input_len()` or the network is
    /// empty.
    pub fn forward(&mut self, input: &[f32], training: bool) -> Vec<f32> {
        let mut x = input.to_vec();
        let mut tracker = crate::checked::FiniteTracker::new(&x);
        for (i, layer) in self.layers.iter_mut().enumerate() {
            x = layer.forward(&x, training);
            tracker.check("Network::forward", i, &x);
        }
        x
    }

    /// Inference convenience: forward in evaluation mode.
    pub fn predict(&mut self, input: &[f32]) -> Vec<f32> {
        self.forward(input, false)
    }

    /// Back-propagates a gradient w.r.t. the network output through all
    /// layers, accumulating parameter gradients.
    ///
    /// # Panics
    ///
    /// Panics if no forward pass preceded this call.
    pub fn backward(&mut self, grad_output: &[f32]) {
        let mut g = grad_output.to_vec();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g);
        }
    }

    /// Runs forward + loss + backward for one `(input, target)` pair and
    /// returns the loss value. Gradients accumulate until
    /// [`Network::zero_grads`].
    pub fn train_step(&mut self, input: &[f32], target: &[f32], loss: Loss) -> f32 {
        let prediction = self.forward(input, true);
        let value = loss.value(&prediction, target);
        let grad = loss.gradient(&prediction, target);
        self.backward(&grad);
        value
    }

    /// Zeroes all accumulated gradients.
    pub fn zero_grads(&mut self) {
        for layer in &mut self.layers {
            layer.zero_grads();
        }
    }

    /// Applies accumulated gradients via `optimizer`, scaling them by
    /// `1 / batch_size` first.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size` is zero.
    pub fn apply_gradients(&mut self, optimizer: &mut dyn Optimizer, batch_size: usize) {
        assert!(batch_size > 0, "batch size must be non-zero");
        let scale = 1.0 / batch_size as f32;
        let mut slot = 0;
        for layer in &mut self.layers {
            layer.visit_params(&mut |params, grads| {
                let scaled: Vec<f32> = grads.iter().map(|g| g * scale).collect();
                optimizer.step(slot, params, &scaled);
                slot += 1;
            });
        }
    }

    /// Euclidean norm of all accumulated parameter gradients — the
    /// divergence-guard's explosion signal.
    pub fn grad_norm(&mut self) -> f32 {
        let mut sum = 0.0f64;
        for layer in &mut self.layers {
            layer.visit_params(&mut |_, grads| {
                for &g in grads.iter() {
                    sum += f64::from(g) * f64::from(g);
                }
            });
        }
        sum.sqrt() as f32
    }

    /// Per-layer summary rows (the paper's Table 1 shape).
    pub fn summary(&self) -> Vec<LayerSummary> {
        self.layers.iter().map(|l| l.summary()).collect()
    }

    /// Renders the summary as an aligned text table.
    pub fn summary_table(&self) -> String {
        let rows = self.summary();
        let mut out = String::from(
            "Layer  Type                 Output       Config                          Act   Params\n",
        );
        for (i, row) in rows.iter().enumerate() {
            out.push_str(&format!(
                "{:<6} {:<20} {:<12} {:<31} {:<5} {}\n",
                i + 1,
                row.kind,
                row.output_shape,
                row.config,
                row.activation,
                row.parameters
            ));
        }
        out.push_str(&format!("Total parameters: {}\n", self.param_count()));
        out
    }

    /// Exports all parameter tensors, layer by layer.
    pub fn export_weights(&self) -> Vec<Vec<Vec<f32>>> {
        self.layers.iter().map(|l| l.export_params()).collect()
    }

    /// Imports parameter tensors previously produced by
    /// [`Network::export_weights`].
    ///
    /// # Errors
    ///
    /// Returns [`NeuralError::InvalidWeights`] if the layer count or any
    /// tensor shape does not match.
    pub fn import_weights(&mut self, weights: &[Vec<Vec<f32>>]) -> Result<(), NeuralError> {
        if weights.len() != self.layers.len() {
            return Err(NeuralError::InvalidWeights(format!(
                "expected {} layers, got {}",
                self.layers.len(),
                weights.len()
            )));
        }
        for (layer, w) in self.layers.iter_mut().zip(weights) {
            layer.import_params(w)?;
        }
        Ok(())
    }

    /// Approximate multiply–accumulate operation count for one inference,
    /// derived from parameter structure. Dense/conv-style layers perform
    /// roughly one MAC per weight application; the LSTM repeats its
    /// weights per timestep. Used by the platform performance model.
    pub fn macs_per_inference(&self) -> u64 {
        let mut total: u64 = 0;
        for layer in &self.layers {
            let summary = layer.summary();
            let params = summary.parameters as u64;
            total += match summary.kind.as_str() {
                // Shared conv weights are applied at every output position.
                "Conv1D" => {
                    // params ≈ weights; output positions from shape "F x L".
                    let out_positions = summary
                        .output_shape
                        .split('x')
                        .nth(1)
                        .and_then(|s| s.trim().parse::<u64>().ok())
                        .unwrap_or(1);
                    params * out_positions
                }
                "LSTM" => {
                    let timesteps = summary
                        .config
                        .split_whitespace()
                        .find_map(|kv| kv.strip_prefix("timesteps="))
                        .and_then(|v| v.parse::<u64>().ok())
                        .unwrap_or(1);
                    params * timesteps
                }
                _ => params,
            };
        }
        total
    }
}

impl Default for Network {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Dense, Flatten};
    use crate::optim::Sgd;
    use crate::Activation;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(3)
    }

    fn two_layer() -> Network {
        let mut net = Network::new();
        net.push(Box::new(
            Dense::new(2, 4, Activation::Tanh, &mut rng()).unwrap(),
        ))
        .unwrap();
        net.push(Box::new(
            Dense::new(4, 1, Activation::Linear, &mut rng()).unwrap(),
        ))
        .unwrap();
        net
    }

    #[test]
    fn push_validates_shapes() {
        let mut net = Network::new();
        net.push(Box::new(
            Dense::new(2, 4, Activation::Relu, &mut rng()).unwrap(),
        ))
        .unwrap();
        let err = net.push(Box::new(
            Dense::new(5, 1, Activation::Linear, &mut rng()).unwrap(),
        ));
        assert_eq!(
            err,
            Err(NeuralError::ShapeMismatch {
                expected: 4,
                actual: 5
            })
        );
    }

    #[test]
    fn forward_chains_layers() {
        let mut net = two_layer();
        let out = net.predict(&[0.5, -0.5]);
        assert_eq!(out.len(), 1);
        assert!(out[0].is_finite());
    }

    #[test]
    fn sgd_training_reduces_loss_on_xor_like_task() {
        let mut net = two_layer();
        let data = [
            ([0.0f32, 0.0], [0.0f32]),
            ([0.0, 1.0], [1.0]),
            ([1.0, 0.0], [1.0]),
            ([1.0, 1.0], [0.0]),
        ];
        let mut opt = Sgd::new(0.5, 0.9);
        let loss_at = |net: &mut Network| -> f32 {
            data.iter()
                .map(|(x, t)| Loss::Mse.value(&net.predict(x), t))
                .sum::<f32>()
                / 4.0
        };
        let before = loss_at(&mut net);
        for _ in 0..500 {
            net.zero_grads();
            for (x, t) in &data {
                net.train_step(x, t, Loss::Mse);
            }
            net.apply_gradients(&mut opt, 4);
        }
        let after = loss_at(&mut net);
        assert!(after < before * 0.2, "before {before}, after {after}");
    }

    #[test]
    fn weights_roundtrip_preserves_predictions() {
        let mut a = two_layer();
        let saved = a.export_weights();
        let mut b = two_layer();
        // Perturb b, then restore from a.
        b.zero_grads();
        b.import_weights(&saved).unwrap();
        let x = [0.3, 0.7];
        assert_eq!(a.predict(&x), b.predict(&x));
    }

    #[test]
    fn import_rejects_wrong_layer_count() {
        let mut net = two_layer();
        assert!(net.import_weights(&[]).is_err());
    }

    #[test]
    fn summary_table_lists_all_layers() {
        let net = two_layer();
        let table = net.summary_table();
        assert_eq!(table.matches("Dense").count(), 2);
        assert!(table.contains("Total parameters"));
    }

    #[test]
    fn param_count_sums_layers() {
        let net = two_layer();
        assert_eq!(net.param_count(), (2 * 4 + 4) + (4 + 1));
    }

    #[test]
    fn macs_count_dense_and_flatten() {
        let mut net = Network::new();
        net.push(Box::new(Flatten::new(2, 3).unwrap())).unwrap();
        net.push(Box::new(
            Dense::new(6, 2, Activation::Linear, &mut rng()).unwrap(),
        ))
        .unwrap();
        assert_eq!(net.macs_per_inference(), (6 * 2 + 2) as u64);
    }
}
