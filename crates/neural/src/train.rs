//! Datasets and the training loop.
//!
//! Mirrors the paper's Tool 4 workflow: datasets split 80/20 into training
//! and test portions (§III.A.2), whole-run training "without user
//! interaction", validation tracking, and best-network selection by a
//! quality criterion.

use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::optim::OptimizerSpec;
use crate::{Loss, Network, NeuralError};

/// A supervised dataset of flat `f32` samples.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    inputs: Vec<Vec<f32>>,
    targets: Vec<Vec<f32>>,
}

impl Dataset {
    /// Creates a dataset.
    ///
    /// # Errors
    ///
    /// Returns [`NeuralError::InvalidDataset`] if the collections are
    /// empty, differ in length, or samples have inconsistent widths.
    pub fn new(inputs: Vec<Vec<f32>>, targets: Vec<Vec<f32>>) -> Result<Self, NeuralError> {
        if inputs.is_empty() {
            return Err(NeuralError::InvalidDataset("no samples".into()));
        }
        if inputs.len() != targets.len() {
            return Err(NeuralError::InvalidDataset(format!(
                "{} inputs vs {} targets",
                inputs.len(),
                targets.len()
            )));
        }
        let in_width = inputs[0].len();
        let out_width = targets[0].len();
        if in_width == 0 || out_width == 0 {
            return Err(NeuralError::InvalidDataset("zero-width samples".into()));
        }
        for (i, (x, t)) in inputs.iter().zip(&targets).enumerate() {
            if x.len() != in_width || t.len() != out_width {
                return Err(NeuralError::InvalidDataset(format!(
                    "sample {i} has inconsistent width"
                )));
            }
            if x.iter().chain(t.iter()).any(|v| !v.is_finite()) {
                return Err(NeuralError::InvalidDataset(format!(
                    "sample {i} contains non-finite values"
                )));
            }
        }
        Ok(Self { inputs, targets })
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.inputs.len()
    }

    /// Returns `true` if the dataset has no samples (never, by
    /// construction).
    pub fn is_empty(&self) -> bool {
        self.inputs.is_empty()
    }

    /// Input width.
    pub fn input_width(&self) -> usize {
        self.inputs[0].len()
    }

    /// Target width.
    pub fn target_width(&self) -> usize {
        self.targets[0].len()
    }

    /// The input samples.
    pub fn inputs(&self) -> &[Vec<f32>] {
        &self.inputs
    }

    /// The target samples.
    pub fn targets(&self) -> &[Vec<f32>] {
        &self.targets
    }

    /// Splits into `(front, back)` with `front` holding `fraction` of the
    /// samples (the paper's 80/20 train/test split uses `0.8`).
    ///
    /// # Errors
    ///
    /// Returns [`NeuralError::InvalidDataset`] if either side would be
    /// empty.
    pub fn split(&self, fraction: f64) -> Result<(Dataset, Dataset), NeuralError> {
        let cut = (self.len() as f64 * fraction).round() as usize;
        if cut == 0 || cut >= self.len() {
            return Err(NeuralError::InvalidDataset(format!(
                "split fraction {fraction} leaves an empty side"
            )));
        }
        Ok((
            Dataset {
                inputs: self.inputs[..cut].to_vec(),
                targets: self.targets[..cut].to_vec(),
            },
            Dataset {
                inputs: self.inputs[cut..].to_vec(),
                targets: self.targets[cut..].to_vec(),
            },
        ))
    }

    /// A copy with samples shuffled by `seed`.
    pub fn shuffled(&self, seed: u64) -> Dataset {
        let mut order: Vec<usize> = (0..self.len()).collect();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        order.shuffle(&mut rng);
        Dataset {
            inputs: order.iter().map(|&i| self.inputs[i].clone()).collect(),
            targets: order.iter().map(|&i| self.targets[i].clone()).collect(),
        }
    }

    /// Mean loss of `network` over the dataset (evaluation mode).
    pub fn evaluate(&self, network: &mut Network, loss: Loss) -> f32 {
        let total: f32 = self
            .inputs
            .iter()
            .zip(&self.targets)
            .map(|(x, t)| loss.value(&network.predict(x), t))
            .sum();
        total / self.len() as f32
    }

    /// Per-output-column mean absolute error over the dataset — the
    /// per-substance error bars of the paper's Figures 5–7.
    pub fn per_output_mae(&self, network: &mut Network) -> Vec<f64> {
        let width = self.target_width();
        let mut acc = vec![0.0f64; width];
        for (x, t) in self.inputs.iter().zip(&self.targets) {
            let y = network.predict(x);
            for c in 0..width {
                acc[c] += (y[c] - t[c]).abs() as f64;
            }
        }
        for v in &mut acc {
            *v /= self.len() as f64;
        }
        acc
    }
}

/// Training configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainConfig {
    /// Number of passes over the training data.
    pub epochs: usize,
    /// Gradient-accumulation batch size.
    pub batch_size: usize,
    /// Optimizer choice.
    pub optimizer: OptimizerSpec,
    /// Loss function.
    pub loss: Loss,
    /// Shuffle the training data each epoch.
    pub shuffle: bool,
    /// RNG seed for shuffling.
    pub seed: u64,
    /// Restore the best-validation weights after training (needs a
    /// validation set).
    pub restore_best: bool,
    /// Stop as soon as the validation loss reaches this target (needs a
    /// validation set) — the paper's "mean error of no more than 0.005 on
    /// the validation data ... as target for the network" workflow.
    pub stop_at_val_loss: Option<f32>,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            epochs: 10,
            batch_size: 32,
            optimizer: OptimizerSpec::default(),
            loss: Loss::Mae,
            shuffle: true,
            seed: 0,
            restore_best: true,
            stop_at_val_loss: None,
        }
    }
}

/// Per-epoch training record.
#[derive(Debug, Clone, PartialEq)]
pub struct History {
    /// Mean training loss per epoch.
    pub train_loss: Vec<f32>,
    /// Mean validation loss per epoch (empty without a validation set).
    pub val_loss: Vec<f32>,
    /// Epoch index of the best validation loss, if tracked.
    pub best_epoch: Option<usize>,
}

impl History {
    /// Training loss of the final epoch.
    ///
    /// # Panics
    ///
    /// Panics if no epochs were run.
    pub fn final_train_loss(&self) -> f32 {
        *self.train_loss.last().expect("at least one epoch")
    }

    /// Best validation loss, if a validation set was provided.
    pub fn best_val_loss(&self) -> Option<f32> {
        self.best_epoch.map(|e| self.val_loss[e])
    }
}

/// Runs the training loop.
#[derive(Debug, Clone)]
pub struct Trainer {
    config: TrainConfig,
}

impl Trainer {
    /// Creates a trainer with the given configuration.
    pub fn new(config: TrainConfig) -> Self {
        Self { config }
    }

    /// The configuration.
    pub fn config(&self) -> &TrainConfig {
        &self.config
    }

    /// Trains `network` on `train`, optionally tracking `validation`.
    ///
    /// With `restore_best` set and a validation set given, the network is
    /// left with the weights of its best validation epoch (the paper:
    /// "the network with the best performance on the experimental
    /// validation dataset was selected").
    ///
    /// # Errors
    ///
    /// Returns [`NeuralError::ShapeMismatch`] if the dataset widths do not
    /// match the network, or [`NeuralError::Diverged`] if a non-finite
    /// loss appears.
    pub fn fit(
        &self,
        network: &mut Network,
        train: &Dataset,
        validation: Option<&Dataset>,
    ) -> Result<History, NeuralError> {
        if train.input_width() != network.input_len() {
            return Err(NeuralError::ShapeMismatch {
                expected: network.input_len(),
                actual: train.input_width(),
            });
        }
        if train.target_width() != network.output_len() {
            return Err(NeuralError::ShapeMismatch {
                expected: network.output_len(),
                actual: train.target_width(),
            });
        }
        let mut optimizer = self.config.optimizer.build();
        let mut history = History {
            train_loss: Vec::with_capacity(self.config.epochs),
            val_loss: Vec::new(),
            best_epoch: None,
        };
        let mut best: Option<(f32, Vec<Vec<Vec<f32>>>)> = None;
        obs::gauge_set(
            "train.lr",
            f64::from(match self.config.optimizer {
                OptimizerSpec::Sgd { lr, .. } => lr,
                OptimizerSpec::Adam { lr } => lr,
            }),
        );

        for epoch in 0..self.config.epochs {
            let _epoch_span = obs::span!("train.epoch");
            let data = if self.config.shuffle {
                train.shuffled(self.config.seed.wrapping_add(epoch as u64))
            } else {
                train.clone()
            };
            let mut epoch_loss = 0.0f64;
            let mut processed = 0usize;
            while processed < data.len() {
                let _batch_span = obs::span!("train.batch");
                let end = (processed + self.config.batch_size).min(data.len());
                network.zero_grads();
                for i in processed..end {
                    let value =
                        network.train_step(&data.inputs[i], &data.targets[i], self.config.loss);
                    if !value.is_finite() {
                        return Err(NeuralError::Diverged { epoch });
                    }
                    epoch_loss += value as f64;
                }
                network.apply_gradients(optimizer.as_mut(), end - processed);
                processed = end;
            }
            let mean_loss = (epoch_loss / data.len() as f64) as f32;
            history.train_loss.push(mean_loss);
            obs::gauge_set("train.loss", f64::from(mean_loss));

            if let Some(val) = validation {
                let v = val.evaluate(network, self.config.loss);
                if !v.is_finite() {
                    return Err(NeuralError::Diverged { epoch });
                }
                history.val_loss.push(v);
                obs::gauge_set("train.val_loss", f64::from(v));
                let improved = best.as_ref().is_none_or(|(b, _)| v < *b);
                if improved {
                    best = Some((v, network.export_weights()));
                    history.best_epoch = Some(epoch);
                }
                if let Some(target) = self.config.stop_at_val_loss {
                    if v <= target {
                        break;
                    }
                }
            }
        }

        if self.config.restore_best {
            if let Some((_, weights)) = best {
                network.import_weights(&weights)?;
            }
        }
        Ok(history)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{LayerSpec, NetworkSpec};
    use crate::Activation;

    fn linear_dataset(n: usize) -> Dataset {
        // y = 0.5 a + 0.2 b
        let inputs: Vec<Vec<f32>> = (0..n)
            .map(|i| {
                let a = (i % 10) as f32 / 10.0;
                let b = ((i / 10) % 10) as f32 / 10.0;
                vec![a, b]
            })
            .collect();
        let targets = inputs
            .iter()
            .map(|v| vec![0.5 * v[0] + 0.2 * v[1]])
            .collect();
        Dataset::new(inputs, targets).unwrap()
    }

    fn small_net() -> Network {
        NetworkSpec::new(2)
            .layer(LayerSpec::Dense {
                units: 1,
                activation: Activation::Linear,
            })
            .build(1)
            .unwrap()
    }

    #[test]
    fn dataset_validation() {
        assert!(Dataset::new(vec![], vec![]).is_err());
        assert!(Dataset::new(vec![vec![1.0]], vec![]).is_err());
        assert!(Dataset::new(vec![vec![1.0], vec![1.0, 2.0]], vec![vec![1.0]; 2]).is_err());
        assert!(Dataset::new(vec![vec![]], vec![vec![1.0]]).is_err());
        assert!(Dataset::new(vec![vec![f32::NAN, 1.0]], vec![vec![1.0]]).is_err());
        assert!(Dataset::new(vec![vec![1.0, 1.0]], vec![vec![f32::INFINITY]]).is_err());
        assert!(Dataset::new(vec![vec![1.0, 1.0]], vec![vec![f32::NEG_INFINITY]]).is_err());
    }

    #[test]
    fn split_fractions() {
        let data = linear_dataset(100);
        let (train, test) = data.split(0.8).unwrap();
        assert_eq!(train.len(), 80);
        assert_eq!(test.len(), 20);
        assert!(data.split(0.0).is_err());
        assert!(data.split(1.0).is_err());
    }

    #[test]
    fn shuffle_is_permutation() {
        let data = linear_dataset(50);
        let shuffled = data.shuffled(4);
        assert_eq!(shuffled.len(), data.len());
        let mut original: Vec<_> = data.inputs().to_vec();
        let mut after: Vec<_> = shuffled.inputs().to_vec();
        original.sort_by(|a, b| a.partial_cmp(b).unwrap());
        after.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(original, after);
        assert_ne!(data.inputs(), shuffled.inputs());
    }

    #[test]
    fn training_learns_linear_map() {
        let data = linear_dataset(200);
        let mut net = small_net();
        let config = TrainConfig {
            epochs: 400,
            batch_size: 16,
            loss: Loss::Mse,
            ..TrainConfig::default()
        };
        let history = Trainer::new(config).fit(&mut net, &data, None).unwrap();
        assert!(history.final_train_loss() < 1e-3);
        let pred = net.predict(&[1.0, 1.0]);
        assert!((pred[0] - 0.7).abs() < 0.05, "prediction {}", pred[0]);
    }

    #[test]
    fn loss_decreases_over_epochs() {
        let data = linear_dataset(100);
        let mut net = small_net();
        let config = TrainConfig {
            epochs: 40,
            batch_size: 10,
            loss: Loss::Mae,
            ..TrainConfig::default()
        };
        let history = Trainer::new(config).fit(&mut net, &data, None).unwrap();
        let first = history.train_loss[0];
        let last = history.final_train_loss();
        assert!(last < first, "first {first}, last {last}");
    }

    #[test]
    fn validation_tracking_selects_best_epoch() {
        let data = linear_dataset(120);
        let (train, val) = data.split(0.75).unwrap();
        let mut net = small_net();
        let config = TrainConfig {
            epochs: 30,
            batch_size: 8,
            loss: Loss::Mse,
            ..TrainConfig::default()
        };
        let history = Trainer::new(config)
            .fit(&mut net, &train, Some(&val))
            .unwrap();
        assert_eq!(history.val_loss.len(), 30);
        let best = history.best_val_loss().unwrap();
        // Restored network matches the best epoch's validation loss.
        let actual = val.evaluate(&mut net, Loss::Mse);
        assert!((actual - best).abs() < 1e-6);
    }

    #[test]
    fn shape_mismatch_detected() {
        let data = linear_dataset(10);
        let mut wrong_net = NetworkSpec::new(3)
            .layer(LayerSpec::Dense {
                units: 1,
                activation: Activation::Linear,
            })
            .build(1)
            .unwrap();
        let result = Trainer::new(TrainConfig::default()).fit(&mut wrong_net, &data, None);
        assert!(matches!(result, Err(NeuralError::ShapeMismatch { .. })));
    }

    #[test]
    fn per_output_mae_has_target_width() {
        let data = linear_dataset(20);
        let mut net = small_net();
        let mae = data.per_output_mae(&mut net);
        assert_eq!(mae.len(), 1);
        assert!(mae[0] >= 0.0);
    }

    #[test]
    fn evaluate_of_perfect_network_is_zero() {
        let inputs = vec![vec![1.0f32, 0.0], vec![0.0, 1.0]];
        let targets = vec![vec![1.0f32], vec![0.0]];
        let data = Dataset::new(inputs, targets).unwrap();
        let mut net = small_net();
        // Force exact weights: y = 1*a + 0*b.
        net.import_weights(&[vec![vec![1.0, 0.0], vec![0.0]]]).unwrap();
        assert_eq!(data.evaluate(&mut net, Loss::Mae), 0.0);
    }
}
