//! Finite-value sanitizer behind the `checked-math` feature.
//!
//! With the feature enabled, [`FiniteTracker`] `debug_assert!`s that no
//! layer/op *introduces* NaN or infinity: a stage whose input was finite
//! must produce finite output. It names the stage that broke, so NaN
//! propagation is caught where it starts rather than three layers later
//! in a loss that "just went flat". Stages fed already-non-finite data
//! are not flagged — NaN-in → NaN-out is expected IEEE propagation, and
//! it is exactly what [`crate::guard`]'s divergence rollback handles.
//! Without the feature the tracker is a zero-sized no-op.

/// Tracks finiteness across a forward pass and asserts that no stage
/// turns finite data non-finite.
#[cfg(feature = "checked-math")]
pub struct FiniteTracker {
    finite: bool,
}

#[cfg(feature = "checked-math")]
impl FiniteTracker {
    /// Starts a pass, recording whether the input itself is finite.
    pub fn new(input: &[f32]) -> Self {
        Self {
            finite: input.iter().all(|v| v.is_finite()),
        }
    }

    /// Checks one stage's output. `context` names the forward pass and
    /// `index` the layer/op position within it.
    pub fn check(&mut self, context: &str, index: usize, values: &[f32]) {
        let now_finite = values.iter().all(|v| v.is_finite());
        debug_assert!(
            now_finite || !self.finite,
            "checked-math: non-finite value introduced in {context} at layer/op {index}"
        );
        self.finite = now_finite;
    }
}

/// Zero-sized no-op stub compiled without the `checked-math` feature.
#[cfg(not(feature = "checked-math"))]
pub struct FiniteTracker;

#[cfg(not(feature = "checked-math"))]
impl FiniteTracker {
    /// No-op.
    #[inline(always)]
    pub fn new(_input: &[f32]) -> Self {
        Self
    }

    /// No-op.
    #[inline(always)]
    pub fn check(&mut self, _context: &str, _index: usize, _values: &[f32]) {}
}
