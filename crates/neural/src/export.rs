//! Portable network export for embedded deployment.
//!
//! The paper's Tool 4 includes "a tool to export the desired ANN for use
//! on embedded platforms". [`ExportedNetwork`] bundles the topology spec
//! with the trained weights into one JSON document the embedded runtime
//! (or the [`platform`] performance model) can load.
//!
//! [`platform`]: https://docs.rs/platform

use serde::{Deserialize, Serialize};

use crate::spec::NetworkSpec;
use crate::{Network, NeuralError};

/// Format version written into every export.
pub const EXPORT_FORMAT_VERSION: u32 = 1;

/// A self-contained trained-network artifact.
///
/// # Example
///
/// ```
/// use neural::export::ExportedNetwork;
/// use neural::spec::{LayerSpec, NetworkSpec};
/// use neural::Activation;
///
/// # fn main() -> Result<(), neural::NeuralError> {
/// let spec = NetworkSpec::new(4).layer(LayerSpec::Dense {
///     units: 2,
///     activation: Activation::Softmax,
/// });
/// let mut net = spec.build(3)?;
/// let exported = ExportedNetwork::from_network(spec, &net, "demo");
/// let json = exported.to_json()?;
/// let mut restored = ExportedNetwork::from_json(&json)?.instantiate()?;
/// assert_eq!(net.predict(&[0.1, 0.2, 0.3, 0.4]),
///            restored.predict(&[0.1, 0.2, 0.3, 0.4]));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExportedNetwork {
    /// Format version for forward compatibility.
    pub format_version: u32,
    /// Free-form model name.
    pub name: String,
    /// The topology.
    pub spec: NetworkSpec,
    /// Per-layer parameter tensors.
    pub weights: Vec<Vec<Vec<f32>>>,
}

impl ExportedNetwork {
    /// Captures `network`'s weights together with its `spec`.
    pub fn from_network(spec: NetworkSpec, network: &Network, name: impl Into<String>) -> Self {
        Self {
            format_version: EXPORT_FORMAT_VERSION,
            name: name.into(),
            spec,
            weights: network.export_weights(),
        }
    }

    /// Checks the artifact without building anything: the format version
    /// must be one this build understands, and every weight tensor must
    /// have exactly the shape the spec calls for.
    ///
    /// # Errors
    ///
    /// Returns [`NeuralError::UnsupportedFormat`] for artifacts written by
    /// a newer exporter, [`NeuralError::InvalidSpec`] if the spec is
    /// inconsistent, or [`NeuralError::InvalidWeights`] naming the first
    /// layer whose tensors do not fit.
    pub fn validate(&self) -> Result<(), NeuralError> {
        if self.format_version > EXPORT_FORMAT_VERSION {
            return Err(NeuralError::UnsupportedFormat {
                found: self.format_version,
                supported: EXPORT_FORMAT_VERSION,
            });
        }
        crate::plan::validate_weights(&self.spec, &self.weights)
    }

    /// Rebuilds a runnable network with the stored weights, after
    /// [`ExportedNetwork::validate`] passes.
    ///
    /// # Errors
    ///
    /// Returns [`NeuralError::UnsupportedFormat`] for artifacts from a
    /// newer export format, [`NeuralError::InvalidSpec`] if the spec no
    /// longer builds, or [`NeuralError::InvalidWeights`] if the weights do
    /// not fit it.
    pub fn instantiate(&self) -> Result<Network, NeuralError> {
        self.validate()?;
        let mut network = self.spec.build(0)?;
        network.import_weights(&self.weights)?;
        Ok(network)
    }

    /// Serializes to JSON.
    ///
    /// # Errors
    ///
    /// Returns [`NeuralError::Serde`] on serialization failure.
    pub fn to_json(&self) -> Result<String, NeuralError> {
        serde_json::to_string(self).map_err(|e| NeuralError::Serde(e.to_string()))
    }

    /// Deserializes from JSON.
    ///
    /// Older format versions are accepted (there is only one so far);
    /// versions newer than [`EXPORT_FORMAT_VERSION`] are rejected so a
    /// stale runtime never half-reads an artifact it does not understand.
    ///
    /// # Errors
    ///
    /// Returns [`NeuralError::Serde`] on malformed input, or
    /// [`NeuralError::UnsupportedFormat`] for artifacts written by a newer
    /// exporter.
    pub fn from_json(json: &str) -> Result<Self, NeuralError> {
        let parsed: Self =
            serde_json::from_str(json).map_err(|e| NeuralError::Serde(e.to_string()))?;
        if parsed.format_version > EXPORT_FORMAT_VERSION {
            return Err(NeuralError::UnsupportedFormat {
                found: parsed.format_version,
                supported: EXPORT_FORMAT_VERSION,
            });
        }
        Ok(parsed)
    }

    /// Total number of exported scalar parameters.
    pub fn parameter_count(&self) -> usize {
        self.weights
            .iter()
            .flat_map(|layer| layer.iter())
            .map(|tensor| tensor.len())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::LayerSpec;
    use crate::Activation;

    fn demo_spec() -> NetworkSpec {
        NetworkSpec::new(6)
            .layer(LayerSpec::Reshape { channels: 1 })
            .layer(LayerSpec::Conv1d {
                filters: 2,
                kernel: 3,
                stride: 1,
                activation: Activation::Selu,
            })
            .layer(LayerSpec::Flatten)
            .layer(LayerSpec::Dense {
                units: 2,
                activation: Activation::Softmax,
            })
    }

    #[test]
    fn roundtrip_preserves_predictions() {
        let spec = demo_spec();
        let mut net = spec.build(11).unwrap();
        let exported = ExportedNetwork::from_network(spec, &net, "test-model");
        let json = exported.to_json().unwrap();
        let mut restored = ExportedNetwork::from_json(&json).unwrap().instantiate().unwrap();
        let x = [0.1, -0.2, 0.3, 0.4, -0.5, 0.6];
        assert_eq!(net.predict(&x), restored.predict(&x));
    }

    #[test]
    fn parameter_count_matches_network() {
        let spec = demo_spec();
        let net = spec.build(1).unwrap();
        let exported = ExportedNetwork::from_network(spec, &net, "m");
        assert_eq!(exported.parameter_count(), net.param_count());
    }

    #[test]
    fn newer_version_is_rejected_with_structured_error() {
        let spec = demo_spec();
        let net = spec.build(1).unwrap();
        let mut exported = ExportedNetwork::from_network(spec, &net, "m");
        exported.format_version = 99;
        let json = serde_json::to_string(&exported).unwrap();
        assert!(matches!(
            ExportedNetwork::from_json(&json),
            Err(NeuralError::UnsupportedFormat {
                found: 99,
                supported: EXPORT_FORMAT_VERSION,
            })
        ));
        assert!(matches!(
            exported.validate(),
            Err(NeuralError::UnsupportedFormat { .. })
        ));
        assert!(matches!(
            exported.instantiate(),
            Err(NeuralError::UnsupportedFormat { .. })
        ));
    }

    #[test]
    fn validate_checks_tensor_shapes_against_spec() {
        let spec = demo_spec();
        let net = spec.build(1).unwrap();
        let mut exported = ExportedNetwork::from_network(spec, &net, "m");
        exported.validate().unwrap();
        // Truncate the conv filter weights: shape no longer matches.
        exported.weights[1][0].pop();
        assert!(matches!(
            exported.validate(),
            Err(NeuralError::InvalidWeights(_))
        ));
        assert!(matches!(
            exported.instantiate(),
            Err(NeuralError::InvalidWeights(_))
        ));
    }

    fn roundtrip(spec: NetworkSpec, input: &[f32]) {
        let mut net = spec.build(23).unwrap();
        let exported = ExportedNetwork::from_network(spec, &net, "rt");
        let json = exported.to_json().unwrap();
        let restored = ExportedNetwork::from_json(&json).unwrap();
        assert_eq!(restored, exported);
        let mut rebuilt = restored.instantiate().unwrap();
        assert_eq!(net.predict(input), rebuilt.predict(input));
    }

    #[test]
    fn conv1d_roundtrip_preserves_predictions() {
        let spec = NetworkSpec::new(12)
            .layer(LayerSpec::Reshape { channels: 2 })
            .layer(LayerSpec::Conv1d {
                filters: 3,
                kernel: 3,
                stride: 1,
                activation: Activation::Softmax,
            })
            .layer(LayerSpec::Flatten);
        let x: Vec<f32> = (0..12).map(|i| (i as f32 * 0.3).sin()).collect();
        roundtrip(spec, &x);
    }

    #[test]
    fn locally_connected_roundtrip_preserves_predictions() {
        let spec = NetworkSpec::new(10)
            .layer(LayerSpec::LocallyConnected1d {
                filters: 2,
                kernel: 4,
                stride: 2,
                activation: Activation::Selu,
            })
            .layer(LayerSpec::Flatten);
        let x: Vec<f32> = (0..10).map(|i| (i as f32 * 0.7).cos()).collect();
        roundtrip(spec, &x);
    }

    #[test]
    fn pool_layers_roundtrip_preserves_predictions() {
        let spec = NetworkSpec::new(16)
            .layer(LayerSpec::Reshape { channels: 2 })
            .layer(LayerSpec::MaxPool1d { pool: 2, stride: 2 })
            .layer(LayerSpec::AvgPool1d { pool: 2, stride: 1 })
            .layer(LayerSpec::Flatten)
            .layer(LayerSpec::Dense {
                units: 3,
                activation: Activation::Linear,
            });
        let x: Vec<f32> = (0..16).map(|i| (i as f32 * 1.3).sin()).collect();
        roundtrip(spec, &x);
    }

    #[test]
    fn malformed_json_is_rejected() {
        assert!(matches!(
            ExportedNetwork::from_json("{not json"),
            Err(NeuralError::Serde(_))
        ));
    }

    #[test]
    fn corrupted_weights_fail_instantiation() {
        let spec = demo_spec();
        let net = spec.build(1).unwrap();
        let mut exported = ExportedNetwork::from_network(spec, &net, "m");
        exported.weights.pop();
        assert!(matches!(
            exported.instantiate(),
            Err(NeuralError::InvalidWeights(_))
        ));
    }
}
