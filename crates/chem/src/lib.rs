//! Chemical domain model for the `spectro-ai` workspace.
//!
//! Provides the chemistry both use cases of the paper are built on:
//!
//! * [`Compound`] and [`Mixture`] — substances and their fractional
//!   composition (the labels the neural networks predict);
//! * [`fragmentation`] — an electron-ionization fragmentation library for
//!   the process gases measured by the miniaturized mass spectrometer;
//! * [`nmr`] — Lorentz–Gauss pure-component peak tables for the compounds
//!   of the paper's lithiation reaction (p-toluidine, o-FNB, Li-HMDS,
//!   MNDPA);
//! * [`reaction`] — the lithiation reaction model, its stoichiometry and
//!   the design-of-experiments operating points of the flow reactor.
//!
//! # Example
//!
//! ```
//! use chem::fragmentation::GasLibrary;
//! use chem::Mixture;
//!
//! # fn main() -> Result<(), chem::ChemError> {
//! let lib = GasLibrary::standard();
//! let mix = Mixture::from_fractions(vec![
//!     ("N2".into(), 0.8),
//!     ("O2".into(), 0.2),
//! ])?;
//! assert!(lib.get("N2").is_some());
//! assert_eq!(mix.fraction_of("N2"), 0.8);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compound;
pub mod formula;
pub mod fragmentation;
pub mod mixture;
pub mod nmr;
pub mod reaction;

mod error;

pub use compound::Compound;
pub use error::ChemError;
pub use mixture::Mixture;
