//! NMR pure-component peak tables (hard models).
//!
//! The paper's Indirect Hard Modelling describes "each component ... as a
//! pure component, which is done with a series of Lorentz-Gauss functions"
//! (§III.B.1). This module holds those parametric pure-component models
//! for the compounds of the lithiation example reaction:
//! p-toluidine + 1-fluoro-2-nitrobenzene (o-FNB), activated by Li-HMDS,
//! yielding 2-nitro-4'-methyldiphenylamine (MNDPA).
//!
//! Chemical-shift values are realistic ¹H positions for a medium-field
//! instrument; exact literature agreement is not load-bearing — the
//! toolchain only needs distinct, partially overlapping component
//! signatures whose areas scale linearly with concentration.

use serde::{Deserialize, Serialize};
use spectrum::{ContinuousSpectrum, PeakShape, SpectrumError, UniformAxis};

use crate::{ChemError, Compound};

/// One Lorentz–Gauss peak of a pure-component hard model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NmrPeak {
    /// Chemical shift of the peak center in ppm.
    pub center_ppm: f64,
    /// Integrated peak area per unit concentration (proportional to the
    /// number of contributing nuclei — NMR's calibration-free linearity).
    pub area: f64,
    /// Full width at half maximum in ppm.
    pub fwhm_ppm: f64,
    /// Lorentzian fraction of the Lorentz–Gauss mix, in `[0, 1]`.
    pub eta: f64,
}

impl NmrPeak {
    /// Creates a peak.
    ///
    /// # Errors
    ///
    /// Returns [`ChemError::InvalidFraction`] if any parameter is out of
    /// range (`area > 0`, `fwhm_ppm > 0`, `eta ∈ [0, 1]`, finite center).
    pub fn new(center_ppm: f64, area: f64, fwhm_ppm: f64, eta: f64) -> Result<Self, ChemError> {
        if !center_ppm.is_finite() {
            return Err(ChemError::InvalidFraction(format!(
                "peak center {center_ppm} not finite"
            )));
        }
        if !(area.is_finite() && area > 0.0) {
            return Err(ChemError::InvalidFraction(format!(
                "peak area {area} must be positive"
            )));
        }
        if !(fwhm_ppm.is_finite() && fwhm_ppm > 0.0) {
            return Err(ChemError::InvalidFraction(format!(
                "peak width {fwhm_ppm} must be positive"
            )));
        }
        if !(0.0..=1.0).contains(&eta) {
            return Err(ChemError::InvalidFraction(format!(
                "eta {eta} must lie in [0, 1]"
            )));
        }
        Ok(Self {
            center_ppm,
            area,
            fwhm_ppm,
            eta,
        })
    }
}

/// A pure-component hard model: a compound plus its series of
/// Lorentz–Gauss peaks.
///
/// # Example
///
/// ```
/// use chem::nmr::lithiation_components;
/// use spectrum::UniformAxis;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let components = lithiation_components();
/// let axis = UniformAxis::new(0.0, 12.0 / 1699.0, 1700)?;
/// let toluidine = &components[0];
/// let spectrum = toluidine.render(&axis, 1.0, 0.0, 1.0)?;
/// assert!(spectrum.max_intensity() > 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NmrComponent {
    compound: Compound,
    peaks: Vec<NmrPeak>,
}

impl NmrComponent {
    /// Creates a component model.
    ///
    /// # Errors
    ///
    /// Returns [`ChemError::Empty`] if `peaks` is empty.
    pub fn new(compound: Compound, peaks: Vec<NmrPeak>) -> Result<Self, ChemError> {
        if peaks.is_empty() {
            return Err(ChemError::Empty);
        }
        Ok(Self { compound, peaks })
    }

    /// The underlying compound.
    pub fn compound(&self) -> &Compound {
        &self.compound
    }

    /// Component name (shorthand for `compound().name()`).
    pub fn name(&self) -> &str {
        self.compound.name()
    }

    /// The peak table.
    pub fn peaks(&self) -> &[NmrPeak] {
        &self.peaks
    }

    /// Total area per unit concentration (sum over all peaks).
    pub fn total_area(&self) -> f64 {
        self.peaks.iter().map(|p| p.area).sum()
    }

    /// Renders the component at `concentration` onto `axis`, applying a
    /// global chemical-shift offset `shift_ppm` and a multiplicative line
    /// broadening `broaden` (1.0 = nominal width). These two perturbations
    /// are exactly the degrees of freedom IHM allows ("individual signals
    /// are allowed to shift or broaden").
    ///
    /// # Errors
    ///
    /// Returns [`SpectrumError::InvalidPeak`] if `broaden` is not strictly
    /// positive.
    pub fn render(
        &self,
        axis: &UniformAxis,
        concentration: f64,
        shift_ppm: f64,
        broaden: f64,
    ) -> Result<ContinuousSpectrum, SpectrumError> {
        if !(broaden.is_finite() && broaden > 0.0) {
            return Err(SpectrumError::InvalidPeak(format!(
                "broadening factor {broaden} must be positive"
            )));
        }
        let mut out = ContinuousSpectrum::zeros(*axis);
        for peak in &self.peaks {
            let shape = PeakShape::lorentz_gauss(peak.fwhm_ppm * broaden, peak.eta)?;
            let center = peak.center_ppm + shift_ppm;
            let amplitude = concentration * peak.area;
            let support = shape.support_radius();
            let lo = axis.position_of(center - support).floor().max(0.0) as usize;
            let hi = (axis.position_of(center + support).ceil() as isize)
                .clamp(0, axis.len() as isize - 1) as usize;
            if lo > hi {
                continue;
            }
            let samples = out.intensities_mut();
            for (idx, slot) in samples.iter_mut().enumerate().take(hi + 1).skip(lo) {
                let x = axis.value_at(idx);
                *slot += amplitude * shape.evaluate(x - center);
            }
        }
        Ok(out)
    }
}

/// The four relevant components of the paper's lithiation reaction
/// (§III.B, Figure 8), in the canonical label order used by the NMR
/// pipeline: `[p-toluidine, o-FNB, Li-HMDS, MNDPA]`.
pub fn lithiation_components() -> Vec<NmrComponent> {
    let peak = |c, a, w, e| NmrPeak::new(c, a, w, e).expect("static peak data is valid");
    vec![
        NmrComponent::new(
            Compound::new("p-toluidine", "C7H9N", 107.16),
            vec![
                peak(6.52, 2.0, 0.045, 0.6), // aromatic H ortho to NH2
                peak(6.88, 2.0, 0.045, 0.6), // aromatic H ortho to CH3
                peak(3.42, 2.0, 0.070, 0.5), // NH2 (broad)
                peak(2.18, 3.0, 0.040, 0.6), // CH3
            ],
        )
        .expect("valid component"),
        NmrComponent::new(
            Compound::new("o-FNB", "C6H4FNO2", 141.10),
            vec![
                peak(8.05, 1.0, 0.050, 0.65), // H3 (ortho to NO2)
                peak(7.72, 1.0, 0.050, 0.65), // H5
                peak(7.38, 2.0, 0.055, 0.65), // H4 + H6 overlapped
            ],
        )
        .expect("valid component"),
        NmrComponent::new(
            Compound::new("Li-HMDS", "C6H18LiNSi2", 167.33),
            vec![
                peak(0.12, 18.0, 0.035, 0.55), // Si(CH3)3 × 2, tall singlet
            ],
        )
        .expect("valid component"),
        NmrComponent::new(
            Compound::new("MNDPA", "C13H12N2O2", 228.25),
            vec![
                peak(9.42, 1.0, 0.065, 0.55), // N-H
                peak(8.12, 1.0, 0.050, 0.65), // aromatic ortho to NO2
                peak(7.45, 1.0, 0.055, 0.65),
                peak(7.18, 4.0, 0.055, 0.65), // tolyl + overlapping aromatics
                peak(6.85, 1.0, 0.050, 0.65),
                peak(2.32, 3.0, 0.040, 0.6), // CH3
            ],
        )
        .expect("valid component"),
    ]
}

/// Canonical label order of [`lithiation_components`].
pub const LITHIATION_NAMES: [&str; 4] = ["p-toluidine", "o-FNB", "Li-HMDS", "MNDPA"];

#[cfg(test)]
mod tests {
    use super::*;

    fn axis() -> UniformAxis {
        UniformAxis::new(0.0, 12.0 / 1699.0, 1700).unwrap()
    }

    #[test]
    fn library_has_four_components_in_order() {
        let comps = lithiation_components();
        assert_eq!(comps.len(), 4);
        for (comp, name) in comps.iter().zip(LITHIATION_NAMES) {
            assert_eq!(comp.name(), name);
        }
    }

    #[test]
    fn peak_validation() {
        assert!(NmrPeak::new(f64::NAN, 1.0, 0.1, 0.5).is_err());
        assert!(NmrPeak::new(1.0, 0.0, 0.1, 0.5).is_err());
        assert!(NmrPeak::new(1.0, 1.0, 0.0, 0.5).is_err());
        assert!(NmrPeak::new(1.0, 1.0, 0.1, 1.5).is_err());
        assert!(NmrPeak::new(1.0, 1.0, 0.1, 0.5).is_ok());
    }

    #[test]
    fn component_needs_peaks() {
        let c = Compound::new("X", "X", 1.0);
        assert_eq!(NmrComponent::new(c, vec![]), Err(ChemError::Empty));
    }

    #[test]
    fn render_area_is_linear_in_concentration() {
        let comps = lithiation_components();
        let ax = axis();
        let one = comps[1].render(&ax, 1.0, 0.0, 1.0).unwrap();
        let two = comps[1].render(&ax, 2.0, 0.0, 1.0).unwrap();
        assert!((two.area() / one.area() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn render_area_matches_component_area() {
        // o-FNB: all peaks well inside the axis; area ≈ total_area.
        let comps = lithiation_components();
        let ax = axis();
        let spec = comps[1].render(&ax, 1.0, 0.0, 1.0).unwrap();
        let expect = comps[1].total_area();
        assert!(
            (spec.area() - expect).abs() / expect < 0.05,
            "area {} vs {expect}",
            spec.area()
        );
    }

    #[test]
    fn shift_moves_the_peaks() {
        let comps = lithiation_components();
        let ax = axis();
        let base = comps[2].render(&ax, 1.0, 0.0, 1.0).unwrap();
        let shifted = comps[2].render(&ax, 1.0, 0.5, 1.0).unwrap();
        let (_, base_pos) = base.argmax();
        let (_, shifted_pos) = shifted.argmax();
        assert!((shifted_pos - base_pos - 0.5).abs() < 0.02);
    }

    #[test]
    fn broadening_lowers_and_widens() {
        let comps = lithiation_components();
        let ax = axis();
        let narrow = comps[1].render(&ax, 1.0, 0.0, 1.0).unwrap();
        let broad = comps[1].render(&ax, 1.0, 0.0, 2.0).unwrap();
        assert!(broad.max_intensity() < narrow.max_intensity());
        // Area is conserved under broadening, up to Lorentzian tail
        // clipping at the axis edges (a few percent).
        assert!((broad.area() - narrow.area()).abs() / narrow.area() < 0.05);
    }

    #[test]
    fn invalid_broaden_rejected() {
        let comps = lithiation_components();
        assert!(comps[0].render(&axis(), 1.0, 0.0, 0.0).is_err());
        assert!(comps[0].render(&axis(), 1.0, 0.0, -1.0).is_err());
    }

    #[test]
    fn components_have_distinct_signatures() {
        // Pairwise correlation of rendered pure spectra must be well below 1.
        let comps = lithiation_components();
        let ax = axis();
        let rendered: Vec<Vec<f64>> = comps
            .iter()
            .map(|c| c.render(&ax, 1.0, 0.0, 1.0).unwrap().into_intensities())
            .collect();
        for i in 0..rendered.len() {
            for j in (i + 1)..rendered.len() {
                let r = spectrum::stats::pearson(&rendered[i], &rendered[j]).unwrap();
                assert!(r < 0.9, "components {i} and {j} correlate at {r}");
            }
        }
    }
}
