use std::fmt;

/// Error type for the chemical domain model.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ChemError {
    /// A mixture fraction was negative, non-finite, or fractions did not
    /// sum to one within tolerance.
    InvalidFraction(String),
    /// A compound name was not found in the relevant library.
    UnknownCompound(String),
    /// A reaction parameter (conversion, feed ratio) was out of range.
    InvalidReaction(String),
    /// The input collection was empty where at least one element is needed.
    Empty,
}

impl fmt::Display for ChemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChemError::InvalidFraction(msg) => write!(f, "invalid fraction: {msg}"),
            ChemError::UnknownCompound(name) => write!(f, "unknown compound: {name}"),
            ChemError::InvalidReaction(msg) => write!(f, "invalid reaction parameter: {msg}"),
            ChemError::Empty => write!(f, "input collection is empty"),
        }
    }
}

impl std::error::Error for ChemError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            ChemError::UnknownCompound("Xe".into()).to_string(),
            "unknown compound: Xe"
        );
        assert!(ChemError::Empty.to_string().contains("empty"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ChemError>();
    }
}
