//! Molecular-formula parsing and molar-mass computation.
//!
//! Supports element symbols, counts, and parenthesized groups —
//! `"C6H18LiNSi2"`, `"(CH3)3SiN"`, `"H2O"`. Atomic masses cover the
//! elements appearing in the workspace's gas and reagent libraries.

use crate::ChemError;

/// Standard atomic weights (g/mol) of the supported elements.
const ATOMIC_MASSES: &[(&str, f64)] = &[
    ("H", 1.008),
    ("He", 4.0026),
    ("Li", 6.94),
    ("C", 12.011),
    ("N", 14.007),
    ("O", 15.999),
    ("F", 18.998),
    ("Ne", 20.180),
    ("Si", 28.085),
    ("P", 30.974),
    ("S", 32.06),
    ("Cl", 35.45),
    ("Ar", 39.948),
    ("K", 39.098),
    ("Ca", 40.078),
    ("Kr", 83.798),
    ("Xe", 131.29),
];

/// Looks up the atomic mass of an element symbol.
///
/// # Errors
///
/// Returns [`ChemError::UnknownCompound`] for unsupported symbols.
pub fn atomic_mass(symbol: &str) -> Result<f64, ChemError> {
    ATOMIC_MASSES
        .iter()
        .find(|(s, _)| *s == symbol)
        .map(|&(_, m)| m)
        .ok_or_else(|| ChemError::UnknownCompound(format!("element {symbol}")))
}

/// Computes the molar mass of a molecular formula.
///
/// # Errors
///
/// Returns [`ChemError::UnknownCompound`] for unknown element symbols or
/// [`ChemError::InvalidReaction`] for malformed syntax (unbalanced
/// parentheses, dangling counts, empty formula).
///
/// # Example
///
/// ```
/// use chem::formula::molar_mass;
///
/// # fn main() -> Result<(), chem::ChemError> {
/// assert!((molar_mass("H2O")? - 18.015).abs() < 0.01);
/// assert!((molar_mass("(CH3)3SiCl")? - 108.64).abs() < 0.05);
/// # Ok(())
/// # }
/// ```
pub fn molar_mass(formula: &str) -> Result<f64, ChemError> {
    let tokens: Vec<char> = formula.chars().collect();
    let (mass, consumed) = parse_group(&tokens, 0)?;
    if consumed != tokens.len() {
        return Err(ChemError::InvalidReaction(format!(
            "unexpected character at position {consumed} in {formula}"
        )));
    }
    if mass <= 0.0 {
        return Err(ChemError::InvalidReaction(format!("empty formula {formula}")));
    }
    Ok(mass)
}

/// Parses a group (sequence of element/parenthesized terms) starting at
/// `start`, returning `(mass, next_index)`. Stops at `)` or end of input.
fn parse_group(tokens: &[char], start: usize) -> Result<(f64, usize), ChemError> {
    let mut i = start;
    let mut mass = 0.0;
    while i < tokens.len() {
        match tokens[i] {
            '(' => {
                let (inner, next) = parse_group(tokens, i + 1)?;
                if next >= tokens.len() || tokens[next] != ')' {
                    return Err(ChemError::InvalidReaction(
                        "unbalanced parenthesis".into(),
                    ));
                }
                let (count, next) = parse_count(tokens, next + 1);
                mass += inner * count as f64;
                i = next;
            }
            ')' => break,
            c if c.is_ascii_uppercase() => {
                let mut symbol = String::from(c);
                if i + 1 < tokens.len() && tokens[i + 1].is_ascii_lowercase() {
                    symbol.push(tokens[i + 1]);
                    i += 1;
                }
                i += 1;
                let (count, next) = parse_count(tokens, i);
                mass += atomic_mass(&symbol)? * count as f64;
                i = next;
            }
            c => {
                return Err(ChemError::InvalidReaction(format!(
                    "unexpected character {c:?}"
                )));
            }
        }
    }
    Ok((mass, i))
}

/// Parses an optional positive integer count at `start` (default 1).
fn parse_count(tokens: &[char], start: usize) -> (u32, usize) {
    let mut i = start;
    let mut value: u32 = 0;
    while i < tokens.len() {
        if let Some(d) = tokens[i].to_digit(10) {
            value = value.saturating_mul(10).saturating_add(d);
            i += 1;
        } else {
            break;
        }
    }
    if i == start {
        (1, i)
    } else {
        (value.max(1), i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_molecules() {
        assert!((molar_mass("H2O").unwrap() - 18.015).abs() < 0.01);
        assert!((molar_mass("CO2").unwrap() - 44.009).abs() < 0.01);
        assert!((molar_mass("N2").unwrap() - 28.014).abs() < 0.01);
        assert!((molar_mass("Ar").unwrap() - 39.948).abs() < 0.001);
    }

    #[test]
    fn multi_letter_symbols() {
        assert!((molar_mass("He").unwrap() - 4.0026).abs() < 1e-6);
        assert!((molar_mass("SiH4").unwrap() - 32.117).abs() < 0.01);
    }

    #[test]
    fn parenthesized_groups() {
        // Li-HMDS: LiN(Si(CH3)3)2 = C6H18LiNSi2, 167.33 g/mol.
        let grouped = molar_mass("LiN(Si(CH3)3)2").unwrap();
        let flat = molar_mass("C6H18LiNSi2").unwrap();
        assert!((grouped - flat).abs() < 1e-9);
        assert!((grouped - 167.33).abs() < 0.05, "{grouped}");
    }

    #[test]
    fn workspace_compounds_match_library_masses() {
        // The hand-entered masses in the libraries agree with the parser.
        for (formula, expect) in [
            ("C7H9N", 107.16),   // p-toluidine
            ("C6H4FNO2", 141.10), // o-FNB
            ("C13H12N2O2", 228.25), // MNDPA
            ("C3H8", 44.097),
            ("CH4", 16.043),
        ] {
            let mass = molar_mass(formula).unwrap();
            assert!(
                (mass - expect).abs() < 0.05,
                "{formula}: parsed {mass}, library {expect}"
            );
        }
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(molar_mass("").is_err());
        assert!(molar_mass("(H2O").is_err());
        assert!(molar_mass("H2O)").is_err());
        assert!(molar_mass("h2o").is_err());
        assert!(molar_mass("H2O!").is_err());
        assert!(molar_mass("Zz3").is_err());
    }

    #[test]
    fn counts_default_to_one() {
        let a = molar_mass("CH4").unwrap();
        let b = molar_mass("C1H4").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn atomic_mass_lookup() {
        assert!(atomic_mass("C").is_ok());
        assert!(atomic_mass("Unobtainium").is_err());
    }
}
